//! Network-layer families: the self-stabilizing communication stack of paper
//! §V-A (experiments e04–e07), plus the simulated campaign transport fabric.

use karyon_net::mac::selfstab_tdma::allocation_is_collision_free;
use karyon_net::{
    eventually_fifo, CsmaConfig, CsmaMac, Disturbance, E2EConfig, EndToEndSession,
    InaccessibilityTracker, MacProtocol, MacSimConfig, MacSimulation, MediumConfig, NodeId,
    PulseSyncConfig, PulseSyncSim, R2TMac, R2TMacConfig, SelfStabTdmaMac, WirelessMedium,
};
use karyon_sim::{Rng, SimDuration, SimTime, Vec2};
use karyon_transport::{LinkConfig, NetTransport, PartitionWindow, SimTransport};

use crate::grid::ParamGrid;
use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// Self-stabilizing TDMA slot allocation without an external time source
/// (paper §V-A2, the body of bench `e05`): how many frames the network needs
/// to converge to a collision-free schedule — from empty or adversarial
/// initial claims, and optionally after churn (a node joining the converged
/// network).
pub struct TdmaScenario;

impl TdmaScenario {
    fn build(spec: &ScenarioSpec) -> (MacSimulation<SelfStabTdmaMac>, u16, u32) {
        let nodes = spec.u64_or("nodes", 8).max(2) as u32;
        let slots_per_frame = spec.u64_or("slots_per_frame", 16).clamp(2, 1_024) as u16;
        let adversarial = spec.bool_or("adversarial", false);
        let medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.0,
            channels: 1,
        });
        let mut sim = MacSimulation::new(
            medium,
            MacSimConfig { slot_duration: SimDuration::from_millis(1), slots_per_frame },
            spec.seed,
        );
        for i in 0..nodes {
            let mac = if adversarial {
                SelfStabTdmaMac::with_initial_claim(0)
            } else {
                SelfStabTdmaMac::new()
            };
            sim.add_node(NodeId(i), mac, Vec2::new(i as f64 * 10.0, 0.0));
        }
        (sim, slots_per_frame, nodes)
    }

    fn converged(sim: &MacSimulation<SelfStabTdmaMac>) -> bool {
        let claims: Vec<(NodeId, Option<u16>)> =
            sim.node_ids().iter().map(|id| (*id, sim.mac(*id).unwrap().claimed_slot())).collect();
        allocation_is_collision_free(&claims, |a, b| sim.medium().in_range(a, b))
    }

    /// Runs frames until the allocation is collision-free; returns
    /// `(frames used, converged)`.
    fn hunt(
        sim: &mut MacSimulation<SelfStabTdmaMac>,
        slots_per_frame: u16,
        max_frames: u64,
    ) -> (u64, bool) {
        for frame in 1..=max_frames {
            sim.run_slots(slots_per_frame as u64);
            if Self::converged(sim) {
                return (frame, true);
            }
        }
        (max_frames, false)
    }
}

impl Scenario for TdmaScenario {
    fn name(&self) -> &str {
        "tdma"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("nodes", [8, 4, 12])
            .axis("adversarial", [false, true])
            .axis("slots_per_frame", [16])
            .axis("churn", [false, true])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "frames_to_converge" | "frames_to_converge_after_join" => Some((0.0, 1_000.0)),
            "reselections" => Some((0.0, 10_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let (mut sim, slots_per_frame, nodes) = Self::build(spec);
        // The spec duration budgets the convergence hunt: at 1 ms slots a
        // frame takes `slots_per_frame` ms of simulated time.
        let max_frames = (spec.duration.as_millis() / slots_per_frame as u64).clamp(1, 100_000);
        let (frames, converged) = Self::hunt(&mut sim, slots_per_frame, max_frames);
        let reselections: u64 =
            sim.node_ids().iter().map(|id| sim.mac(*id).unwrap().reselections()).sum();
        // Post-convergence stability: ten more frames must stay silent.
        let before = sim.metrics().collisions;
        sim.run_slots(slots_per_frame as u64 * 10);
        let post_collisions = sim.metrics().collisions - before;

        let mut record = RunRecord::new();
        record.set_flag("converged", converged);
        record.set("frames_to_converge", frames as f64);
        record.set("reselections", reselections as f64);
        record.set("post_convergence_collisions", post_collisions as f64);
        record.set_flag("stable_after_convergence", converged && post_collisions == 0);
        if spec.bool_or("churn", false) {
            // Churn (the e05 join case): a new node enters the converged
            // network and the allocation must re-stabilize.
            sim.add_node(NodeId(nodes), SelfStabTdmaMac::new(), Vec2::new(35.0, 0.0));
            let (frames_after, reconverged) = Self::hunt(&mut sim, slots_per_frame, max_frames);
            record.set("frames_to_converge_after_join", frames_after as f64);
            record.set_flag("reconverged_after_join", reconverged);
        }
        record
    }
}

/// Network-inaccessibility control under jamming bursts (paper §V-A1, the
/// body of bench `e04`): a broadcast workload over a disturbed medium, run
/// either on plain CSMA (inaccessibility unbounded by design) or wrapped in
/// R2T-MAC (bounded via channel diversity and temporal redundancy).
///
/// The disturbance profile — mean gap between jamming bursts, baseline frame
/// loss, and the optional stark multi-second burst the e04 harness adds —
/// used to be hard-coded; `gap_s`, `loss` and `long_burst` expose it to
/// campaign grids.
pub struct InaccessibilityScenario;

impl InaccessibilityScenario {
    fn medium(spec: &ScenarioSpec, slots: u64, burst_ms: u64) -> WirelessMedium {
        let mut medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: spec.f64_or("loss", 0.01).clamp(0.0, 1.0),
            channels: 2,
        });
        let mut rng = Rng::seed_from(spec.seed);
        medium.add_random_disturbances(
            Some(0),
            SimTime::from_millis(slots),
            SimDuration::from_secs_f64(spec.f64_or("gap_s", 3.0).max(0.1)),
            SimDuration::from_millis(burst_ms),
            &mut rng,
        );
        if spec.bool_or("long_burst", false) {
            // One long burst to make the CSMA/R2T difference stark (e04).
            medium.add_disturbance(Disturbance {
                channel: Some(0),
                start: SimTime::from_secs(8),
                end: SimTime::from_secs(12),
            });
        }
        medium
    }

    fn traffic<M: MacProtocol>(sim: &mut MacSimulation<M>, slots: u64, nodes: u32) {
        for round in 0..(slots / 50) {
            let src = NodeId((round % nodes as u64) as u32);
            sim.send_broadcast(src, vec![round as u8]);
            sim.run_slots(50);
        }
    }
}

impl Scenario for InaccessibilityScenario {
    fn name(&self) -> &str {
        "inaccessibility"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("mac", ["r2t", "csma"])
            .axis("burst_ms", [200, 800])
            .axis("copies", [2])
            .axis("nodes", [6])
            .axis("gap_s", [3.0])
            .axis("loss", [0.01])
            .axis("long_burst", [false, true])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "delivery_per_generated" => Some((0.0, 8.0)),
            "p95_delay_ms" | "max_delay_ms" => Some((0.0, 5_000.0)),
            "longest_inaccessibility_ms" => Some((0.0, 10_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let nodes = spec.u64_or("nodes", 6).max(2) as u32;
        let burst_ms = spec.u64_or("burst_ms", 200).max(1);
        let slots = spec.duration.as_millis().max(100); // 1 ms slots
        let mac_kind = spec.str_or("mac", "r2t");

        let mut record = RunRecord::new();
        match mac_kind {
            "csma" => {
                let medium = Self::medium(spec, slots, burst_ms);
                let mut sim = MacSimulation::new(medium, MacSimConfig::default(), spec.seed);
                for i in 0..nodes {
                    sim.add_node(
                        NodeId(i),
                        CsmaMac::new(CsmaConfig::default()),
                        Vec2::new(i as f64 * 10.0, 0.0),
                    );
                }
                Self::traffic(&mut sim, slots, nodes);
                // A CSMA node cannot escape its jammed channel, so its
                // inaccessibility is the raw disturbance profile.
                let mut tracker = InaccessibilityTracker::new();
                for slot in 0..slots {
                    let now = SimTime::from_millis(slot);
                    tracker.observe(sim.medium().is_disturbed(0, now), now);
                }
                tracker.finish(SimTime::from_millis(slots));
                record.set("longest_inaccessibility_ms", tracker.longest().as_secs_f64() * 1e3);
                record.set_flag("bounded", false);
                let mut delays = sim.metrics().delays_ms.clone();
                record.set("delivery_per_generated", sim.metrics().delivery_per_generated());
                record.set("p95_delay_ms", delays.p95());
                record.set("max_delay_ms", delays.max());
                record.set("collisions", sim.metrics().collisions as f64);
            }
            "r2t" => {
                let config = R2TMacConfig {
                    copies: spec.u64_or("copies", 2).clamp(1, 8) as u32,
                    heartbeat_period: 0,
                    channel_switch_threshold: 10,
                    channels: 2,
                    ..Default::default()
                };
                let medium = Self::medium(spec, slots, burst_ms);
                let mut sim = MacSimulation::new(medium, MacSimConfig::default(), spec.seed);
                for i in 0..nodes {
                    sim.add_node(
                        NodeId(i),
                        R2TMac::new(CsmaMac::new(CsmaConfig::default()), config.clone()),
                        Vec2::new(i as f64 * 10.0, 0.0),
                    );
                }
                Self::traffic(&mut sim, slots, nodes);
                let mut longest = SimDuration::ZERO;
                let mut bound = SimDuration::ZERO;
                for id in sim.node_ids() {
                    let mac = sim.mac(id).unwrap();
                    longest = longest.max(mac.inaccessibility().longest());
                    bound = mac.inaccessibility_bound(SimDuration::from_millis(1));
                }
                record.set("longest_inaccessibility_ms", longest.as_secs_f64() * 1e3);
                record.set("inaccessibility_bound_ms", bound.as_secs_f64() * 1e3);
                record.set_flag("bounded", longest <= bound);
                let mut delays = sim.metrics().delays_ms.clone();
                record.set("delivery_per_generated", sim.metrics().delivery_per_generated());
                record.set("p95_delay_ms", delays.p95());
                record.set("max_delay_ms", delays.max());
                record.set("collisions", sim.metrics().collisions as f64);
            }
            other => panic!("unknown inaccessibility mac {other:?} (expected csma|r2t)"),
        }
        record
    }
}

/// Autonomous pulse/slot alignment under clock drift (paper §V-A2, the body
/// of bench `e06`): nodes with drifting oscillators and random initial
/// phases align their TDMA pulse timing using only overheard neighbour
/// pulses.  The drift magnitude, pulse-loss probability, correction gain and
/// pulse period — previously constants of the e06 harness — are parameters.
pub struct PulseSyncScenario;

impl Scenario for PulseSyncScenario {
    fn name(&self) -> &str {
        "pulse-sync"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("drift_ppm", [40.0, 100.0])
            .axis("loss", [0.05, 0.3])
            .axis("gain", [0.5, 0.0])
            .axis("nodes", [10])
            .axis("period_ms", [100.0])
            .axis("threshold", [0.05])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "initial_max_error" | "steady_max_error" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let config = PulseSyncConfig {
            nodes: spec.u64_or("nodes", 10).max(2) as usize,
            period: (spec.f64_or("period_ms", 100.0).max(1.0)) / 1e3,
            gain: spec.f64_or("gain", 0.5).clamp(0.0, 1.0),
            drift: spec.f64_or("drift_ppm", 40.0).max(0.0) * 1e-6,
            loss_probability: spec.f64_or("loss", 0.05).clamp(0.0, 1.0),
            dt: 0.001,
        };
        let threshold = spec.f64_or("threshold", 0.05).clamp(1e-6, 0.5);
        let mut sim = PulseSyncSim::new(config, spec.seed);
        let initial = sim.max_phase_error_fraction();
        // The spec duration budgets the convergence hunt; ten more seconds
        // measure the steady state.
        let converged = sim.run_until_converged(threshold, spec.duration.as_secs_f64());
        sim.run(10.0);
        let steady = sim.max_phase_error_fraction();

        let mut record = RunRecord::new();
        record.set("initial_max_error", initial);
        record.set_flag("converged", converged.is_some());
        if let Some(at) = converged {
            record.set("converged_after_s", at);
        }
        record.set("steady_max_error", steady);
        record
    }
}

/// Self-stabilizing end-to-end FIFO delivery (paper §V-A2, the body of bench
/// `e07`): a message backlog pushed through a bounded-capacity channel that
/// omits, duplicates and reorders packets, from a clean or corrupted initial
/// configuration.
pub struct EndToEndScenario;

impl Scenario for EndToEndScenario {
    fn name(&self) -> &str {
        "end-to-end"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("omission", [0.0, 0.1, 0.3])
            .axis("duplication", [0.0, 0.1, 0.3])
            .axis("capacity", [8, 4, 16])
            .axis("corrupt", [false, true])
            .axis("reorder", [true, false])
            .axis("messages", [200])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "rounds_per_message" => Some((0.0, 1_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let config = E2EConfig {
            capacity: spec.u64_or("capacity", 8).clamp(1, 1_024) as usize,
            omission: spec.f64_or("omission", 0.0).clamp(0.0, 0.95),
            duplication: spec.f64_or("duplication", 0.0).clamp(0.0, 0.95),
            reorder: spec.bool_or("reorder", true),
        };
        let mut session = EndToEndSession::new(&config, spec.seed);
        if spec.bool_or("corrupt", false) {
            session.corrupt_initial_state(1_000_000);
        }
        let messages = spec.u64_or("messages", 200).max(1);
        let sent: Vec<u64> = (1..=messages).collect();
        for &m in &sent {
            session.sender.enqueue(m);
        }
        session.run_until_drained(10_000_000);
        let delivered = session.receiver.delivered().to_vec();
        // `sent` is always the contiguous range 1..=messages, so membership
        // is a bounds check, not an O(messages) scan per delivered packet.
        let was_sent = |p: u64| (1..=messages).contains(&p);
        let garbage = delivered.iter().filter(|p| !was_sent(**p)).count();
        let real = delivered.iter().filter(|p| was_sent(**p)).count();
        let lost_prefix = sent.len().saturating_sub(real);

        let mut record = RunRecord::new();
        record.set("rounds_per_message", session.rounds() as f64 / sent.len() as f64);
        record.set_flag("eventual_fifo", eventually_fifo(&sent, &delivered, 3));
        record.set("garbage_delivered", garbage as f64);
        record.set("lost_prefix", lost_prefix as f64);
        record
    }
}

/// The simulated campaign transport fabric under configurable degradation
/// (ROADMAP item 4, de-risking item 1's distributed sharding): an all-to-all
/// message workload over [`SimTransport`], measuring what survives per-link
/// drop/duplication/reordering and an optional mid-run partition.
///
/// Every metric is a pure function of `(seed, params)` — the fabric's
/// determinism contract — so this family doubles as a campaign-level
/// regression net for the transport crate: any worker count and any
/// kill/resume history must aggregate the identical report.
pub struct NetTransportScenario;

impl NetTransportScenario {
    fn fabric(spec: &ScenarioSpec, nodes: u32) -> SimTransport {
        let link = LinkConfig {
            delay: SimDuration::from_secs_f64(spec.f64_or("delay_ms", 5.0).max(0.0) / 1e3),
            jitter: SimDuration::from_secs_f64(spec.f64_or("jitter_ms", 3.0).max(0.0) / 1e3),
            drop_probability: spec.f64_or("drop", 0.1).clamp(0.0, 1.0),
            duplicate_probability: spec.f64_or("duplicate", 0.05).clamp(0.0, 1.0),
            reorder_probability: spec.f64_or("reorder", 0.2).clamp(0.0, 1.0),
            reorder_window: SimDuration::from_millis(20),
        };
        let mut net = SimTransport::new(spec.seed).with_default_link(link);
        if spec.bool_or("partition", false) {
            // Cut the fabric in half for the middle third of the workload.
            let rounds = spec.u64_or("messages", 40).max(1);
            let (a, b): (Vec<_>, Vec<_>) =
                (0..nodes).map(karyon_transport::NodeId).partition(|n| n.0 < nodes / 2);
            net.add_partition(PartitionWindow {
                from: SimTime::from_millis(rounds * 10 / 3),
                until: SimTime::from_millis(rounds * 10 * 2 / 3),
                group_a: a,
                group_b: b,
            });
        }
        net
    }
}

impl Scenario for NetTransportScenario {
    fn name(&self) -> &str {
        "net-transport"
    }

    fn engine_driven(&self) -> bool {
        true
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("nodes", [4, 2, 8])
            .axis("messages", [40])
            .axis("drop", [0.1, 0.0, 0.3])
            .axis("duplicate", [0.05, 0.0])
            .axis("reorder", [0.2, 0.0])
            .axis("delay_ms", [5.0])
            .axis("jitter_ms", [3.0])
            .axis("partition", [false, true])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "delivered_ratio" => Some((0.0, 2.0)),
            "mean_delay_ms" => Some((0.0, 100.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let nodes = spec.u64_or("nodes", 4).clamp(2, 1_024) as u32;
        let rounds = spec.u64_or("messages", 40).max(1);
        let mut net = Self::fabric(spec, nodes);
        let mut deliveries = Vec::new();
        // One ring round every 10 ms: each node messages its clockwise
        // neighbour, so every directed ring link carries `rounds` messages.
        for round in 0..rounds {
            deliveries.extend(net.advance_to(SimTime::from_millis(round * 10)));
            for src in 0..nodes {
                let dst = (src + 1) % nodes;
                net.send(
                    karyon_transport::NodeId(src),
                    karyon_transport::NodeId(dst),
                    round.to_le_bytes().to_vec(),
                );
            }
        }
        deliveries.extend(net.drain());

        let stats = net.stats();
        let mean_delay_ms = if deliveries.is_empty() {
            0.0
        } else {
            deliveries
                .iter()
                .map(|d| (d.delivered_at.as_micros() - d.sent_at.as_micros()) as f64 / 1e3)
                .sum::<f64>()
                / deliveries.len() as f64
        };

        let mut record = RunRecord::new();
        // The fabric never schedules into the past, so an engine clamp here
        // is a transport bug the campaign surfaces as a suspect run.
        record.absorb_engine_clamps(net.engine());
        record.set("sent", stats.sent as f64);
        record.set("delivered_ratio", stats.delivered as f64 / stats.sent.max(1) as f64);
        record.set("dropped", stats.dropped as f64);
        record.set("duplicated", stats.duplicated as f64);
        record.set("reordered", stats.reordered as f64);
        record.set("partition_dropped", stats.partition_dropped as f64);
        record.set("mean_delay_ms", mean_delay_ms);
        record.set_flag("lossless", stats.lost() == 0);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tdma_converges_and_stays_collision_free() {
        let tdma = TdmaScenario;
        let calm = tdma
            .run(&ScenarioSpec::new("tdma").with("nodes", 8).with_seed(5).with_duration_secs(20));
        assert_eq!(calm.get("converged"), Some(1.0));
        assert_eq!(calm.get("post_convergence_collisions"), Some(0.0));
        let adversarial = tdma.run(
            &ScenarioSpec::new("tdma")
                .with("nodes", 8)
                .with("adversarial", true)
                .with_seed(5)
                .with_duration_secs(20),
        );
        assert_eq!(adversarial.get("converged"), Some(1.0));
        assert!(
            adversarial.get("reselections").unwrap() >= calm.get("reselections").unwrap(),
            "the all-claim-slot-0 start cannot need fewer reselections"
        );
    }

    #[test]
    fn tdma_reconverges_after_churn() {
        let record = TdmaScenario.run(
            &ScenarioSpec::new("tdma")
                .with("nodes", 8)
                .with("churn", true)
                .with_seed(9)
                .with_duration_secs(20),
        );
        assert_eq!(record.get("converged"), Some(1.0));
        assert_eq!(record.get("reconverged_after_join"), Some(1.0));
        assert!(record.get("frames_to_converge_after_join").is_some());
    }

    #[test]
    fn r2t_bounds_inaccessibility_where_csma_does_not() {
        let family = InaccessibilityScenario;
        let base = ScenarioSpec::new("inaccessibility")
            .with("burst_ms", 800)
            .with_seed(9)
            .with_duration_secs(20);
        let csma = family.run(&base.clone().with("mac", "csma"));
        let r2t = family.run(&base.with("mac", "r2t"));
        assert_eq!(csma.get("bounded"), Some(0.0), "CSMA inaccessibility is unbounded by design");
        assert_eq!(r2t.get("bounded"), Some(1.0), "R2T-MAC must respect its bound: {r2t:?}");
        assert!(
            r2t.get("longest_inaccessibility_ms").unwrap()
                < csma.get("longest_inaccessibility_ms").unwrap(),
            "channel diversity must shorten inaccessibility: {r2t:?} vs {csma:?}"
        );
        assert!(r2t.get("delivery_per_generated").unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown inaccessibility mac")]
    fn invalid_inaccessibility_mac_panics_with_guidance() {
        let _ = InaccessibilityScenario
            .run(&ScenarioSpec::new("inaccessibility").with("mac", "aloha").with_duration_secs(5));
    }

    #[test]
    fn pulse_sync_aligns_only_with_correction() {
        let base = ScenarioSpec::new("pulse-sync").with_seed(5).with_duration_secs(60);
        let corrected = PulseSyncScenario.run(&base.clone());
        assert_eq!(corrected.get("converged"), Some(1.0), "{corrected:?}");
        assert!(corrected.get("steady_max_error").unwrap() < 0.05);
        let uncorrected = PulseSyncScenario.run(&base.with("gain", 0.0));
        assert_eq!(
            uncorrected.get("converged"),
            Some(0.0),
            "without the correction the phases never align: {uncorrected:?}"
        );
    }

    #[test]
    fn net_transport_is_a_pure_function_of_seed_and_params() {
        let spec = ScenarioSpec::new("net-transport")
            .with("partition", true)
            .with_seed(41)
            .with_duration_secs(10);
        let a = NetTransportScenario.run(&spec);
        let b = NetTransportScenario.run(&spec);
        assert_eq!(a, b, "the fabric's determinism contract");
        assert_eq!(a.clamped_schedules, 0, "the fabric never schedules into the past: {a:?}");
        assert!(a.get("partition_dropped").unwrap() > 0.0, "the partition must sever: {a:?}");
        assert!(a.get("delivered_ratio").unwrap() > 0.0, "{a:?}");
    }

    #[test]
    fn net_transport_clean_fabric_is_lossless() {
        let record = NetTransportScenario.run(
            &ScenarioSpec::new("net-transport")
                .with("drop", 0.0)
                .with("duplicate", 0.0)
                .with("reorder", 0.0)
                .with_seed(3)
                .with_duration_secs(10),
        );
        assert_eq!(record.get("lossless"), Some(1.0), "{record:?}");
        assert_eq!(record.get("delivered_ratio"), Some(1.0), "{record:?}");
        assert_eq!(record.get("reordered"), Some(0.0), "jitter < round spacing: {record:?}");
    }

    #[test]
    fn end_to_end_holds_fifo_even_from_corrupted_state() {
        let base = ScenarioSpec::new("end-to-end")
            .with("omission", 0.3)
            .with("duplication", 0.3)
            .with_seed(77);
        let clean = EndToEndScenario.run(&base.clone());
        assert_eq!(clean.get("eventual_fifo"), Some(1.0), "{clean:?}");
        assert_eq!(clean.get("garbage_delivered"), Some(0.0));
        let corrupt = EndToEndScenario.run(&base.with("corrupt", true));
        assert_eq!(corrupt.get("eventual_fifo"), Some(1.0), "{corrupt:?}");
    }
}

//! The builtin scenario families, grouped by the workspace layer they drive.
//!
//! Every KARYON evaluation experiment (the e01–e16 bench harnesses) is backed
//! by a family here, so each gets grid sweeps, Monte-Carlo replication,
//! parallel chunked execution, checkpoint/resume and the `karyon-campaign`
//! CLI for free.  Each family implements [`Scenario`](crate::Scenario) with:
//!
//! * a [`param_domain`](crate::Scenario::param_domain) declaring every
//!   recognised parameter and its default sweep (first value = default) —
//!   the contract behind `karyon-campaign list-families --output json` and
//!   the registry coverage tests;
//! * [`metric_range`](crate::Scenario::metric_range) declarations for
//!   continuous metrics with known scales, so million-run campaigns stream
//!   their quantiles in O(1) memory per point;
//! * [`engine_driven`](crate::Scenario::engine_driven) where a
//!   `karyon_sim::Engine` is involved, which opts the family into the
//!   registry-wide clamp audit.
//!
//! [`builtin_registry`](crate::builtin_registry) registers one instance of
//! every family below.

pub mod middleware;
pub mod net;
pub mod safety;
pub mod sensors;
pub mod vehicle;

pub use middleware::{MiddlewareOverloadScenario, MiddlewareQosScenario};
pub use net::{
    EndToEndScenario, InaccessibilityScenario, NetTransportScenario, PulseSyncScenario,
    TdmaScenario,
};
pub use safety::{CooperationScenario, KernelLatencyScenario, TopologyScenario};
pub use sensors::{ReliableSensorScenario, SensorValidityScenario};
pub use vehicle::{
    AvionicsScenario, IntersectionScenario, LaneChangeScenario, PlatoonFaultScenario,
    PlatoonScenario,
};

//! Safety-kernel-layer families: kernel evaluation cost/reaction bounds
//! (§III, experiment e14) and reliable assessment of the cooperation state
//! (§V-C, experiment e09).

use karyon_core::{AgreementProtocol, DesignTimeSafetyInfo, ProposalState, SafetyKernel};
use karyon_net::{Graph, NodeId, TopologyDiscovery};
use karyon_sensors::Validity;
use karyon_sim::{Rng, SimDuration, SimTime};

use crate::grid::ParamGrid;
use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// Safety-kernel evaluation and the bounded LoS-switch argument (§III, the
/// body of bench `e14`): a synthetic design of configurable size is
/// evaluated for `cycles` kernel cycles and the design-time worst-case
/// reaction bound is checked against the tightest hazard reaction bound.
///
/// The rule-set size, validity threshold, hazard bound and cycle period were
/// constants of the e14 harness; as parameters a campaign can sweep the
/// rule-set growth curve.  All metrics are deterministic model quantities —
/// wall-clock cycle cost is measured by the harness *around* the campaign
/// (`RunnerStats` + elapsed time), never inside the family, which keeps the
/// runner's bit-identity contract intact.
pub struct KernelLatencyScenario;

impl Scenario for KernelLatencyScenario {
    fn name(&self) -> &str {
        "kernel-latency"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("rules_per_level", [8, 2, 32, 128])
            .axis("cycles", [2_000])
            .axis("cycle_period_ms", [100])
            .axis("validity_threshold", [0.6])
            .axis("hazard_bound_ms", [500])
            .axis("levels", [2])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let rules_per_level = spec.u64_or("rules_per_level", 8).clamp(0, 100_000) as usize;
        let levels = spec.u64_or("levels", 2).clamp(1, 200) as u8;
        let design = DesignTimeSafetyInfo::synthetic(
            "kernel-latency",
            levels,
            rules_per_level,
            spec.f64_or("validity_threshold", 0.6).clamp(0.0, 1.0),
            SimDuration::from_millis(spec.u64_or("hazard_bound_ms", 500).max(1)),
            SimDuration::from_millis(50),
        );
        let tightest = design.hazards().tightest_reaction_bound().expect("one hazard declared");
        let cycle_period = SimDuration::from_millis(spec.u64_or("cycle_period_ms", 100).max(1));
        let mut kernel = SafetyKernel::new(design, cycle_period);
        // Populate the runtime store once, exactly like the seed e14 harness:
        // every item valid and every component healthy at t=1 ms.  Items age
        // past the 500 ms freshness bound mid-run, so long sweeps exercise
        // both the rule-pass and the rule-fail evaluation paths.
        for i in 0..rules_per_level {
            kernel.info_mut().update_data(
                &format!("item-{i}"),
                1.0,
                Validity::new(0.9),
                SimTime::from_millis(1),
            );
            kernel.info_mut().update_health(
                &format!("component-{i}"),
                true,
                SimTime::from_millis(1),
            );
        }
        let cycles = spec.u64_or("cycles", 2_000).clamp(1, 10_000_000);
        for i in 0..cycles {
            kernel.run_cycle(SimTime::from_millis(10 + i));
        }
        let reaction = kernel.worst_case_reaction();

        let mut record = RunRecord::new();
        record.set("rule_conditions", (rules_per_level * 3 * levels as usize) as f64);
        record.set("evaluations", kernel.manager().evaluations() as f64);
        record.set("final_los", f64::from(kernel.current_los().0));
        record.set("worst_case_reaction_ms", reaction.as_secs_f64() * 1e3);
        record.set("tightest_hazard_bound_ms", tightest.as_secs_f64() * 1e3);
        record.set_flag("bound_satisfied", reaction <= tightest);
        record
    }
}

/// Bounded-round manoeuvre agreement under message loss (§V-C, the body of
/// bench `e09a`): one proposer runs one agreement round against
/// `participants` vehicles over a lossy broadcast with periodic
/// retransmission.  One run is one trial — Monte-Carlo replications give
/// the success rate, so the campaign owns the trial loop the bench used to
/// hand-roll.
pub struct CooperationScenario;

impl Scenario for CooperationScenario {
    fn name(&self) -> &str {
        "cooperation"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("participants", [4, 2, 8])
            .axis("loss", [0.0, 0.2, 0.5])
            .axis("deadline_ms", [300])
            .axis("retransmit_ms", [50])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "latency_ms" => Some((0.0, 10_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let participants = spec.u64_or("participants", 4).clamp(1, 10_000) as usize;
        let loss = spec.f64_or("loss", 0.0).clamp(0.0, 1.0);
        let deadline = SimDuration::from_millis(spec.u64_or("deadline_ms", 300).max(1));
        let retransmit = SimDuration::from_millis(spec.u64_or("retransmit_ms", 50).max(1));

        let mut rng = Rng::seed_from(spec.seed);
        let mut initiator = AgreementProtocol::new(0);
        let mut others: Vec<AgreementProtocol> =
            (1..=participants).map(|i| AgreementProtocol::new(i as u32)).collect();
        let ids: Vec<u32> = (1..=participants as u32).collect();
        let start = SimTime::ZERO;
        let (proposal_msg, id) = initiator.propose("merge", &ids, start, deadline);
        // Round trips with per-message loss, retransmitting every
        // `retransmit` until the deadline.
        let mut t = start;
        while initiator.proposal_state(id) == Some(ProposalState::Pending) && t < start + deadline {
            for other in others.iter_mut() {
                if rng.chance(loss) {
                    continue;
                }
                for response in other.on_message(&proposal_msg, t) {
                    if rng.chance(loss) {
                        continue;
                    }
                    initiator.on_message(&response, t + SimDuration::from_millis(10));
                }
            }
            t += retransmit;
            initiator.tick(t);
        }
        initiator.tick(start + deadline + SimDuration::from_millis(1));

        let agreed = initiator.proposal_state(id) == Some(ProposalState::Agreed);
        let mut record = RunRecord::new();
        record.set_flag("agreed", agreed);
        if agreed {
            record.set("latency_ms", t.since(start).as_secs_f64() * 1e3);
        }
        record
    }
}

/// Topology-level feasibility of reliable cooperation-state dissemination
/// (§V-C, the bodies of bench `e09b`/`e09c`): flooding topology-discovery
/// convergence, and the 2f+1 vertex-disjoint-path condition for
/// Byzantine-resilient dissemination, on representative topologies.
pub struct TopologyScenario;

impl Scenario for TopologyScenario {
    fn name(&self) -> &str {
        "topology"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("topology", ["ring-chords", "line", "complete"])
            .axis("nodes", [12, 6, 10])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let nodes = spec.u64_or("nodes", 12).clamp(3, 10_000) as u32;
        let (graph, target) = match spec.str_or("topology", "ring-chords") {
            "ring-chords" => (Graph::ring_with_chords(nodes), NodeId(nodes / 2)),
            "line" => (Graph::line(nodes), NodeId(nodes - 1)),
            "complete" => (Graph::complete(nodes), NodeId(nodes - 1)),
            other => {
                panic!("unknown topology {other:?} (expected ring-chords|line|complete)")
            }
        };
        let mut record = RunRecord::new();
        record.set("nodes", graph.node_count() as f64);
        record.set("edges", graph.edge_count() as f64);
        let paths = graph.vertex_disjoint_paths(NodeId(0), target);
        record.set("disjoint_paths", paths as f64);
        record.set_flag("byzantine_f1", graph.byzantine_resilient(NodeId(0), target, 1));
        record.set_flag("byzantine_f2", graph.byzantine_resilient(NodeId(0), target, 2));
        let mut discovery = TopologyDiscovery::new(graph);
        let rounds = discovery.run_to_convergence(4 * nodes as u64 + 16);
        record.set_flag("discovery_converged", rounds.is_some());
        if let Some(rounds) = rounds {
            record.set("discovery_rounds", rounds as f64);
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-refactor e14 numbers: a 100 ms cycle period plus the 50 ms
    /// switch bound give a 150 ms worst-case reaction against the 500 ms
    /// hazard bound, for every rule-set size.
    #[test]
    fn kernel_reaction_bound_matches_seed_harness_numbers() {
        for rules in [2i64, 8, 32, 128] {
            let record = KernelLatencyScenario.run(
                &ScenarioSpec::new("kernel-latency").with("rules_per_level", rules).with_seed(1),
            );
            assert_eq!(record.get("worst_case_reaction_ms"), Some(150.0));
            assert_eq!(record.get("tightest_hazard_bound_ms"), Some(500.0));
            assert_eq!(record.get("bound_satisfied"), Some(1.0));
            assert_eq!(record.get("evaluations"), Some(2_000.0), "one evaluation per cycle");
        }
    }

    #[test]
    fn agreement_succeeds_without_loss_and_can_fail_under_heavy_loss() {
        let base = ScenarioSpec::new("cooperation").with_seed(13);
        let clean = CooperationScenario.run(&base.clone());
        assert_eq!(clean.get("agreed"), Some(1.0), "{clean:?}");
        assert!(clean.get("latency_ms").unwrap() <= 300.0);
        // Under 90 % loss most trials abort (never inconsistently agree).
        let mut failures = 0;
        for seed in 0..20 {
            let lossy =
                CooperationScenario.run(&base.clone().with("loss", 0.9).with_seed(100 + seed));
            if lossy.get("agreed") == Some(0.0) {
                failures += 1;
            }
        }
        assert!(failures > 0, "90% loss should abort at least one of 20 trials");
    }

    #[test]
    fn denser_topologies_provide_byzantine_disjoint_paths() {
        let ring = TopologyScenario
            .run(&ScenarioSpec::new("topology").with("topology", "ring-chords").with("nodes", 12));
        assert_eq!(ring.get("byzantine_f1"), Some(1.0), "{ring:?}");
        assert_eq!(ring.get("discovery_converged"), Some(1.0));
        let complete = TopologyScenario
            .run(&ScenarioSpec::new("topology").with("topology", "complete").with("nodes", 6));
        assert_eq!(complete.get("byzantine_f2"), Some(1.0), "{complete:?}");
        assert!(
            complete.get("disjoint_paths").unwrap() > ring.get("disjoint_paths").unwrap()
                || complete.get("disjoint_paths").unwrap() >= 5.0
        );
    }
}

//! Middleware-layer families: event-channel QoS assessment and adaptation
//! (paper §V-B, experiment e08) and EventBus v2 overload behavior.

use karyon_middleware::{
    Admission, EventBus, NetworkCapability, NetworkId, OverloadStrategy, Payload, QosClass,
    QosRequirement, SubscriptionId,
};
use karyon_sim::{Engine, SimDuration, SimTime};

use crate::grid::ParamGrid;
use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// Event-channel QoS under load and mid-run degradation (§V-B), driven by the
/// discrete-event [`Engine`] — this family also exercises the engine's
/// clamped-schedule accounting, which the campaign surfaces as suspect runs.
///
/// The channel's QoS contract — the network segment it is announced on, its
/// latency deadline and its delivery-ratio floor — used to be hard-coded in
/// the e08 harness; here they are ordinary parameters, so the three e08
/// channels (in-vehicle brake command, V2V lead state, V2V hazard warning)
/// are three grid points of the same family.
pub struct MiddlewareQosScenario;

#[derive(Debug, Clone, Copy)]
enum QosEvent {
    Publish,
    Degrade,
}

impl Scenario for MiddlewareQosScenario {
    fn name(&self) -> &str {
        "middleware-qos"
    }

    fn engine_driven(&self) -> bool {
        true
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("rate_hz", [50.0, 100.0])
            .axis("degrade", [false, true])
            .axis("network", ["wireless", "local"])
            .axis("max_latency_ms", [60, 10, 2])
            .axis("min_delivery_ratio", [0.9, 0.99])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            // Continuous metrics with known scales: stream their campaign
            // quantiles through fixed histograms so million-run sweeps hold
            // no samples.  Flags and counts stay undeclared (exact).
            "mean_latency_ms" => Some((0.0, 250.0)),
            "delivery_ratio" | "deadline_miss_ratio" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let rate_hz = spec.f64_or("rate_hz", 50.0).max(1.0);
        let degrade = spec.bool_or("degrade", false);
        let network = match spec.str_or("network", "wireless") {
            "wireless" => NetworkId(1),
            "local" => NetworkId(0),
            other => panic!("unknown qos network {other:?} (expected wireless|local)"),
        };
        let requirement = QosRequirement::builder()
            .max_latency(SimDuration::from_millis(spec.u64_or("max_latency_ms", 60).max(1)))
            .min_delivery_ratio(spec.f64_or("min_delivery_ratio", 0.9))
            .max_rate(rate_hz)
            .build();

        let mut bus = EventBus::new(spec.seed);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
        let subscription =
            bus.topic("platoon/lead-state").via(network).subscribe(QosClass::Batched);
        let publisher = bus.topic("platoon/lead-state").via(network).announce(requirement);

        // Clamp audit finding: below ~1 µs the period rounds to zero and the
        // publish loop degenerates into a zero-delay self-loop at t=0 — the
        // engine never advances and `run_until` never returns.  One
        // microsecond (the simulator's time quantum) is the causality floor.
        let period = SimDuration::from_secs_f64(1.0 / rate_hz).max(SimDuration::from_micros(1));
        let end = SimTime::ZERO + spec.duration;
        let mut engine: Engine<EventBus, QosEvent> = Engine::new(bus);
        // No-op unless a campaign trace scope is active (clamp attribution).
        karyon_telemetry::observe_engine(&mut engine);
        // The publish loop is a fixed-period train: one registration replaces
        // the per-tick self-reschedule, with identical tick times (0, period,
        // 2·period, … ≤ end) and O(1) per-tick queue cost.
        engine.schedule_periodic(SimTime::ZERO, period, QosEvent::Publish);
        if degrade {
            engine.schedule_at(
                SimTime::from_secs_f64(spec.duration.as_secs_f64() / 2.0),
                QosEvent::Degrade,
            );
        }
        let mut published: u64 = 0;
        engine.run_until(end, |bus, ctx, event| match event {
            QosEvent::Publish => {
                bus.publish(&publisher, Payload::tagged(published), ctx.now());
                published += 1;
                bus.drain_with(subscription, ctx.now(), usize::MAX, |_| {});
            }
            QosEvent::Degrade => {
                bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());
            }
        });

        let mut record = RunRecord::new();
        record.absorb_engine_clamps(&engine);
        let mut bus = engine.into_state();
        bus.drain_with(subscription, end, usize::MAX, |_| {});
        let stats = bus.subscription_stats(subscription).expect("subscription exists");
        record.set_flag("admitted", publisher.is_admitted());
        record.set_flag(
            "admitted_after",
            bus.admission(publisher.subject()) == Some(Admission::Admitted),
        );
        record.set("published", published as f64);
        record.set("delivery_ratio", stats.delivery_ratio());
        record.set("mean_latency_ms", stats.mean_latency_ms);
        record.set("missed_deadlines", stats.missed_deadline as f64);
        record.set(
            "deadline_miss_ratio",
            if stats.delivered > 0 {
                stats.missed_deadline as f64 / stats.delivered as f64
            } else {
                0.0
            },
        );
        record
    }
}

/// EventBus v2 under overload: offered load beyond the rated consumer
/// capacity, per-class bounded mailboxes, the bus-wide backlog threshold and
/// the pluggable overload strategies (ROADMAP item 3 — "what happens at 10×
/// rated traffic", the question the paper never ran).
///
/// One publisher streams `overload.stream` at `rated_hz × load_x`; consumers
/// drain at the rated cadence with class-typical discipline (realtime drains
/// everything each tick, batched drains one event per tick — the rated
/// capacity — and background catches up in bulk every eighth tick).  The
/// family reports per-class delivery ratio and P99 delivery latency, which is
/// how the e08 driver shows Realtime holding its latency bound at 10× load
/// while Batched degrades gracefully.
pub struct MiddlewareOverloadScenario;

#[derive(Debug, Clone, Copy)]
enum OverloadEvent {
    Publish,
    Drain,
}

/// The scenario's per-class mailbox capacities, sized for the rated 100 Hz
/// drain cadence: the capacity bounds the worst-case queueing delay
/// (capacity ÷ service rate), so realtime stays under ~80 ms of queueing and
/// batched under ~640 ms.
fn overload_mailbox_capacity(class: QosClass) -> usize {
    match class {
        QosClass::Realtime => 8,
        QosClass::Batched => 64,
        QosClass::Background => 1024,
    }
}

impl Scenario for MiddlewareOverloadScenario {
    fn name(&self) -> &str {
        "middleware-overload"
    }

    fn engine_driven(&self) -> bool {
        true
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("load_x", [10.0, 1.0, 2.0, 20.0])
            .axis("qos_mix", ["mixed", "realtime", "batched", "background"])
            .axis("backlog_threshold", [1024, 64, 4096])
            .axis("strategy", ["class-default", "drop-oldest", "sample", "aggregate"])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "realtime_delivery_ratio" | "batched_delivery_ratio" | "background_delivery_ratio" => {
                Some((0.0, 1.0))
            }
            "realtime_p99_ms" | "batched_p99_ms" | "background_p99_ms" => Some((0.0, 2_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let load_x = spec.f64_or("load_x", 10.0).max(0.01);
        let rated_hz = spec.f64_or("rated_hz", 100.0).max(1.0);
        let backlog_threshold = spec.u64_or("backlog_threshold", 1024) as usize;
        let strategy = match spec.str_or("strategy", "class-default") {
            "class-default" => None,
            other => Some(
                OverloadStrategy::from_name(other)
                    .unwrap_or_else(|| panic!("unknown overload strategy {other:?}")),
            ),
        };
        let classes: &[QosClass] = match spec.str_or("qos_mix", "mixed") {
            "mixed" => &[QosClass::Realtime, QosClass::Batched, QosClass::Background],
            "realtime" => &[QosClass::Realtime],
            "batched" => &[QosClass::Batched],
            "background" => &[QosClass::Background],
            other => {
                panic!("unknown qos_mix {other:?} (expected mixed|realtime|batched|background)")
            }
        };

        let mut bus = EventBus::new(spec.seed);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.set_backlog_threshold(backlog_threshold);
        let mut subs: Vec<(QosClass, SubscriptionId)> = Vec::new();
        for &class in classes {
            let mut topic = bus.topic("overload.stream").mailbox(overload_mailbox_capacity(class));
            if let Some(strategy) = strategy {
                topic = topic.overload(strategy);
            }
            subs.push((class, topic.subscribe(class)));
        }
        let publisher = bus
            .topic("overload.stream")
            .announce(QosRequirement::realtime(SimDuration::from_millis(60), rated_hz * load_x));

        // Same causality floor as middleware-qos: periods never round below
        // the 1 µs time quantum, so the loops cannot self-schedule at t=0.
        let publish_period =
            SimDuration::from_secs_f64(1.0 / (rated_hz * load_x)).max(SimDuration::from_micros(1));
        let drain_period =
            SimDuration::from_secs_f64(1.0 / rated_hz).max(SimDuration::from_micros(1));
        let end = SimTime::ZERO + spec.duration;
        let mut engine: Engine<EventBus, OverloadEvent> = Engine::new(bus);
        // No-op unless a campaign trace scope is active (clamp attribution).
        karyon_telemetry::observe_engine(&mut engine);
        // Both loops are fixed-period trains.  Registration order is the tie
        // order: publishes land before drains at coincident ticks, so a drain
        // always sees the tick's publish (the same order the self-scheduling
        // version established at t=0).
        engine.schedule_periodic(SimTime::ZERO, publish_period, OverloadEvent::Publish);
        engine.schedule_periodic(SimTime::ZERO, drain_period, OverloadEvent::Drain);
        let mut published: u64 = 0;
        let mut peak_backlog: usize = 0;
        let mut drain_tick: u64 = 0;
        engine.run_until(end, |bus, ctx, event| match event {
            OverloadEvent::Publish => {
                bus.publish(&publisher, Payload::tagged(published), ctx.now());
                published += 1;
                peak_backlog = peak_backlog.max(bus.backlog());
            }
            OverloadEvent::Drain => {
                for &(class, sub) in &subs {
                    let budget = match class {
                        // Realtime consumers keep up; the bus sheds for them.
                        QosClass::Realtime => usize::MAX,
                        // Batched consumers process at exactly the rated
                        // capacity: one event per tick.
                        QosClass::Batched => 1,
                        // Background consumers catch up in bulk.
                        QosClass::Background => {
                            if drain_tick % 8 == 0 {
                                usize::MAX
                            } else {
                                0
                            }
                        }
                    };
                    if budget > 0 {
                        bus.drain_with(sub, ctx.now(), budget, |_| {});
                    }
                }
                drain_tick += 1;
            }
        });

        let mut record = RunRecord::new();
        record.absorb_engine_clamps(&engine);
        let bus = engine.into_state();
        record.set("published", published as f64);
        record.set("peak_backlog", peak_backlog as f64);
        for (class, sub) in subs {
            let stats = bus.subscription_stats(sub).expect("subscription exists");
            let prefix = class.name();
            record.set(&format!("{prefix}_delivery_ratio"), stats.delivery_ratio());
            record.set(&format!("{prefix}_p99_ms"), stats.p99_latency_ms);
            record.set(&format!("{prefix}_delivered"), stats.delivered as f64);
            record.set(
                &format!("{prefix}_dropped"),
                (stats.dropped_pressure
                    + stats.dropped_capacity
                    + stats.sampled_out
                    + stats.displaced) as f64,
            );
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn middleware_qos_reports_channel_quality() {
        let qos = MiddlewareQosScenario;
        let record =
            qos.run(&ScenarioSpec::new("middleware-qos").with_seed(5).with_duration_secs(20));
        assert_eq!(record.get("admitted"), Some(1.0));
        assert_eq!(record.get("admitted_after"), Some(1.0), "no degradation, no re-assessment");
        assert!(record.get("delivery_ratio").unwrap() > 0.8);
        assert!(record.get("published").unwrap() > 900.0, "50 Hz × 20 s ≈ 1000 events");
        assert_eq!(record.clamped_schedules, 0, "the publish loop never schedules into the past");
    }

    /// Clamp audit regression: the publish loop must terminate and stay
    /// causality-clean even for rates whose period rounds below the 1 µs
    /// time quantum (the zero-delay self-loop found by the audit).
    #[test]
    fn middleware_qos_survives_extreme_rates_without_clamps() {
        let qos = MiddlewareQosScenario;
        for rate in [1.0, 997.0, 2.5e6, 1.0e9] {
            let record = qos.run(
                &ScenarioSpec::new("middleware-qos")
                    .with("rate_hz", rate)
                    .with_seed(8)
                    .with_duration(SimDuration::from_millis(10)),
            );
            assert_eq!(
                record.clamped_schedules, 0,
                "rate {rate} Hz: the publish loop must never schedule into the past"
            );
            assert!(record.get("published").unwrap() >= 1.0);
        }
    }

    /// The e08 admission matrix: a strict deadline over the wireless segment
    /// is rejected at announcement; the admitted V2V channel loses its
    /// admission when the monitored capability degrades mid-run.
    #[test]
    fn qos_contract_parameters_drive_admission() {
        let qos = MiddlewareQosScenario;
        let base = ScenarioSpec::new("middleware-qos").with_seed(4).with_duration_secs(10);
        let strict =
            qos.run(&base.clone().with("max_latency_ms", 10).with("min_delivery_ratio", 0.99));
        assert_eq!(strict.get("admitted"), Some(0.0), "hazard-grade QoS over wireless rejects");
        let local = qos.run(
            &base
                .clone()
                .with("network", "local")
                .with("max_latency_ms", 2)
                .with("min_delivery_ratio", 0.99),
        );
        assert_eq!(local.get("admitted"), Some(1.0), "the in-vehicle bus admits strict QoS");
        let degraded = qos.run(&base.with("degrade", true));
        assert_eq!(degraded.get("admitted"), Some(1.0));
        assert_eq!(
            degraded.get("admitted_after"),
            Some(0.0),
            "degradation must revoke the lead-state admission — the LoS-lowering trigger"
        );
    }

    /// The headline contract of the family: at 10× rated load, Realtime holds
    /// its 60 ms latency bound (shedding instead of queueing) while Batched
    /// keeps delivering a rated-capacity trickle with bounded tail latency.
    #[test]
    fn overload_realtime_holds_latency_bound_at_ten_x() {
        let family = MiddlewareOverloadScenario;
        let record = family.run(&family.default_spec().with_seed(3).with_duration_secs(30));
        assert_eq!(record.clamped_schedules, 0, "default spec must stay suspect-free");
        assert!(record.get("published").unwrap() > 25_000.0, "10× of 100 Hz over 30 s");
        let rt_p99 = record.get("realtime_p99_ms").unwrap();
        assert!(rt_p99 <= 60.0, "realtime P99 {rt_p99} ms must hold the 60 ms bound at 10×");
        let batched_ratio = record.get("batched_delivery_ratio").unwrap();
        assert!(
            batched_ratio > 0.05 && batched_ratio < 0.5,
            "batched delivers its rated trickle under 10× load, got {batched_ratio}"
        );
        let batched_p99 = record.get("batched_p99_ms").unwrap();
        assert!(
            batched_p99 > rt_p99 && batched_p99 < 2_000.0,
            "batched trades latency ({batched_p99} ms) for coverage, but stays bounded"
        );
        assert!(
            record.get("background_delivery_ratio").unwrap() > 0.9,
            "the large background mailbox absorbs the burst between bulk drains"
        );
    }

    /// A tight bus-wide backlog threshold makes realtime shed aggressively;
    /// a loose one lets its mailbox do the limiting.
    #[test]
    fn overload_backlog_threshold_gates_realtime_shedding() {
        let family = MiddlewareOverloadScenario;
        let base = family.default_spec().with_seed(9).with_duration_secs(20);
        let tight = family.run(&base.clone().with("backlog_threshold", 16));
        let loose = family.run(&base.with("backlog_threshold", 4096));
        let tight_ratio = tight.get("realtime_delivery_ratio").unwrap();
        let loose_ratio = loose.get("realtime_delivery_ratio").unwrap();
        assert!(
            tight_ratio < loose_ratio / 2.0,
            "threshold 16 must shed far more than 4096: {tight_ratio} vs {loose_ratio}"
        );
        assert!(tight.get("realtime_p99_ms").unwrap() <= 60.0, "shedding never buys latency");
    }

    /// Aggregation coalesces the overflow instead of dropping it: nearly
    /// every published event is *represented* in some delivered summary.
    #[test]
    fn overload_aggregate_strategy_represents_the_whole_stream() {
        let family = MiddlewareOverloadScenario;
        let base =
            family.default_spec().with("qos_mix", "batched").with_seed(11).with_duration_secs(20);
        let aggregated = family.run(&base.clone().with("strategy", "aggregate"));
        let dropping = family.run(&base.with("strategy", "drop-oldest"));
        let agg_ratio = aggregated.get("batched_delivery_ratio").unwrap();
        let drop_ratio = dropping.get("batched_delivery_ratio").unwrap();
        assert!(agg_ratio > 0.9, "aggregation represents the stream, got {agg_ratio}");
        assert!(drop_ratio < 0.5, "drop-oldest sheds the overflow, got {drop_ratio}");
    }
}

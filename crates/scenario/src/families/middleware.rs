//! Middleware-layer family: event-channel QoS assessment and adaptation
//! (paper §V-B, experiment e08).

use karyon_middleware::{
    Admission, ContextFilter, EventBus, NetworkCapability, NetworkId, QosRequirement, Subject,
    SubscriberId,
};
use karyon_sim::{Engine, SimDuration, SimTime};

use crate::grid::ParamGrid;
use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// Event-channel QoS under load and mid-run degradation (§V-B), driven by the
/// discrete-event [`Engine`] — this family also exercises the engine's
/// clamped-schedule accounting, which the campaign surfaces as suspect runs.
///
/// The channel's QoS contract — the network segment it is announced on, its
/// latency deadline and its delivery-ratio floor — used to be hard-coded in
/// the e08 harness; here they are ordinary parameters, so the three e08
/// channels (in-vehicle brake command, V2V lead state, V2V hazard warning)
/// are three grid points of the same family.
pub struct MiddlewareQosScenario;

#[derive(Debug, Clone, Copy)]
enum QosEvent {
    Publish,
    Degrade,
}

impl Scenario for MiddlewareQosScenario {
    fn name(&self) -> &str {
        "middleware-qos"
    }

    fn engine_driven(&self) -> bool {
        true
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("rate_hz", [50.0, 100.0])
            .axis("degrade", [false, true])
            .axis("network", ["wireless", "local"])
            .axis("max_latency_ms", [60, 10, 2])
            .axis("min_delivery_ratio", [0.9, 0.99])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            // Continuous metrics with known scales: stream their campaign
            // quantiles through fixed histograms so million-run sweeps hold
            // no samples.  Flags and counts stay undeclared (exact).
            "mean_latency_ms" => Some((0.0, 250.0)),
            "delivery_ratio" | "deadline_miss_ratio" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let rate_hz = spec.f64_or("rate_hz", 50.0).max(1.0);
        let degrade = spec.bool_or("degrade", false);
        let network = match spec.str_or("network", "wireless") {
            "wireless" => NetworkId(1),
            "local" => NetworkId(0),
            other => panic!("unknown qos network {other:?} (expected wireless|local)"),
        };
        let requirement = QosRequirement {
            max_latency: SimDuration::from_millis(spec.u64_or("max_latency_ms", 60).max(1)),
            min_delivery_ratio: spec.f64_or("min_delivery_ratio", 0.9).clamp(0.0, 1.0),
            max_rate: rate_hz,
        };
        let subject = Subject::from_name("platoon/lead-state");

        let mut bus = EventBus::new(spec.seed);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
        bus.subscribe(SubscriberId(1), network, subject, ContextFilter::accept_all());
        let admission = bus.announce(subject, network, requirement);

        // Clamp audit finding: below ~1 µs the period rounds to zero and the
        // publish loop degenerates into a zero-delay self-loop at t=0 — the
        // engine never advances and `run_until` never returns.  One
        // microsecond (the simulator's time quantum) is the causality floor.
        let period = SimDuration::from_secs_f64(1.0 / rate_hz).max(SimDuration::from_micros(1));
        let end = SimTime::ZERO + spec.duration;
        let mut engine: Engine<EventBus, QosEvent> = Engine::new(bus);
        engine.schedule_at(SimTime::ZERO, QosEvent::Publish);
        if degrade {
            engine.schedule_at(
                SimTime::from_secs_f64(spec.duration.as_secs_f64() / 2.0),
                QosEvent::Degrade,
            );
        }
        engine.run_until(end, |bus, ctx, event| match event {
            QosEvent::Publish => {
                bus.publish_from(subject, None, vec![0], ctx.now());
                ctx.schedule_in(period, QosEvent::Publish);
            }
            QosEvent::Degrade => {
                bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());
            }
        });

        let mut record = RunRecord::new();
        record.absorb_engine_clamps(&engine);
        let bus = engine.into_state();
        let stats = bus.channel_stats(subject).expect("channel was announced");
        record.set_flag("admitted", admission == Admission::Admitted);
        record.set_flag("admitted_after", bus.admission(subject) == Some(Admission::Admitted));
        record.set("published", stats.published as f64);
        record.set(
            "delivery_ratio",
            if stats.published > 0 { stats.delivered as f64 / stats.published as f64 } else { 0.0 },
        );
        record.set("mean_latency_ms", stats.mean_latency_ms);
        record.set("missed_deadlines", stats.missed_deadline as f64);
        record.set(
            "deadline_miss_ratio",
            if stats.delivered > 0 {
                stats.missed_deadline as f64 / stats.delivered as f64
            } else {
                0.0
            },
        );
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn middleware_qos_reports_channel_quality() {
        let qos = MiddlewareQosScenario;
        let record =
            qos.run(&ScenarioSpec::new("middleware-qos").with_seed(5).with_duration_secs(20));
        assert_eq!(record.get("admitted"), Some(1.0));
        assert_eq!(record.get("admitted_after"), Some(1.0), "no degradation, no re-assessment");
        assert!(record.get("delivery_ratio").unwrap() > 0.8);
        assert!(record.get("published").unwrap() > 900.0, "50 Hz × 20 s ≈ 1000 events");
        assert_eq!(record.clamped_schedules, 0, "the publish loop never schedules into the past");
    }

    /// Clamp audit regression: the publish loop must terminate and stay
    /// causality-clean even for rates whose period rounds below the 1 µs
    /// time quantum (the zero-delay self-loop found by the audit).
    #[test]
    fn middleware_qos_survives_extreme_rates_without_clamps() {
        let qos = MiddlewareQosScenario;
        for rate in [1.0, 997.0, 2.5e6, 1.0e9] {
            let record = qos.run(
                &ScenarioSpec::new("middleware-qos")
                    .with("rate_hz", rate)
                    .with_seed(8)
                    .with_duration(SimDuration::from_millis(10)),
            );
            assert_eq!(
                record.clamped_schedules, 0,
                "rate {rate} Hz: the publish loop must never schedule into the past"
            );
            assert!(record.get("published").unwrap() >= 1.0);
        }
    }

    /// The e08 admission matrix: a strict deadline over the wireless segment
    /// is rejected at announcement; the admitted V2V channel loses its
    /// admission when the monitored capability degrades mid-run.
    #[test]
    fn qos_contract_parameters_drive_admission() {
        let qos = MiddlewareQosScenario;
        let base = ScenarioSpec::new("middleware-qos").with_seed(4).with_duration_secs(10);
        let strict =
            qos.run(&base.clone().with("max_latency_ms", 10).with("min_delivery_ratio", 0.99));
        assert_eq!(strict.get("admitted"), Some(0.0), "hazard-grade QoS over wireless rejects");
        let local = qos.run(
            &base
                .clone()
                .with("network", "local")
                .with("max_latency_ms", 2)
                .with("min_delivery_ratio", 0.99),
        );
        assert_eq!(local.get("admitted"), Some(1.0), "the in-vehicle bus admits strict QoS");
        let degraded = qos.run(&base.with("degrade", true));
        assert_eq!(degraded.get("admitted"), Some(1.0));
        assert_eq!(
            degraded.get("admitted_after"),
            Some(0.0),
            "degradation must revoke the lead-state admission — the LoS-lowering trigger"
        );
    }
}

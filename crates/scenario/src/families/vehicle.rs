//! Vehicle-layer families: the ground use cases of paper §VI-A and the
//! aerial RPV use case of §VI-B.

use karyon_core::LevelOfService;
use karyon_sensors::SensorFault;
use karyon_sim::{Rng, SimDuration, SimTime};
use karyon_vehicles::{
    run_encounter, run_intersection, run_lane_changes, run_platoon, AerialScenario, AvionicsConfig,
    ControlMode, Coordination, FallbackMode, InjectedSensorFault, IntersectionConfig,
    LaneChangeConfig, PlatoonConfig, TrafficType, V2VModel,
};

use crate::grid::ParamGrid;
use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// Parses the shared `mode` parameter (`kernel`, `los0`, `los1`, `los2`).
fn control_mode(spec: &ScenarioSpec) -> ControlMode {
    match spec.str_or("mode", "kernel") {
        "kernel" => ControlMode::SafetyKernel,
        "los0" => ControlMode::FixedLos(LevelOfService(0)),
        "los1" => ControlMode::FixedLos(LevelOfService(1)),
        "los2" => ControlMode::FixedLos(LevelOfService(2)),
        other => panic!("unknown platoon mode {other:?} (expected kernel|los0|los1|los2)"),
    }
}

/// The ACC/CACC platoon of §VI-A1 under configurable V2V quality
/// (experiments e01 and e10).
pub struct PlatoonScenario;

impl Scenario for PlatoonScenario {
    fn name(&self) -> &str {
        "platoon"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("mode", ["kernel", "los0", "los1", "los2"])
            .axis("vehicles", [6, 8, 12])
            .axis("v2v_loss", [0.05, 0.3])
            .axis("lead_braking", [4.0, 5.0])
            .axis("outage", [false, true])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let duration = spec.duration;
        let mut v2v = V2VModel { loss: spec.f64_or("v2v_loss", 0.05), ..Default::default() };
        if spec.bool_or("outage", false) {
            // A single outage across the middle third of the run.
            let third = duration.as_secs_f64() / 3.0;
            v2v.outages =
                vec![(SimTime::from_secs_f64(third), SimTime::from_secs_f64(2.0 * third))];
        }
        let config = PlatoonConfig {
            vehicles: spec.u64_or("vehicles", 6).max(2) as usize,
            duration,
            mode: control_mode(spec),
            v2v,
            lead_braking: spec.f64_or("lead_braking", 4.0),
            seed: spec.seed,
            ..Default::default()
        };
        let result = run_platoon(&config);
        let mut record = RunRecord::new();
        record.set("collisions", result.collisions as f64);
        record.set_flag("collision", result.collisions > 0);
        record.set("hazard_steps", result.hazard_steps as f64);
        record.set_flag("hazard", result.hazard_steps > 0);
        record.set("min_time_gap_s", result.min_time_gap);
        record.set("mean_time_gap_s", result.mean_time_gap);
        record.set("mean_speed_mps", result.mean_speed);
        record.set("throughput_vph", result.throughput_veh_per_hour);
        record.set("los2_fraction", result.los_time_fraction[2]);
        record.set("los_switches", result.los_switches as f64);
        record
    }
}

/// The randomized fault-injection campaign body of bench `e15`: every run
/// draws a sensor-fault class, target follower, fault window and V2V outage
/// from the run seed, then executes the platoon under the chosen control
/// strategy.
pub struct PlatoonFaultScenario;

fn random_fault(rng: &mut Rng) -> SensorFault {
    match rng.range_u64(0, 4) {
        0 => SensorFault::Delay { delay: SimDuration::from_millis(rng.range_u64(400, 1_500)) },
        1 => SensorFault::SporadicOffset { probability: 0.3, magnitude: rng.range_f64(10.0, 40.0) },
        2 => SensorFault::PermanentOffset { offset: rng.range_f64(-25.0, 25.0) },
        3 => SensorFault::StochasticOffset { std_dev: rng.range_f64(3.0, 12.0) },
        _ => SensorFault::StuckAt { stuck_value: None },
    }
}

impl Scenario for PlatoonFaultScenario {
    fn name(&self) -> &str {
        "platoon-fault"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new().axis("mode", ["kernel", "los0", "los1", "los2"]).axis("vehicles", [6, 12])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let vehicles = spec.u64_or("vehicles", 6).max(2) as usize;
        let mut rng = Rng::seed_from(spec.seed);
        let fault_start = rng.range_u64(20, 60);
        let outage_start = rng.range_u64(30, 80);
        let config = PlatoonConfig {
            vehicles,
            duration: spec.duration,
            mode: control_mode(spec),
            lead_braking: rng.range_f64(3.5, 5.5),
            v2v: V2VModel {
                loss: rng.range_f64(0.02, 0.2),
                outages: vec![(
                    SimTime::from_secs(outage_start),
                    SimTime::from_secs(outage_start + rng.range_u64(10, 40)),
                )],
                ..Default::default()
            },
            sensor_fault: Some(InjectedSensorFault {
                follower: rng.range_usize(1, vehicles - 1),
                fault: random_fault(&mut rng),
                from: SimTime::from_secs(fault_start),
                until: SimTime::from_secs(fault_start + rng.range_u64(10, 50)),
            }),
            seed: rng.next_u64(),
            ..Default::default()
        };
        let result = run_platoon(&config);
        let mut record = RunRecord::new();
        record.set_flag("collision", result.collisions > 0);
        record.set_flag("hazard", result.hazard_steps > 0);
        record.set("hazard_steps", result.hazard_steps as f64);
        record.set("min_time_gap_s", result.min_time_gap);
        record.set("throughput_vph", result.throughput_veh_per_hour);
        record
    }
}

/// The intersection-crossing use case of §VI-A2 (experiment e11) with an
/// optional infrastructure-light failure across the middle third of the run.
pub struct IntersectionScenario;

impl Scenario for IntersectionScenario {
    fn name(&self) -> &str {
        "intersection"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("fallback", ["vtl", "uncoordinated"])
            .axis("arrivals_per_minute", [12.0, 6.0, 20.0])
            .axis("light_fail", [true, false])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let duration = spec.duration;
        let fallback = match spec.str_or("fallback", "vtl") {
            "vtl" => FallbackMode::VirtualTrafficLight,
            "uncoordinated" => FallbackMode::Uncoordinated,
            other => panic!("unknown intersection fallback {other:?} (expected vtl|uncoordinated)"),
        };
        let light_failure = if spec.bool_or("light_fail", true) {
            let third = duration.as_secs_f64() / 3.0;
            Some((SimTime::from_secs_f64(third), SimTime::from_secs_f64(2.0 * third)))
        } else {
            None
        };
        let config = IntersectionConfig {
            arrivals_per_minute: spec.f64_or("arrivals_per_minute", 12.0),
            duration,
            light_failure,
            fallback,
            seed: spec.seed,
        };
        let result = run_intersection(&config);
        let mut record = RunRecord::new();
        record.set("crossed", result.crossed as f64);
        record.set("conflicts", result.conflicts as f64);
        record.set_flag("conflict", result.conflicts > 0);
        record.set("mean_wait_s", result.mean_wait);
        record.set("max_wait_s", result.max_wait);
        record.set("throughput_vpm", result.throughput_per_minute);
        record.set("uncontrolled_fraction", result.uncontrolled_fraction);
        record
    }
}

/// The coordinated lane-change use case of §VI-A3 (experiment e12).
pub struct LaneChangeScenario;

impl Scenario for LaneChangeScenario {
    fn name(&self) -> &str {
        "lane-change"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("coordination", ["agreement", "none"])
            .axis("vehicles", [16, 12, 20])
            .axis("desire_rate", [0.05, 0.08])
            .axis("message_loss", [0.02, 0.1])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let coordination = match spec.str_or("coordination", "agreement") {
            "agreement" => Coordination::Agreement,
            "none" => Coordination::None,
            other => panic!("unknown lane-change coordination {other:?} (expected agreement|none)"),
        };
        let config = LaneChangeConfig {
            vehicles: spec.u64_or("vehicles", 16).max(2) as usize,
            desire_rate: spec.f64_or("desire_rate", 0.05),
            message_loss: spec.f64_or("message_loss", 0.02),
            duration: spec.duration,
            coordination,
            seed: spec.seed,
            ..Default::default()
        };
        let result = run_lane_changes(&config);
        let mut record = RunRecord::new();
        record.set("desired", result.desired as f64);
        record.set("started", result.started as f64);
        record.set("completed", result.completed as f64);
        record.set("aborted", result.aborted as f64);
        record.set("invariant_violations", result.invariant_violations as f64);
        record.set_flag("violation", result.invariant_violations > 0);
        record.set("mean_start_delay_s", result.mean_start_delay);
        record.set(
            "completion_rate",
            if result.desired > 0 { result.completed as f64 / result.desired as f64 } else { 0.0 },
        );
        record
    }
}

/// The aerial RPV separation scenarios of §VI-B (experiment e13).
pub struct AvionicsScenario;

impl Scenario for AvionicsScenario {
    fn name(&self) -> &str {
        "avionics-rpv"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("encounter", ["same-direction", "crossing", "level-change"])
            .axis("traffic", ["collaborative", "non-collaborative"])
            .axis("resolution", [true, false])
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let scenario = match spec.str_or("encounter", "same-direction") {
            "same-direction" => AerialScenario::SameDirection,
            "crossing" => AerialScenario::LeveledCrossing,
            "level-change" => AerialScenario::FlightLevelChange,
            other => panic!(
                "unknown avionics encounter {other:?} (expected same-direction|crossing|level-change)"
            ),
        };
        let traffic = match spec.str_or("traffic", "collaborative") {
            "collaborative" => TrafficType::Collaborative,
            "non-collaborative" => TrafficType::NonCollaborative,
            other => panic!(
                "unknown avionics traffic {other:?} (expected collaborative|non-collaborative)"
            ),
        };
        let config = AvionicsConfig {
            scenario,
            traffic,
            resolution_enabled: spec.bool_or("resolution", true),
            duration: spec.duration,
            seed: spec.seed,
        };
        let result = run_encounter(&config);
        let mut record = RunRecord::new();
        record.set("min_horizontal_sep_m", result.min_horizontal_separation);
        record.set("min_vertical_sep_m", result.min_vertical_separation);
        record.set("violation_seconds", result.violation_seconds);
        record.set_flag("violated", result.violation_seconds > 0.0);
        record.set_flag("detected", result.detected_at.is_some());
        if let Some(at) = result.detected_at {
            record.set("detected_at_s", at);
        }
        record.set_flag("resolution_applied", result.resolution_applied);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platoon_modes_map_to_control_strategies() {
        let platoon = PlatoonScenario;
        let coop = platoon.run(
            &ScenarioSpec::new("platoon").with("mode", "los2").with_seed(3).with_duration_secs(60),
        );
        let cons = platoon.run(
            &ScenarioSpec::new("platoon").with("mode", "los0").with_seed(3).with_duration_secs(60),
        );
        assert_eq!(coop.get("los2_fraction"), Some(1.0));
        assert_eq!(cons.get("los2_fraction"), Some(0.0));
        assert!(
            cons.get("mean_time_gap_s") > coop.get("mean_time_gap_s"),
            "conservative mode keeps larger margins"
        );
    }

    #[test]
    #[should_panic(expected = "unknown platoon mode")]
    fn invalid_mode_panics_with_guidance() {
        let _ = PlatoonScenario.run(&ScenarioSpec::new("platoon").with("mode", "warp"));
    }
}

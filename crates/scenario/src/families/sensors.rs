//! Sensor-layer families: data validity and the abstract reliable sensor of
//! paper §IV (experiments e02 and e03).

use karyon_sensors::faults::FaultSchedule;
use karyon_sensors::reliable::ReliableSensorConfig;
use karyon_sensors::{monitored_range_sensor, ReliableSensor, SensorFault};
use karyon_sim::{SimDuration, SimTime};

use crate::grid::ParamGrid;
use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// Parses the shared `fault` parameter into one of the five KARYON sensor
/// fault classes (or none); the class magnitudes are parameters too.  The
/// offset/std-dev fallbacks differ per family (the e02 and e03 seed
/// harnesses used different magnitudes), so each caller passes the defaults
/// its `param_domain` declares — the listing and the run must agree.
fn parse_fault(
    spec: &ScenarioSpec,
    default_offset: f64,
    default_std_dev: f64,
) -> Option<SensorFault> {
    match spec.str_or("fault", "none") {
        "none" => None,
        "delay" => Some(SensorFault::Delay {
            delay: SimDuration::from_millis(spec.u64_or("delay_ms", 1_000)),
        }),
        "sporadic" => Some(SensorFault::SporadicOffset {
            probability: spec.f64_or("probability", 0.2).clamp(0.0, 1.0),
            magnitude: spec.f64_or("magnitude", 30.0),
        }),
        "permanent" => {
            Some(SensorFault::PermanentOffset { offset: spec.f64_or("offset", default_offset) })
        }
        "stochastic" => Some(SensorFault::StochasticOffset {
            std_dev: spec.f64_or("std_dev", default_std_dev).abs(),
        }),
        "stuck" => Some(SensorFault::StuckAt { stuck_value: None }),
        other => panic!(
            "unknown sensor fault {other:?} (expected none|delay|sporadic|permanent|stochastic|stuck)"
        ),
    }
}

/// Validity estimation under the five sensor-fault classes (§IV-A, the body
/// of bench `e02`): one monitored range sensor sampled at 10 Hz with a fault
/// active from `fault_from_s`; the detector thresholds (freshness timeout,
/// rate-of-change limit) and the sensor's noise floor are parameters.
pub struct SensorValidityScenario;

impl Scenario for SensorValidityScenario {
    fn name(&self) -> &str {
        "sensor-validity"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("fault", ["none", "delay", "sporadic", "permanent", "stochastic", "stuck"])
            .axis("delay_ms", [1_000])
            .axis("probability", [0.2])
            .axis("magnitude", [30.0])
            .axis("offset", [15.0])
            .axis("std_dev", [8.0])
            .axis("noise_std", [0.3])
            .axis("timeout_ms", [400])
            .axis("max_rate", [40.0])
            .axis("fault_from_s", [20])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "mean_validity" | "invalid_fraction" | "degraded_fraction" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let mut sensor = monitored_range_sensor(
            "front-range",
            spec.f64_or("noise_std", 0.3).abs(),
            200.0,
            Some(SimDuration::from_millis(spec.u64_or("timeout_ms", 400).max(1))),
            spec.f64_or("max_rate", 40.0).abs(),
            spec.seed,
        );
        let fault_from = SimTime::from_secs(spec.u64_or("fault_from_s", 20));
        if let Some(fault) = parse_fault(spec, 15.0, 8.0) {
            sensor.injector_mut().inject(fault, FaultSchedule::from(fault_from));
        }
        let samples = (spec.duration.as_millis() / 100).max(1);
        let mut sum_validity = 0.0;
        let mut invalid = 0u64;
        let mut degraded = 0u64;
        let mut measured = 0u64;
        for i in 0..samples {
            let now = SimTime::from_millis(i * 100);
            let truth = 60.0 + 10.0 * (i as f64 * 0.01).sin();
            let reading = sensor.acquire(truth, now);
            if now >= fault_from {
                measured += 1;
                sum_validity += reading.validity.fraction();
                if reading.is_invalid() {
                    invalid += 1;
                }
                if reading.validity.fraction() < 0.5 {
                    degraded += 1;
                }
            }
        }
        let mut record = RunRecord::new();
        record.set("mean_validity", sum_validity / measured.max(1) as f64);
        record.set("invalid_fraction", invalid as f64 / measured.max(1) as f64);
        record.set("degraded_fraction", degraded as f64 / measured.max(1) as f64);
        record
    }
}

/// The abstract reliable sensor vs. a single abstract sensor (§IV-B, the
/// body of bench `e03`): a replicated range sensor fused with Marzullo
/// intersection + analytical redundancy, with one replica suffering the
/// configured fault class from `fault_from_s`.
pub struct ReliableSensorScenario;

impl ReliableSensorScenario {
    fn replica(spec: &ScenarioSpec, seed: u64) -> karyon_sensors::AbstractSensor {
        monitored_range_sensor(
            "range-replica",
            spec.f64_or("noise_std", 0.4).abs(),
            300.0,
            None,
            spec.f64_or("max_rate", 40.0).abs(),
            seed,
        )
    }
}

impl Scenario for ReliableSensorScenario {
    fn name(&self) -> &str {
        "reliable-sensor"
    }

    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
            .axis("config", ["reliable", "single"])
            .axis("fault", ["none", "permanent", "stochastic", "stuck"])
            .axis("offset", [25.0])
            .axis("std_dev", [10.0])
            .axis("replicas", [3])
            .axis("noise_std", [0.4])
            .axis("max_rate", [40.0])
            .axis("fault_from_s", [10])
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "availability" => Some((0.0, 1.0)),
            "mean_abs_error_m" | "max_abs_error_m" => Some((0.0, 100.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let fault_from = SimTime::from_secs(spec.u64_or("fault_from_s", 10));
        let fault = parse_fault(spec, 25.0, 10.0);
        let samples = (spec.duration.as_millis() / 100).max(1);
        let truth = |i: u64| 80.0 + 15.0 * (i as f64 * 0.02).sin();

        let mut err_sum = 0.0;
        let mut err_max: f64 = 0.0;
        let mut available = 0u64;
        let mut observe = |reading: karyon_sensors::SensorReading, i: u64| {
            if !reading.is_invalid() {
                available += 1;
                let e = (reading.measurement.value - truth(i)).abs();
                err_sum += e;
                err_max = err_max.max(e);
            }
        };
        match spec.str_or("config", "reliable") {
            "single" => {
                let mut sensor = Self::replica(spec, spec.seed);
                if let Some(fault) = fault {
                    sensor.injector_mut().inject(fault, FaultSchedule::from(fault_from));
                }
                for i in 0..samples {
                    let reading = sensor.acquire(truth(i), SimTime::from_millis(i * 100));
                    observe(reading, i);
                }
            }
            "reliable" => {
                let replicas = spec.u64_or("replicas", 3).clamp(2, 16);
                let replicas: Vec<_> =
                    (0..replicas).map(|r| Self::replica(spec, spec.seed + 100 * r)).collect();
                let mut sensor = ReliableSensor::new(replicas, ReliableSensorConfig::default());
                if let Some(fault) = fault {
                    sensor
                        .replica_mut(0)
                        .injector_mut()
                        .inject(fault, FaultSchedule::from(fault_from));
                }
                for i in 0..samples {
                    let reading = sensor.acquire(truth(i), SimTime::from_millis(i * 100));
                    observe(reading, i);
                }
            }
            other => panic!("unknown sensor config {other:?} (expected reliable|single)"),
        }

        let mut record = RunRecord::new();
        record.set("mean_abs_error_m", err_sum / available.max(1) as f64);
        record.set("max_abs_error_m", err_max);
        record.set("availability", available as f64 / samples as f64);
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_faults_invalidate_graded_faults_degrade() {
        let family = SensorValidityScenario;
        let base = ScenarioSpec::new("sensor-validity").with_seed(7).with_duration_secs(200);
        let healthy = family.run(&base.clone());
        assert!(healthy.get("mean_validity").unwrap() > 0.95, "{healthy:?}");
        let stuck = family.run(&base.clone().with("fault", "stuck"));
        assert!(stuck.get("invalid_fraction").unwrap() > 0.9, "{stuck:?}");
        let offset = family.run(&base.with("fault", "permanent"));
        assert!(
            offset.get("mean_validity").unwrap() < healthy.get("mean_validity").unwrap(),
            "graded faults must lower the validity: {offset:?}"
        );
    }

    #[test]
    fn reliable_sensor_masks_a_single_faulty_replica() {
        let family = ReliableSensorScenario;
        let base = ScenarioSpec::new("reliable-sensor")
            .with("fault", "permanent")
            .with_seed(11)
            .with_duration_secs(150);
        let single = family.run(&base.clone().with("config", "single"));
        let reliable = family.run(&base.clone());
        assert!(
            reliable.get("mean_abs_error_m").unwrap() < single.get("mean_abs_error_m").unwrap(),
            "redundancy must mask the offset: {reliable:?} vs {single:?}"
        );
        assert!(reliable.get("availability").unwrap() > 0.9, "{reliable:?}");
    }

    #[test]
    #[should_panic(expected = "unknown sensor fault")]
    fn invalid_fault_class_panics_with_guidance() {
        let _ = SensorValidityScenario
            .run(&ScenarioSpec::new("sensor-validity").with("fault", "gremlin"));
    }
}

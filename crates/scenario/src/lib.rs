//! # karyon-scenario — declarative scenarios and parallel campaign orchestration
//!
//! The KARYON paper evaluates its safety architecture with "computer
//! simulations with fault injection support" (§VI): families of scenarios run
//! many times under varied parameters and seeds, and the aggregate hazard /
//! performance figures are what the safety case is argued from.  The
//! experiment harnesses of `crates/bench` each hand-wire that loop; this
//! crate turns it into a first-class subsystem:
//!
//! * [`ScenarioSpec`] — a declarative description of one run (scenario family
//!   name, parameter map, seed, duration), built with a fluent builder;
//! * [`Scenario`] — the trait a scenario family implements: take a spec,
//!   return a [`RunRecord`] of named metrics;
//! * [`ScenarioRegistry`] — named scenario families; [`builtin_registry`]
//!   ships one family per KARYON evaluation experiment across every
//!   workspace layer ([`families`]): the vehicle use cases (platoon,
//!   randomized platoon fault injection, intersection VTL, lane change,
//!   avionics RPV), the middleware QoS stack, the self-stabilizing network
//!   stack (TDMA, inaccessibility, pulse sync, end-to-end FIFO), the sensor
//!   validity pipeline and the safety-kernel/cooperation layer — each with a
//!   machine-readable [`Scenario::param_domain`]
//!   ([`ScenarioRegistry::describe_json`] powers
//!   `karyon-campaign list-families --output json`);
//! * [`ParamGrid`] — a cartesian parameter grid expanded into parameter
//!   points;
//! * [`Campaign`] — expands grids and Monte-Carlo seed sweeps into a
//!   canonical run list and executes it across `std::thread` workers in
//!   **canonical chunks** ([`aggregate`]).  Every run's RNG seed is derived
//!   from the campaign seed and the run's canonical coordinates
//!   ([`derive_run_seed`]); each chunk reduces into per-point streaming
//!   aggregates and chunk partials merge in canonical order, so a campaign's
//!   [`CampaignReport`] is **bit-identical for any worker count** while peak
//!   memory stays O(points × chunks-in-flight) — a 10⁶-run campaign
//!   aggregates in the same footprint as a 10³-run one;
//! * [`RunSink`] / [`JsonlRunWriter`] — optional per-run artifact streaming
//!   in canonical run order, and [`Campaign::reduce_records`] to re-aggregate
//!   a captured stream bit-identically;
//! * [`CampaignTelemetry`] ([`telemetry`]) — optional flight recorder
//!   attachment: a deterministic virtual-time trace sink (bit-identical for
//!   any worker count, like the report) plus a wall-clock
//!   [`MetricsRegistry`](karyon_telemetry::MetricsRegistry) of runner
//!   throughput/latency metrics;
//! * [`Checkpointer`] / [`CheckpointManifest`] ([`checkpoint`]) — crash-safe
//!   campaign checkpointing: atomically written manifests at a canonical-chunk
//!   cadence, [`Campaign::resume`] to continue a killed or
//!   [time-sliced](Checkpointer::max_chunks_per_session) campaign with a
//!   report **bit-identical** to an uninterrupted run's, and
//!   [`truncate_jsonl`] to recover the artifact stream after a crash (the
//!   `karyon-campaign` CLI drives the whole workflow from JSON spec files,
//!   parsed via [`Campaign::from_json_str`]);
//! * [`ShardPlan`] / [`ShardManifest`] ([`shard`]) — the shard/merge
//!   protocol: split the canonical chunk range into contiguous windows run
//!   independently (each with its own worker count, via
//!   [`Campaign::run_shard`]), persist each window's per-chunk partials in an
//!   integrity-framed manifest, and [`merge_shards`] the set back into a
//!   report **byte-identical** to a single-machine run's;
//! * [`FaultPlan`] / [`FaultInjector`] ([`fault`]) — deterministic fault
//!   injection at the runner's canonical points (worker death at a chunk
//!   boundary, mid-chunk aborts, torn manifest writes, sink I/O errors),
//!   JSON- or seed-specified, with [`recovery`]'s bounded
//!   [`RetryPolicy`] turning transient I/O failures into graceful
//!   degradation;
//! * [`CampaignReport`] — per-parameter-point aggregates (mean/std-dev via
//!   `OnlineStats`; p50/p95/p99 exact for small sweeps, streamed through
//!   pre-agreed-range `BucketHistogram`s beyond — see
//!   [`Scenario::metric_range`]), serialisable to JSON and aligned-text
//!   tables.
//!
//! ## Quick tour
//!
//! ```
//! use karyon_scenario::{builtin_registry, Campaign, CampaignEntry, ParamGrid};
//!
//! let registry = builtin_registry();
//! let campaign = Campaign::new("doc-demo", 42).with_threads(2).entry(
//!     CampaignEntry::new("lane-change")
//!         .grid(ParamGrid::new().axis("coordination", ["agreement", "none"]))
//!         .replications(2)
//!         .duration_secs(30),
//! );
//! let report = campaign.run(&registry).expect("known scenario family");
//! assert_eq!(report.total_runs, 4);
//! assert_eq!(report.points.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod campaign;
pub mod checkpoint;
pub mod families;
pub mod fault;
pub mod grid;
pub mod json;
pub mod recovery;
pub mod registry;
pub mod report;
pub mod scenario;
pub mod shard;
pub mod sink;
pub mod spec;
pub mod telemetry;

pub use aggregate::DEFAULT_CHUNK_SIZE;
pub use campaign::{derive_run_seed, Campaign, CampaignEntry, CampaignOutcome, RunnerStats};
pub use checkpoint::{
    integrity_frame, truncate_jsonl, truncate_trace_jsonl, CheckpointManifest, Checkpointer,
};
pub use fault::{Fault, FaultInjector, FaultPlan};
pub use grid::ParamGrid;
pub use json::JsonValue;
pub use recovery::{Backoff, RecordedBackoff, Recovered, RetryPolicy, WallClockBackoff};
pub use registry::{builtin_registry, FamilyInfo, ParamInfo, ScenarioRegistry};
pub use report::{CampaignReport, MetricSummary, PointReport};
pub use scenario::{RunRecord, Scenario};
pub use shard::{
    merge_shards, read_run_segment, read_trace_segment, validate_shard_set, ShardManifest,
    ShardPlan, ShardSlice,
};
pub use sink::{read_jsonl_records, JsonlRunWriter, RunMeta, RunSink, SyncOnFlushFile};
pub use spec::{ParamValue, ScenarioSpec};
pub use telemetry::CampaignTelemetry;

//! A minimal JSON writer and parser.
//!
//! The workspace is built offline (no `serde`), so both directions are
//! hand-rolled and deliberately small:
//!
//! * **writing** — [`ObjectWriter`]/[`array()`] emit deterministic JSON (object
//!   keys come from `BTreeMap` iteration or fixed field order in the
//!   callers); this is what reports, JSONL run streams and checkpoint
//!   manifests are rendered with;
//! * **parsing** — [`JsonValue::parse`] is a strict recursive-descent parser
//!   for the inputs the crate itself consumes: campaign spec files
//!   ([`Campaign::from_json_str`](crate::Campaign::from_json_str)), JSONL run
//!   streams ([`read_jsonl_records`](crate::sink::read_jsonl_records)) and
//!   checkpoint manifests.  Object member order is **preserved** (not
//!   sorted), which is what keeps a spec file's grid-axis order — and with it
//!   the canonical run order — exactly as written.
//!
//! Numbers keep their raw source text ([`JsonValue::Number`]) so integer
//! fields round-trip exactly even above 2⁵³ — checkpoint manifests persist
//! `f64` aggregates as their IEEE-754 bit patterns in `u64` fields, which a
//! lossy parse through `f64` would corrupt.

use std::fmt::Write as _;

/// Escapes a string for use inside a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental writer for one JSON object: `{"k": v, ...}`.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    body: String,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_key(key);
        let _ = write!(self.body, "\"{}\"", escape(value));
        self
    }

    /// Adds a numeric field (`null` for non-finite values).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.push_key(key);
        self.body.push_str(&number(value));
        self
    }

    /// Adds an integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.push_key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push_key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.push_key(key);
        self.body.push_str(json);
        self
    }

    /// Finishes the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders an array from already-rendered JSON elements.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(","))
}

/// A parsed JSON value.
///
/// Two deliberate deviations from the usual tree shape:
///
/// * objects are an **ordered** list of members, so consumers that care about
///   source order (grid axes in a campaign spec file) see it;
/// * numbers keep their **raw source text**, so `u64` fields (seeds, f64 bit
///   patterns in checkpoint manifests) can be re-parsed exactly instead of
///   being forced through a lossy `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw (validated) source text.
    Number(String),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, members in source order (duplicate keys are rejected).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses one JSON document (trailing garbage is an error).
    ///
    /// Strict by intent: no comments, no trailing commas, no bare NaN or
    /// Infinity — a campaign spec or checkpoint that needs relaxation is a
    /// bug, not an input class.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after the JSON document"));
        }
        Ok(value)
    }

    /// Looks up an object member by key (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number (`null` maps to NaN so JSONL
    /// metric streams — where the writer renders non-finite values as `null`
    /// — survive a round-trip as non-finite).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exact non-negative integer (parsed
    /// from the raw text, so the full `u64` range round-trips).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exact integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as ordered object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// A short name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a boolean",
            JsonValue::Number(_) => "a number",
            JsonValue::String(_) => "a string",
            JsonValue::Array(_) => "an array",
            JsonValue::Object(_) => "an object",
        }
    }
}

/// Maximum container nesting the parser accepts.  Recursive descent uses the
/// call stack, so without a cap a corrupt or adversarial document of a few
/// hundred KB of `[` would abort the process with a stack overflow instead
/// of returning the parse error the checkpoint/spec loaders promise.  No
/// legitimate spec, manifest or JSONL line comes anywhere near 128 levels.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> String {
        // Report a 1-based line:column so errors in hand-written spec files
        // are findable.
        let consumed = &self.bytes[..self.pos.min(self.bytes.len())];
        let line = consumed.iter().filter(|b| **b == b'\n').count() + 1;
        let column = consumed.iter().rev().take_while(|b| **b != b'\n').count() + 1;
        format!("JSON error at line {line}, column {column}: {message}")
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected character {:?}", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        self.descend()?;
        let mut members: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.error(&format!("duplicate object key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    /// Bumps the container nesting depth, rejecting documents past
    /// [`MAX_DEPTH`] so corrupt input fails with an error, not a stack
    /// overflow.
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        Ok(())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one code point.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.error("unpaired UTF-16 surrogate"));
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid UTF-16 surrogate pair"));
                                }
                                let cp = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(unit)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(b) if b < 0x80 => {
                    // Plain ASCII, the dominant case: no UTF-8 decoding.
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // One multi-byte UTF-8 scalar: decode at most its 4
                    // bytes (the input is a &str, so the sequence starting
                    // here is valid; the window may merely cut a *following*
                    // character short, which valid_up_to tolerates).
                    // Validating the whole remaining document here would
                    // make string parsing quadratic.
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) => std::str::from_utf8(&window[..e.valid_up_to()])
                            .expect("valid_up_to is a char boundary"),
                    };
                    let c = valid.chars().next().expect("input was a &str");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`) and advances past them.
    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| self.error("invalid unicode escape"))?;
        let unit =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while let Some(b'0'..=b'9') = self.peek() {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number: expected digits after '.'"));
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("invalid number: expected exponent digits"));
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        Ok(JsonValue::Number(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-3.0), "-3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_and_array_rendering() {
        let mut o = ObjectWriter::new();
        o.string("name", "x").u64("runs", 3).f64("mean", 0.5).bool("ok", true);
        o.raw("inner", &array(&["1".to_string(), "2".to_string()]));
        assert_eq!(o.finish(), r#"{"name":"x","runs":3,"mean":0.5,"ok":true,"inner":[1,2]}"#);
    }

    #[test]
    fn parser_handles_the_full_value_grammar() {
        let doc = r#" {"a": [1, -2.5, 1e3, true, false, null], "b": {"nested": "v"}, "c": ""} "#;
        let v = JsonValue::parse(doc).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_i64(), Some(1));
        assert_eq!(a[1].as_f64(), Some(-2.5));
        assert_eq!(a[2].as_f64(), Some(1000.0));
        assert_eq!(a[3].as_bool(), Some(true));
        assert!(a[5].is_null());
        assert!(a[5].as_f64().unwrap().is_nan(), "null reads back as NaN for metric streams");
        assert_eq!(v.get("b").unwrap().get("nested").unwrap().as_str(), Some("v"));
        assert_eq!(v.get("c").unwrap().as_str(), Some(""));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_preserves_object_member_order() {
        let v = JsonValue::parse(r#"{"zeta": 1, "alpha": 2, "mid": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["zeta", "alpha", "mid"], "source order, not sorted order");
    }

    #[test]
    fn parser_keeps_raw_number_text_for_exact_u64() {
        // 2^63 + 27 is not representable in f64; the raw-text path keeps it.
        let v = JsonValue::parse("9223372036854775835").unwrap();
        assert_eq!(v.as_u64(), Some(9_223_372_036_854_775_835));
        assert_eq!(v.as_i64(), None, "out of i64 range");
    }

    #[test]
    fn parser_string_escapes_round_trip_the_writer() {
        let original = "tab\t, quote\", backslash\\, newline\n, control\u{1}, ünïcode 🚗";
        let doc = format!("{{\"k\":\"{}\"}}", escape(original));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
        // Surrogate pairs parse back to the astral code point.
        let v = JsonValue::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for (doc, needle) in [
            ("", "unexpected end"),
            ("{", "expected"),
            (r#"{"a":1,}"#, "expected"),
            (r#"{"a":1} extra"#, "trailing"),
            (r#"{"a":1,"a":2}"#, "duplicate"),
            ("[1 2]", "expected"),
            ("01", "trailing"),
            ("1.", "digits after"),
            ("1e", "exponent"),
            ("nul", "null"),
            (r#""\ud800""#, "surrogate"),
            ("\"a\nb\"", "control character"),
        ] {
            let err = JsonValue::parse(doc).unwrap_err();
            assert!(err.contains(needle), "{doc:?}: {err}");
            assert!(err.contains("line"), "errors carry a position: {err}");
        }
    }

    #[test]
    fn parser_reports_line_and_column() {
        let err = JsonValue::parse("{\n  \"a\": nope\n}").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }

    #[test]
    fn parser_rejects_pathological_nesting_without_overflowing() {
        // Within the cap: fine.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&ok).is_ok());
        // Past the cap: a parse error, not a stack-overflow abort.
        let deep = "[".repeat(200_000);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let mixed = "{\"a\":".repeat(200_000);
        assert!(JsonValue::parse(&mixed).unwrap_err().contains("nesting"));
    }

    #[test]
    fn long_strings_parse_in_linear_time() {
        // 1 MB of mixed ASCII + multi-byte content; quadratic rescanning
        // would make this take minutes rather than milliseconds.
        let body: String = "abcdefé🚗".repeat(100_000);
        let doc = format!("{{\"k\":\"{body}\"}}");
        let start = std::time::Instant::now();
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(body.as_str()));
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "string parsing must be linear, took {:?}",
            start.elapsed()
        );
    }
}

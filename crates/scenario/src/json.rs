//! A minimal JSON writer.
//!
//! The workspace is built offline (no `serde`), and the campaign report only
//! needs to *emit* JSON, never parse it, so a small hand-rolled writer is all
//! that is required.  Output is deterministic: object keys come from
//! `BTreeMap` iteration or fixed field order in the callers.

use std::fmt::Write as _;

/// Escapes a string for use inside a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental writer for one JSON object: `{"k": v, ...}`.
#[derive(Debug, Default)]
pub struct ObjectWriter {
    body: String,
}

impl ObjectWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectWriter::default()
    }

    fn push_key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.push_key(key);
        let _ = write!(self.body, "\"{}\"", escape(value));
        self
    }

    /// Adds a numeric field (`null` for non-finite values).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.push_key(key);
        self.body.push_str(&number(value));
        self
    }

    /// Adds an integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.push_key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a signed integer field.
    pub fn i64(&mut self, key: &str, value: i64) -> &mut Self {
        self.push_key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.push_key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.push_key(key);
        self.body.push_str(json);
        self
    }

    /// Finishes the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Renders an array from already-rendered JSON elements.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(-3.0), "-3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn object_and_array_rendering() {
        let mut o = ObjectWriter::new();
        o.string("name", "x").u64("runs", 3).f64("mean", 0.5).bool("ok", true);
        o.raw("inner", &array(&["1".to_string(), "2".to_string()]));
        assert_eq!(o.finish(), r#"{"name":"x","runs":3,"mean":0.5,"ok":true,"inner":[1,2]}"#);
    }
}

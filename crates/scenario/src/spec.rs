//! Declarative description of one scenario run.

use std::collections::BTreeMap;
use std::fmt;

use karyon_sim::SimDuration;

/// A typed scenario parameter value.
///
/// Parameters travel through grids, specs and reports, so they are a small
/// closed set of types rather than arbitrary trait objects.  `BTreeMap` keys
/// keep every enumeration deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// An integer parameter (counts, indices, windows in seconds).
    Int(i64),
    /// A floating-point parameter (rates, probabilities, magnitudes).
    Float(f64),
    /// A boolean switch.
    Bool(bool),
    /// A named variant (e.g. a control mode or a fallback strategy).
    Text(String),
}

impl ParamValue {
    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ParamValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `bool` if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ParamValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str` if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ParamValue::Text(v) => Some(v),
            _ => None,
        }
    }

    /// The type name used in machine-readable family listings
    /// (`int`, `float`, `bool`, `text`).
    pub fn type_name(&self) -> &'static str {
        match self {
            ParamValue::Int(_) => "int",
            ParamValue::Float(_) => "float",
            ParamValue::Bool(_) => "bool",
            ParamValue::Text(_) => "text",
        }
    }

    /// Renders the value as a JSON scalar ([`ParamValue::from_json`] parses
    /// it back to an equal value — whole floats keep a decimal point so they
    /// stay floats through the round trip).
    pub fn to_json(&self) -> String {
        match self {
            ParamValue::Int(i) => i.to_string(),
            ParamValue::Float(f) if f.is_finite() && f.fract() == 0.0 => format!("{f:.1}"),
            ParamValue::Float(f) => crate::json::number(*f),
            ParamValue::Bool(b) => b.to_string(),
            ParamValue::Text(s) => format!("\"{}\"", crate::json::escape(s)),
        }
    }
}

impl ParamValue {
    /// Converts a parsed JSON value into a parameter value.
    ///
    /// JSON numbers without a fraction or exponent become [`ParamValue::Int`]
    /// (the raw source text decides: `4` is an integer, `4.0` a float), so a
    /// spec file distinguishes the two exactly like the builder API does.
    pub fn from_json(value: &crate::json::JsonValue) -> Result<ParamValue, String> {
        use crate::json::JsonValue;
        match value {
            JsonValue::Bool(b) => Ok(ParamValue::Bool(*b)),
            JsonValue::String(s) => Ok(ParamValue::Text(s.clone())),
            JsonValue::Number(raw) => {
                if let Ok(i) = raw.parse::<i64>() {
                    Ok(ParamValue::Int(i))
                } else if let Ok(f) = raw.parse::<f64>() {
                    Ok(ParamValue::Float(f))
                } else {
                    Err(format!("number {raw:?} fits neither i64 nor f64"))
                }
            }
            other => Err(format!(
                "a parameter value must be a number, string or boolean, not {}",
                other.type_name()
            )),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Text(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<i32> for ParamValue {
    fn from(v: i32) -> Self {
        ParamValue::Int(v as i64)
    }
}

impl From<u64> for ParamValue {
    /// # Panics
    /// Panics above `i64::MAX` — wrapping to a negative parameter would make
    /// the run silently diverge from its report label.
    fn from(v: u64) -> Self {
        ParamValue::Int(i64::try_from(v).expect("parameter value exceeds i64::MAX"))
    }
}

impl From<usize> for ParamValue {
    /// # Panics
    /// Panics above `i64::MAX` — wrapping to a negative parameter would make
    /// the run silently diverge from its report label.
    fn from(v: usize) -> Self {
        ParamValue::Int(i64::try_from(v).expect("parameter value exceeds i64::MAX"))
    }
}

impl From<f64> for ParamValue {
    fn from(v: f64) -> Self {
        ParamValue::Float(v)
    }
}

impl From<bool> for ParamValue {
    fn from(v: bool) -> Self {
        ParamValue::Bool(v)
    }
}

impl From<&str> for ParamValue {
    fn from(v: &str) -> Self {
        ParamValue::Text(v.to_string())
    }
}

impl From<String> for ParamValue {
    fn from(v: String) -> Self {
        ParamValue::Text(v)
    }
}

/// The declarative description of one scenario run: family name, parameter
/// map, RNG seed and simulated duration.
///
/// Built fluently:
///
/// ```
/// use karyon_scenario::ScenarioSpec;
///
/// let spec = ScenarioSpec::new("platoon")
///     .with("vehicles", 6)
///     .with("mode", "kernel")
///     .with_seed(7)
///     .with_duration_secs(120);
/// assert_eq!(spec.u64_or("vehicles", 0), 6);
/// assert_eq!(spec.str_or("mode", "-"), "kernel");
/// assert_eq!(spec.f64_or("not-set", 1.5), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The scenario family this spec is for.
    pub name: String,
    /// The per-run RNG seed (derived from the campaign seed by the runner).
    pub seed: u64,
    /// The simulated duration of the run.
    pub duration: SimDuration,
    params: BTreeMap<String, ParamValue>,
}

impl ScenarioSpec {
    /// Creates a spec for the named scenario family with no parameters,
    /// seed 1 and a 60 s duration.
    pub fn new(name: &str) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            seed: 1,
            duration: SimDuration::from_secs(60),
            params: BTreeMap::new(),
        }
    }

    /// Sets one parameter.
    pub fn with(mut self, key: &str, value: impl Into<ParamValue>) -> Self {
        self.params.insert(key.to_string(), value.into());
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the simulated duration.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the simulated duration in whole seconds.
    pub fn with_duration_secs(self, secs: u64) -> Self {
        self.with_duration(SimDuration::from_secs(secs))
    }

    /// Replaces the whole parameter map (used by the campaign runner when
    /// instantiating a grid point).
    pub fn with_params(mut self, params: BTreeMap<String, ParamValue>) -> Self {
        self.params = params;
        self
    }

    /// Looks up one parameter.
    pub fn param(&self, key: &str) -> Option<&ParamValue> {
        self.params.get(key)
    }

    /// All parameters in deterministic (sorted-key) order.
    pub fn params(&self) -> &BTreeMap<String, ParamValue> {
        &self.params
    }

    fn type_mismatch(&self, key: &str, expected: &str, found: &ParamValue) -> ! {
        panic!(
            "parameter {key:?} of scenario {:?} is {found:?}, expected {expected} — \
             a silent default here would run a configuration different from the \
             one the report labels",
            self.name
        )
    }

    /// Numeric parameter (integers coerce), or `default` when absent.
    ///
    /// # Panics
    /// Panics when the parameter is present but not numeric.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        match self.params.get(key) {
            None => default,
            Some(v) => v.as_f64().unwrap_or_else(|| self.type_mismatch(key, "a number", v)),
        }
    }

    /// Integer parameter (exact-integer floats coerce), or `default` when
    /// absent.
    ///
    /// # Panics
    /// Panics when the parameter is present but not an (exact) integer.
    pub fn i64_or(&self, key: &str, default: i64) -> i64 {
        match self.params.get(key) {
            None => default,
            Some(ParamValue::Float(f))
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(f) =>
            {
                *f as i64
            }
            Some(v) => v.as_i64().unwrap_or_else(|| self.type_mismatch(key, "an integer", v)),
        }
    }

    /// Integer parameter clamped to `u64`, or `default` when absent.
    ///
    /// # Panics
    /// Panics when the parameter is present but not an (exact) integer.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        if self.params.contains_key(key) {
            self.i64_or(key, 0).max(0) as u64
        } else {
            default
        }
    }

    /// Boolean parameter, or `default` when absent.
    ///
    /// # Panics
    /// Panics when the parameter is present but not a boolean.
    pub fn bool_or(&self, key: &str, default: bool) -> bool {
        match self.params.get(key) {
            None => default,
            Some(v) => v.as_bool().unwrap_or_else(|| self.type_mismatch(key, "a boolean", v)),
        }
    }

    /// Text parameter, or `default` when absent.
    ///
    /// # Panics
    /// Panics when the parameter is present but not text.
    pub fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        match self.params.get(key) {
            None => default,
            Some(v) => v.as_str().unwrap_or_else(|| self.type_mismatch(key, "text", v)),
        }
    }

    /// A compact `k=v, k=v` rendering of the parameter map (used in tables).
    pub fn params_label(&self) -> String {
        params_label(&self.params)
    }

    /// Renders the spec as the JSON document [`ScenarioSpec::from_json_str`]
    /// parses — the two round-trip exactly for whole-second durations (the
    /// spec-file format only carries `duration_secs`; sub-second precision is
    /// truncated):
    ///
    /// ```
    /// use karyon_scenario::ScenarioSpec;
    ///
    /// let spec = ScenarioSpec::new("tdma").with("nodes", 8).with_seed(3);
    /// let round_tripped = ScenarioSpec::from_json_str(&spec.to_json()).unwrap();
    /// assert_eq!(round_tripped, spec);
    /// ```
    pub fn to_json(&self) -> String {
        let mut params = crate::json::ObjectWriter::new();
        for (k, v) in &self.params {
            params.raw(k, &v.to_json());
        }
        let mut o = crate::json::ObjectWriter::new();
        o.string("scenario", &self.name);
        o.u64("seed", self.seed);
        o.u64("duration_secs", self.duration.as_micros() / 1_000_000);
        o.raw("params", &params.finish());
        o.finish()
    }

    /// Builds a single-run spec from a JSON document — the one-off
    /// counterpart of a campaign spec file
    /// ([`Campaign::from_json_str`](crate::Campaign::from_json_str)) and the
    /// inverse of [`ScenarioSpec::to_json`]:
    ///
    /// ```
    /// use karyon_scenario::ScenarioSpec;
    ///
    /// let spec = ScenarioSpec::from_json_str(r#"{
    ///     "scenario": "platoon", "seed": 9, "duration_secs": 120,
    ///     "params": {"vehicles": 6, "mode": "kernel"}
    /// }"#).expect("well-formed spec");
    /// assert_eq!(spec.name, "platoon");
    /// assert_eq!(spec.seed, 9);
    /// assert_eq!(spec.u64_or("vehicles", 0), 6);
    /// ```
    ///
    /// `seed`, `duration_secs` and `params` are optional and default like
    /// [`ScenarioSpec::new`]; unknown fields are rejected.
    pub fn from_json_str(text: &str) -> Result<ScenarioSpec, String> {
        use crate::json::JsonValue;
        let doc = JsonValue::parse(text)?;
        let members = doc.as_object().ok_or_else(|| {
            format!("a scenario spec must be a JSON object, not {}", doc.type_name())
        })?;
        for (key, _) in members {
            if !matches!(key.as_str(), "scenario" | "seed" | "duration_secs" | "params") {
                return Err(format!(
                    "unknown scenario-spec field {key:?} (known: scenario, seed, \
                     duration_secs, params)"
                ));
            }
        }
        let name = doc
            .get("scenario")
            .and_then(JsonValue::as_str)
            .ok_or("a scenario spec needs a string \"scenario\" field")?;
        let mut spec = ScenarioSpec::new(name);
        if let Some(seed) = doc.get("seed") {
            spec = spec.with_seed(seed.as_u64().ok_or("\"seed\" must be a non-negative integer")?);
        }
        if let Some(secs) = doc.get("duration_secs") {
            spec = spec.with_duration_secs(
                secs.as_u64().ok_or("\"duration_secs\" must be a non-negative integer")?,
            );
        }
        if let Some(params) = doc.get("params") {
            let members = params.as_object().ok_or_else(|| {
                format!("\"params\" must be an object, not {}", params.type_name())
            })?;
            for (key, value) in members {
                spec = spec.with(
                    key,
                    ParamValue::from_json(value).map_err(|e| format!("param {key:?}: {e}"))?,
                );
            }
        }
        Ok(spec)
    }
}

/// Renders a parameter map as a compact `k=v, k=v` label in key order.
pub fn params_label(params: &BTreeMap<String, ParamValue>) -> String {
    params.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>().join(", ")
}

/// Renders a parameter map as a JSON object in key order.
pub(crate) fn params_json(params: &BTreeMap<String, ParamValue>) -> String {
    let mut o = crate::json::ObjectWriter::new();
    for (k, v) in params {
        match v {
            ParamValue::Int(i) => o.i64(k, *i),
            ParamValue::Float(f) => o.f64(k, *f),
            ParamValue::Bool(b) => o.bool(k, *b),
            ParamValue::Text(s) => o.string(k, s),
        };
    }
    o.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_getters_and_defaults() {
        let spec = ScenarioSpec::new("x")
            .with("count", 5)
            .with("rate", 0.25)
            .with("on", true)
            .with("mode", "kernel");
        assert_eq!(spec.i64_or("count", 0), 5);
        assert_eq!(spec.u64_or("count", 0), 5);
        assert_eq!(spec.f64_or("count", 0.0), 5.0, "integers coerce to f64");
        assert_eq!(spec.f64_or("rate", 0.0), 0.25);
        assert!(spec.bool_or("on", false));
        assert_eq!(spec.str_or("mode", "-"), "kernel");
        // Defaults apply on absence only.
        assert_eq!(spec.str_or("missing", "d"), "d");
        assert_eq!(spec.u64_or("neg", 9), 9);
        assert_eq!(spec.i64_or("missing", -1), -1);
    }

    #[test]
    fn exact_integer_floats_coerce_to_integers() {
        // A grid axis written as [12.0, 20.0] must configure 12/20 vehicles,
        // not silently fall back to a default.
        let spec = ScenarioSpec::new("x").with("vehicles", 12.0);
        assert_eq!(spec.u64_or("vehicles", 6), 12);
        assert_eq!(spec.i64_or("vehicles", 6), 12);
    }

    #[test]
    #[should_panic(expected = "expected an integer")]
    fn fractional_float_for_integer_getter_panics() {
        let spec = ScenarioSpec::new("x").with("vehicles", 12.5);
        let _ = spec.u64_or("vehicles", 6);
    }

    #[test]
    #[should_panic(expected = "expected text")]
    fn non_text_for_str_getter_panics() {
        let spec = ScenarioSpec::new("x").with("mode", 2);
        let _ = spec.str_or("mode", "kernel");
    }

    #[test]
    fn negative_int_clamps_to_zero_for_u64() {
        let spec = ScenarioSpec::new("x").with("n", -3);
        assert_eq!(spec.u64_or("n", 7), 0);
    }

    #[test]
    fn params_label_is_sorted_and_stable() {
        let spec = ScenarioSpec::new("x").with("b", 2).with("a", "v");
        assert_eq!(spec.params_label(), "a=v, b=2");
    }
}

//! Campaign telemetry attachment: how a caller plugs the
//! [`karyon-telemetry`](karyon_telemetry) flight recorder into a campaign.
//!
//! A [`CampaignTelemetry`] bundles the two optional halves of the recorder —
//! a deterministic virtual-time [`TraceSink`] and a wall-clock
//! [`MetricsRegistry`] — so the `*_with` campaign entry points
//! ([`Campaign::run_instrumented_with`](crate::Campaign::run_instrumented_with),
//! [`Campaign::run_checkpointed_with`](crate::Campaign::run_checkpointed_with),
//! [`Campaign::resume_with`](crate::Campaign::resume_with)) take one argument
//! instead of growing two each.  Both halves default to detached, which is
//! the zero-overhead path: no trace scope is opened around runs and no timer
//! is sampled.
//!
//! The two halves deliberately have opposite determinism contracts:
//!
//! * **Traces** are keyed by canonical run coordinates and contain only
//!   virtual-time records, so the trace stream a sink receives is
//!   bit-identical for any worker count and any checkpoint/resume history —
//!   the same contract the campaign report itself carries.  The runner
//!   guarantees this by draining each run's records at canonical-order merge
//!   time, never at execution time.
//! * **Metrics** are wall-clock throughput/latency observations (chunk
//!   latency, per-worker busy time, checkpoint-write cost...).  They depend
//!   on scheduling by nature, exactly like [`RunnerStats`](crate::RunnerStats),
//!   and are kept out of the deterministic report for the same reason.

use std::fmt;

pub use karyon_telemetry::{MetricsRegistry, TraceSink};

/// The telemetry attachment of one campaign session: an optional
/// deterministic trace sink and an optional wall-clock metrics registry.
///
/// Construct with [`CampaignTelemetry::none`] (or `Default`) and attach the
/// halves you want:
///
/// ```
/// use karyon_scenario::{builtin_registry, Campaign, CampaignEntry, CampaignTelemetry};
/// use karyon_telemetry::{JsonlTraceWriter, MetricsRegistry};
///
/// let campaign = Campaign::new("doc-telemetry", 9)
///     .entry(CampaignEntry::new("lane-change").replications(2).duration_secs(10));
/// let mut trace = JsonlTraceWriter::new(Vec::new());
/// let mut metrics = MetricsRegistry::new();
/// let telemetry = CampaignTelemetry::none().with_trace(&mut trace).with_metrics(&mut metrics);
/// let (report, _stats) = campaign
///     .run_instrumented_with(&builtin_registry(), None, telemetry)
///     .expect("builtin family");
/// assert_eq!(report.total_runs, 2);
/// assert_eq!(metrics.counter("campaign.runs"), 2);
/// let jsonl = String::from_utf8(trace.into_inner().expect("no I/O error")).unwrap();
/// assert!(jsonl.lines().all(|line| line.starts_with("{\"run\":")));
/// ```
#[derive(Default)]
pub struct CampaignTelemetry<'a> {
    /// Receives every run's deterministic trace records, in canonical run
    /// order.  `None` disables tracing entirely (runs execute without a
    /// collection scope, so instrumentation in scenario code is a no-op).
    pub trace: Option<&'a mut dyn TraceSink>,
    /// Accumulates wall-clock runner metrics.  `None` disables them.
    pub metrics: Option<&'a mut MetricsRegistry>,
}

impl<'a> CampaignTelemetry<'a> {
    /// A fully detached attachment — the campaign runs exactly as if the
    /// plain entry points had been called.
    pub fn none() -> Self {
        CampaignTelemetry::default()
    }

    /// Attaches a deterministic trace sink.
    pub fn with_trace(mut self, trace: &'a mut dyn TraceSink) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a wall-clock metrics registry.
    pub fn with_metrics(mut self, metrics: &'a mut MetricsRegistry) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// True when a trace sink is attached (the runner opens per-run
    /// collection scopes only then).
    pub(crate) fn tracing(&self) -> bool {
        self.trace.is_some()
    }
}

impl fmt::Debug for CampaignTelemetry<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CampaignTelemetry")
            .field("trace", &self.trace.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

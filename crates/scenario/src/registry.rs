//! Named scenario families and the builtin adapters over the workspace's
//! use-case simulations.

use std::collections::BTreeMap;
use std::sync::Arc;

use karyon_core::LevelOfService;
use karyon_middleware::{
    ContextFilter, EventBus, NetworkCapability, NetworkId, QosRequirement, Subject, SubscriberId,
};
use karyon_sensors::SensorFault;
use karyon_sim::{Engine, Rng, SimDuration, SimTime};
use karyon_vehicles::{
    run_encounter, run_intersection, run_lane_changes, run_platoon, AerialScenario, AvionicsConfig,
    ControlMode, Coordination, FallbackMode, InjectedSensorFault, IntersectionConfig,
    LaneChangeConfig, PlatoonConfig, TrafficType, V2VModel,
};

use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// A registry of named scenario families.
///
/// Families are stored behind `Arc` so the registry can be shared with the
/// campaign worker threads; the `BTreeMap` keeps [`ScenarioRegistry::names`]
/// deterministic.
#[derive(Clone, Default)]
pub struct ScenarioRegistry {
    families: BTreeMap<String, Arc<dyn Scenario>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry").field("families", &self.names()).finish()
    }
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a family under its own [`Scenario::name`]; replaces any
    /// previous family of the same name.
    pub fn register(&mut self, scenario: Arc<dyn Scenario>) {
        self.families.insert(scenario.name().to_string(), scenario);
    }

    /// Looks up a family by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Scenario>> {
        self.families.get(name)
    }

    /// The registered family names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.families.keys().cloned().collect()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True when no family is registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }
}

/// Builds a registry with every builtin scenario family:
///
/// | family | adapted from | key parameters |
/// |---|---|---|
/// | `platoon` | `karyon_vehicles::run_platoon` | `mode`, `vehicles`, `v2v_loss`, `lead_braking`, `outage` |
/// | `platoon-fault` | bench `e15` (randomized fault injection) | `mode`, `vehicles` |
/// | `intersection` | `karyon_vehicles::run_intersection` | `fallback`, `arrivals_per_minute`, `light_fail` |
/// | `lane-change` | `karyon_vehicles::run_lane_changes` | `coordination`, `vehicles`, `message_loss`, `desire_rate` |
/// | `avionics-rpv` | `karyon_vehicles::run_encounter` | `encounter`, `traffic`, `resolution` |
/// | `middleware-qos` | `karyon_middleware::EventBus` on a `karyon_sim::Engine` | `rate_hz`, `degrade` |
pub fn builtin_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(PlatoonScenario));
    registry.register(Arc::new(PlatoonFaultScenario));
    registry.register(Arc::new(IntersectionScenario));
    registry.register(Arc::new(LaneChangeScenario));
    registry.register(Arc::new(AvionicsScenario));
    registry.register(Arc::new(MiddlewareQosScenario));
    registry
}

/// Parses the shared `mode` parameter (`kernel`, `los0`, `los1`, `los2`).
fn control_mode(spec: &ScenarioSpec) -> ControlMode {
    match spec.str_or("mode", "kernel") {
        "kernel" => ControlMode::SafetyKernel,
        "los0" => ControlMode::FixedLos(LevelOfService(0)),
        "los1" => ControlMode::FixedLos(LevelOfService(1)),
        "los2" => ControlMode::FixedLos(LevelOfService(2)),
        other => panic!("unknown platoon mode {other:?} (expected kernel|los0|los1|los2)"),
    }
}

/// The ACC/CACC platoon of §VI-A1 under configurable V2V quality.
struct PlatoonScenario;

impl Scenario for PlatoonScenario {
    fn name(&self) -> &str {
        "platoon"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let duration = spec.duration;
        let mut v2v = V2VModel { loss: spec.f64_or("v2v_loss", 0.05), ..Default::default() };
        if spec.bool_or("outage", false) {
            // A single outage across the middle third of the run.
            let third = duration.as_secs_f64() / 3.0;
            v2v.outages =
                vec![(SimTime::from_secs_f64(third), SimTime::from_secs_f64(2.0 * third))];
        }
        let config = PlatoonConfig {
            vehicles: spec.u64_or("vehicles", 6).max(2) as usize,
            duration,
            mode: control_mode(spec),
            v2v,
            lead_braking: spec.f64_or("lead_braking", 4.0),
            seed: spec.seed,
            ..Default::default()
        };
        let result = run_platoon(&config);
        let mut record = RunRecord::new();
        record.set("collisions", result.collisions as f64);
        record.set_flag("collision", result.collisions > 0);
        record.set("hazard_steps", result.hazard_steps as f64);
        record.set_flag("hazard", result.hazard_steps > 0);
        record.set("min_time_gap_s", result.min_time_gap);
        record.set("mean_time_gap_s", result.mean_time_gap);
        record.set("mean_speed_mps", result.mean_speed);
        record.set("throughput_vph", result.throughput_veh_per_hour);
        record.set("los2_fraction", result.los_time_fraction[2]);
        record.set("los_switches", result.los_switches as f64);
        record
    }
}

/// The randomized fault-injection campaign body of bench `e15`: every run
/// draws a sensor-fault class, target follower, fault window and V2V outage
/// from the run seed, then executes the platoon under the chosen control
/// strategy.
struct PlatoonFaultScenario;

fn random_fault(rng: &mut Rng) -> SensorFault {
    match rng.range_u64(0, 4) {
        0 => SensorFault::Delay { delay: SimDuration::from_millis(rng.range_u64(400, 1_500)) },
        1 => SensorFault::SporadicOffset { probability: 0.3, magnitude: rng.range_f64(10.0, 40.0) },
        2 => SensorFault::PermanentOffset { offset: rng.range_f64(-25.0, 25.0) },
        3 => SensorFault::StochasticOffset { std_dev: rng.range_f64(3.0, 12.0) },
        _ => SensorFault::StuckAt { stuck_value: None },
    }
}

impl Scenario for PlatoonFaultScenario {
    fn name(&self) -> &str {
        "platoon-fault"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let vehicles = spec.u64_or("vehicles", 6).max(2) as usize;
        let mut rng = Rng::seed_from(spec.seed);
        let fault_start = rng.range_u64(20, 60);
        let outage_start = rng.range_u64(30, 80);
        let config = PlatoonConfig {
            vehicles,
            duration: spec.duration,
            mode: control_mode(spec),
            lead_braking: rng.range_f64(3.5, 5.5),
            v2v: V2VModel {
                loss: rng.range_f64(0.02, 0.2),
                outages: vec![(
                    SimTime::from_secs(outage_start),
                    SimTime::from_secs(outage_start + rng.range_u64(10, 40)),
                )],
                ..Default::default()
            },
            sensor_fault: Some(InjectedSensorFault {
                follower: rng.range_usize(1, vehicles - 1),
                fault: random_fault(&mut rng),
                from: SimTime::from_secs(fault_start),
                until: SimTime::from_secs(fault_start + rng.range_u64(10, 50)),
            }),
            seed: rng.next_u64(),
            ..Default::default()
        };
        let result = run_platoon(&config);
        let mut record = RunRecord::new();
        record.set_flag("collision", result.collisions > 0);
        record.set_flag("hazard", result.hazard_steps > 0);
        record.set("hazard_steps", result.hazard_steps as f64);
        record.set("min_time_gap_s", result.min_time_gap);
        record.set("throughput_vph", result.throughput_veh_per_hour);
        record
    }
}

/// The intersection-crossing use case of §VI-A2 with an optional
/// infrastructure-light failure across the middle third of the run.
struct IntersectionScenario;

impl Scenario for IntersectionScenario {
    fn name(&self) -> &str {
        "intersection"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let duration = spec.duration;
        let fallback = match spec.str_or("fallback", "vtl") {
            "vtl" => FallbackMode::VirtualTrafficLight,
            "uncoordinated" => FallbackMode::Uncoordinated,
            other => panic!("unknown intersection fallback {other:?} (expected vtl|uncoordinated)"),
        };
        let light_failure = if spec.bool_or("light_fail", true) {
            let third = duration.as_secs_f64() / 3.0;
            Some((SimTime::from_secs_f64(third), SimTime::from_secs_f64(2.0 * third)))
        } else {
            None
        };
        let config = IntersectionConfig {
            arrivals_per_minute: spec.f64_or("arrivals_per_minute", 12.0),
            duration,
            light_failure,
            fallback,
            seed: spec.seed,
        };
        let result = run_intersection(&config);
        let mut record = RunRecord::new();
        record.set("crossed", result.crossed as f64);
        record.set("conflicts", result.conflicts as f64);
        record.set_flag("conflict", result.conflicts > 0);
        record.set("mean_wait_s", result.mean_wait);
        record.set("max_wait_s", result.max_wait);
        record.set("throughput_vpm", result.throughput_per_minute);
        record.set("uncontrolled_fraction", result.uncontrolled_fraction);
        record
    }
}

/// The coordinated lane-change use case of §VI-A3.
struct LaneChangeScenario;

impl Scenario for LaneChangeScenario {
    fn name(&self) -> &str {
        "lane-change"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let coordination = match spec.str_or("coordination", "agreement") {
            "agreement" => Coordination::Agreement,
            "none" => Coordination::None,
            other => panic!("unknown lane-change coordination {other:?} (expected agreement|none)"),
        };
        let config = LaneChangeConfig {
            vehicles: spec.u64_or("vehicles", 16).max(2) as usize,
            desire_rate: spec.f64_or("desire_rate", 0.05),
            message_loss: spec.f64_or("message_loss", 0.02),
            duration: spec.duration,
            coordination,
            seed: spec.seed,
            ..Default::default()
        };
        let result = run_lane_changes(&config);
        let mut record = RunRecord::new();
        record.set("desired", result.desired as f64);
        record.set("started", result.started as f64);
        record.set("completed", result.completed as f64);
        record.set("aborted", result.aborted as f64);
        record.set("invariant_violations", result.invariant_violations as f64);
        record.set_flag("violation", result.invariant_violations > 0);
        record.set("mean_start_delay_s", result.mean_start_delay);
        record.set(
            "completion_rate",
            if result.desired > 0 { result.completed as f64 / result.desired as f64 } else { 0.0 },
        );
        record
    }
}

/// The aerial RPV separation scenarios of §VI-B.
struct AvionicsScenario;

impl Scenario for AvionicsScenario {
    fn name(&self) -> &str {
        "avionics-rpv"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let scenario = match spec.str_or("encounter", "same-direction") {
            "same-direction" => AerialScenario::SameDirection,
            "crossing" => AerialScenario::LeveledCrossing,
            "level-change" => AerialScenario::FlightLevelChange,
            other => panic!(
                "unknown avionics encounter {other:?} (expected same-direction|crossing|level-change)"
            ),
        };
        let traffic = match spec.str_or("traffic", "collaborative") {
            "collaborative" => TrafficType::Collaborative,
            "non-collaborative" => TrafficType::NonCollaborative,
            other => panic!(
                "unknown avionics traffic {other:?} (expected collaborative|non-collaborative)"
            ),
        };
        let config = AvionicsConfig {
            scenario,
            traffic,
            resolution_enabled: spec.bool_or("resolution", true),
            duration: spec.duration,
            seed: spec.seed,
        };
        let result = run_encounter(&config);
        let mut record = RunRecord::new();
        record.set("min_horizontal_sep_m", result.min_horizontal_separation);
        record.set("min_vertical_sep_m", result.min_vertical_separation);
        record.set("violation_seconds", result.violation_seconds);
        record.set_flag("violated", result.violation_seconds > 0.0);
        record.set_flag("detected", result.detected_at.is_some());
        if let Some(at) = result.detected_at {
            record.set("detected_at_s", at);
        }
        record.set_flag("resolution_applied", result.resolution_applied);
        record
    }
}

/// Event-channel QoS under load and mid-run degradation (§V-B), driven by the
/// discrete-event [`Engine`] — this family also exercises the engine's
/// clamped-schedule accounting, which the campaign surfaces as suspect runs.
struct MiddlewareQosScenario;

#[derive(Debug, Clone, Copy)]
enum QosEvent {
    Publish,
    Degrade,
}

impl Scenario for MiddlewareQosScenario {
    fn name(&self) -> &str {
        "middleware-qos"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let rate_hz = spec.f64_or("rate_hz", 50.0).max(1.0);
        let degrade = spec.bool_or("degrade", false);
        let subject = Subject::from_name("platoon/lead-state");

        let mut bus = EventBus::new(spec.seed);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
        bus.subscribe(SubscriberId(1), NetworkId(1), subject, ContextFilter::accept_all());
        let admission = bus.announce(
            subject,
            NetworkId(1),
            QosRequirement {
                max_latency: SimDuration::from_millis(60),
                min_delivery_ratio: 0.9,
                max_rate: rate_hz,
            },
        );

        let period = SimDuration::from_secs_f64(1.0 / rate_hz);
        let end = SimTime::ZERO + spec.duration;
        let mut engine: Engine<EventBus, QosEvent> = Engine::new(bus);
        engine.schedule_at(SimTime::ZERO, QosEvent::Publish);
        if degrade {
            engine.schedule_at(
                SimTime::from_secs_f64(spec.duration.as_secs_f64() / 2.0),
                QosEvent::Degrade,
            );
        }
        engine.run_until(end, |bus, ctx, event| match event {
            QosEvent::Publish => {
                bus.publish_from(subject, None, vec![0], ctx.now());
                ctx.schedule_in(period, QosEvent::Publish);
            }
            QosEvent::Degrade => {
                bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());
            }
        });

        let mut record = RunRecord::new();
        record.absorb_engine_clamps(&engine);
        let bus = engine.into_state();
        let stats = bus.channel_stats(subject).expect("channel was announced");
        record.set_flag("admitted", admission == karyon_middleware::Admission::Admitted);
        record.set("published", stats.published as f64);
        record.set(
            "delivery_ratio",
            if stats.published > 0 { stats.delivered as f64 / stats.published as f64 } else { 0.0 },
        );
        record.set("mean_latency_ms", stats.mean_latency_ms);
        record.set(
            "deadline_miss_ratio",
            if stats.delivered > 0 {
                stats.missed_deadline as f64 / stats.delivered as f64
            } else {
                0.0
            },
        );
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_contains_all_families() {
        let registry = builtin_registry();
        assert_eq!(
            registry.names(),
            vec![
                "avionics-rpv",
                "intersection",
                "lane-change",
                "middleware-qos",
                "platoon",
                "platoon-fault"
            ]
        );
        assert!(!registry.is_empty());
        assert_eq!(registry.len(), 6);
    }

    #[test]
    fn every_builtin_family_runs_and_is_deterministic() {
        let registry = builtin_registry();
        for name in registry.names() {
            let spec = ScenarioSpec::new(&name).with_seed(11).with_duration_secs(30);
            let scenario = registry.get(&name).unwrap();
            let a = scenario.run(&spec);
            let b = scenario.run(&spec);
            assert_eq!(a, b, "family {name} must be deterministic for a fixed spec");
            assert!(!a.metrics().is_empty(), "family {name} must report metrics");
        }
    }

    #[test]
    fn platoon_modes_map_to_control_strategies() {
        let registry = builtin_registry();
        let platoon = registry.get("platoon").unwrap();
        let coop = platoon.run(
            &ScenarioSpec::new("platoon").with("mode", "los2").with_seed(3).with_duration_secs(60),
        );
        let cons = platoon.run(
            &ScenarioSpec::new("platoon").with("mode", "los0").with_seed(3).with_duration_secs(60),
        );
        assert_eq!(coop.get("los2_fraction"), Some(1.0));
        assert_eq!(cons.get("los2_fraction"), Some(0.0));
        assert!(
            cons.get("mean_time_gap_s") > coop.get("mean_time_gap_s"),
            "conservative mode keeps larger margins"
        );
    }

    #[test]
    fn middleware_qos_reports_channel_quality() {
        let registry = builtin_registry();
        let qos = registry.get("middleware-qos").unwrap();
        let record =
            qos.run(&ScenarioSpec::new("middleware-qos").with_seed(5).with_duration_secs(20));
        assert_eq!(record.get("admitted"), Some(1.0));
        assert!(record.get("delivery_ratio").unwrap() > 0.8);
        assert!(record.get("published").unwrap() > 900.0, "50 Hz × 20 s ≈ 1000 events");
        assert_eq!(record.clamped_schedules, 0, "the publish loop never schedules into the past");
    }

    #[test]
    #[should_panic(expected = "unknown platoon mode")]
    fn invalid_mode_panics_with_guidance() {
        let registry = builtin_registry();
        let _ = registry
            .get("platoon")
            .unwrap()
            .run(&ScenarioSpec::new("platoon").with("mode", "warp"));
    }
}

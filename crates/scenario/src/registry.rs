//! Named scenario families and the builtin registry over the workspace's
//! experiment bodies.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::families;
use crate::grid::ParamGrid;
use crate::json::{self, ObjectWriter};
use crate::scenario::Scenario;
use crate::spec::ParamValue;

/// A registry of named scenario families.
///
/// Families are stored behind `Arc` so the registry can be shared with the
/// campaign worker threads; the `BTreeMap` keeps [`ScenarioRegistry::names`]
/// deterministic.
#[derive(Clone, Default)]
pub struct ScenarioRegistry {
    families: BTreeMap<String, Arc<dyn Scenario>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry").field("families", &self.names()).finish()
    }
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a family under its own [`Scenario::name`]; replaces any
    /// previous family of the same name.
    pub fn register(&mut self, scenario: Arc<dyn Scenario>) {
        self.families.insert(scenario.name().to_string(), scenario);
    }

    /// Looks up a family by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Scenario>> {
        self.families.get(name)
    }

    /// The registered family names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.families.keys().cloned().collect()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True when no family is registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Describes every registered family — name, engine involvement and the
    /// declared parameter domain — in name order.
    pub fn describe(&self) -> Vec<FamilyInfo> {
        self.families
            .values()
            .map(|scenario| FamilyInfo {
                name: scenario.name().to_string(),
                engine_driven: scenario.engine_driven(),
                params: scenario
                    .param_domain()
                    .axes()
                    .iter()
                    .map(|(name, values)| ParamInfo {
                        name: name.clone(),
                        type_name: values[0].type_name(),
                        default: values[0].clone(),
                        domain: values.clone(),
                    })
                    .collect(),
            })
            .collect()
    }

    /// The machine-readable family listing behind
    /// `karyon-campaign list-families --output json`:
    ///
    /// ```json
    /// {"families": [{"name": "tdma", "engine_driven": false,
    ///   "params": [{"name": "nodes", "type": "int", "default": 8,
    ///               "domain": [8, 4, 12]}, ...]}, ...]}
    /// ```
    ///
    /// Parameter entries carry the declared type, the default (the first
    /// domain value) and the full default sweep domain, so external tooling
    /// can generate valid campaign specs without parsing rustdoc.
    pub fn describe_json(&self) -> String {
        let families: Vec<String> = self
            .describe()
            .iter()
            .map(|family| {
                let params: Vec<String> = family
                    .params
                    .iter()
                    .map(|p| {
                        let domain: Vec<String> =
                            p.domain.iter().map(ParamValue::to_json).collect();
                        let mut o = ObjectWriter::new();
                        o.string("name", &p.name);
                        o.string("type", p.type_name);
                        o.raw("default", &p.default.to_json());
                        o.raw("domain", &json::array(&domain));
                        o.finish()
                    })
                    .collect();
                let mut o = ObjectWriter::new();
                o.string("name", &family.name);
                o.bool("engine_driven", family.engine_driven);
                o.raw("params", &json::array(&params));
                o.finish()
            })
            .collect();
        let mut root = ObjectWriter::new();
        root.raw("families", &json::array(&families));
        root.finish()
    }
}

/// One family's entry in [`ScenarioRegistry::describe`].
#[derive(Debug, Clone)]
pub struct FamilyInfo {
    /// The registered family name.
    pub name: String,
    /// Whether the family drives a `karyon_sim::Engine` (and therefore
    /// participates in the clamp audit).
    pub engine_driven: bool,
    /// The declared parameters, in [`Scenario::param_domain`] axis order.
    pub params: Vec<ParamInfo>,
}

/// One parameter of one family, as declared by
/// [`Scenario::param_domain`].
#[derive(Debug, Clone)]
pub struct ParamInfo {
    /// The parameter name.
    pub name: String,
    /// The JSON-facing type name (`int`, `float`, `bool`, `text`).
    pub type_name: &'static str,
    /// The default value (the first value of the declared axis).
    pub default: ParamValue,
    /// The full declared sweep domain.
    pub domain: Vec<ParamValue>,
}

impl FamilyInfo {
    /// The default [`ParamGrid`] of this family: every declared parameter
    /// pinned to its default value — the grid a generated all-families
    /// smoke spec uses.
    pub fn default_grid(&self) -> ParamGrid {
        let mut grid = ParamGrid::new();
        for p in &self.params {
            grid = grid.axis_values(&p.name, vec![p.default.clone()]);
        }
        grid
    }
}

/// Builds a registry with every builtin scenario family — one per KARYON
/// evaluation experiment (see [`families`] for the full module tour):
///
/// | family | layer | adapted from | key parameters |
/// |---|---|---|---|
/// | `platoon` | vehicles | `run_platoon` (e01/e10) | `mode`, `vehicles`, `v2v_loss`, `lead_braking`, `outage` |
/// | `platoon-fault` | vehicles | bench e15 body | `mode`, `vehicles` |
/// | `intersection` | vehicles | `run_intersection` (e11) | `fallback`, `arrivals_per_minute`, `light_fail` |
/// | `lane-change` | vehicles | `run_lane_changes` (e12) | `coordination`, `vehicles`, `message_loss`, `desire_rate` |
/// | `avionics-rpv` | vehicles | `run_encounter` (e13) | `encounter`, `traffic`, `resolution` |
/// | `middleware-qos` | middleware | `EventBus` on an `Engine` (e08) | `rate_hz`, `degrade`, `network`, `max_latency_ms`, `min_delivery_ratio` |
/// | `middleware-overload` | middleware | EventBus v2 backpressure (e08) | `load_x`, `qos_mix`, `backlog_threshold`, `strategy` |
/// | `tdma` | net | self-stabilizing TDMA (e05) | `nodes`, `adversarial`, `slots_per_frame`, `churn` |
/// | `inaccessibility` | net | CSMA / R2T-MAC under jamming (e04) | `mac`, `burst_ms`, `copies`, `nodes`, `gap_s`, `loss`, `long_burst` |
/// | `pulse-sync` | net | autonomous pulse alignment (e06) | `drift_ppm`, `loss`, `gain`, `nodes`, `period_ms` |
/// | `end-to-end` | net | self-stabilizing FIFO (e07) | `omission`, `duplication`, `capacity`, `corrupt`, `messages` |
/// | `net-transport` | transport | simulated campaign fabric (ROADMAP 1/4) | `nodes`, `messages`, `drop`, `duplicate`, `reorder`, `partition` |
/// | `sensor-validity` | sensors | validity estimation (e02) | `fault`, `noise_std`, `timeout_ms`, `max_rate`, fault magnitudes |
/// | `reliable-sensor` | sensors | abstract reliable sensor (e03) | `config`, `fault`, `replicas`, `noise_std`, fault magnitudes |
/// | `kernel-latency` | core | safety-kernel cycles (e14) | `rules_per_level`, `cycles`, `cycle_period_ms`, `validity_threshold` |
/// | `cooperation` | core | manoeuvre agreement (e09a) | `participants`, `loss`, `deadline_ms`, `retransmit_ms` |
/// | `topology` | net/core | discovery + Byzantine paths (e09b/c) | `topology`, `nodes` |
pub fn builtin_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(families::PlatoonScenario));
    registry.register(Arc::new(families::PlatoonFaultScenario));
    registry.register(Arc::new(families::IntersectionScenario));
    registry.register(Arc::new(families::LaneChangeScenario));
    registry.register(Arc::new(families::AvionicsScenario));
    registry.register(Arc::new(families::MiddlewareQosScenario));
    registry.register(Arc::new(families::MiddlewareOverloadScenario));
    registry.register(Arc::new(families::TdmaScenario));
    registry.register(Arc::new(families::InaccessibilityScenario));
    registry.register(Arc::new(families::PulseSyncScenario));
    registry.register(Arc::new(families::EndToEndScenario));
    registry.register(Arc::new(families::NetTransportScenario));
    registry.register(Arc::new(families::SensorValidityScenario));
    registry.register(Arc::new(families::ReliableSensorScenario));
    registry.register(Arc::new(families::KernelLatencyScenario));
    registry.register(Arc::new(families::CooperationScenario));
    registry.register(Arc::new(families::TopologyScenario));
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    #[test]
    fn builtin_registry_contains_all_families() {
        let registry = builtin_registry();
        assert_eq!(
            registry.names(),
            vec![
                "avionics-rpv",
                "cooperation",
                "end-to-end",
                "inaccessibility",
                "intersection",
                "kernel-latency",
                "lane-change",
                "middleware-overload",
                "middleware-qos",
                "net-transport",
                "platoon",
                "platoon-fault",
                "pulse-sync",
                "reliable-sensor",
                "sensor-validity",
                "tdma",
                "topology",
            ]
        );
        assert!(!registry.is_empty());
        assert_eq!(registry.len(), 17);
    }

    #[test]
    fn every_builtin_family_runs_and_is_deterministic() {
        let registry = builtin_registry();
        for name in registry.names() {
            let spec = ScenarioSpec::new(&name).with_seed(11).with_duration_secs(20);
            let scenario = registry.get(&name).unwrap();
            let a = scenario.run(&spec);
            let b = scenario.run(&spec);
            assert_eq!(a, b, "family {name} must be deterministic for a fixed spec");
            assert!(!a.metrics().is_empty(), "family {name} must report metrics");
        }
    }

    #[test]
    fn metric_ranges_are_pure_and_cover_reported_metrics_only() {
        // The bounded-memory merge relies on range declarations being pure
        // functions of the metric name; flags must stay undeclared so small
        // sweeps keep exact 0/1 quantiles.
        let registry = builtin_registry();
        for name in registry.names() {
            let scenario = registry.get(&name).unwrap();
            let record =
                scenario.run(&ScenarioSpec::new(&name).with_seed(3).with_duration_secs(10));
            for metric in record.metrics().keys() {
                assert_eq!(
                    scenario.metric_range(metric),
                    scenario.metric_range(metric),
                    "family {name} metric {metric}: declaration must be pure"
                );
                if let Some((lo, hi)) = scenario.metric_range(metric) {
                    assert!(
                        lo.is_finite() && hi.is_finite() && lo < hi,
                        "family {name} metric {metric}: invalid range ({lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn every_family_declares_a_parameter_domain() {
        // The param-domain declaration is what `list-families --output json`
        // and generated smoke specs rely on: every axis non-empty, no
        // duplicate names (ParamGrid enforces both), and the declaration
        // pure (constant across calls).
        let registry = builtin_registry();
        for info in registry.describe() {
            let scenario = registry.get(&info.name).unwrap();
            assert!(
                !info.params.is_empty(),
                "family {}: builtin families must declare their parameters",
                info.name
            );
            assert_eq!(
                scenario.param_domain().axes(),
                scenario.param_domain().axes(),
                "family {}: param_domain must be pure",
                info.name
            );
            // The default grid expands to exactly one point carrying every
            // declared parameter.
            let points = info.default_grid().expand();
            assert_eq!(points.len(), 1);
            assert_eq!(points[0].len(), info.params.len());
        }
    }

    #[test]
    fn describe_json_is_machine_readable_and_complete() {
        let registry = builtin_registry();
        let doc = crate::json::JsonValue::parse(&registry.describe_json())
            .expect("listing must be well-formed JSON");
        let families = doc.get("families").and_then(|f| f.as_array()).unwrap();
        assert_eq!(families.len(), registry.len());
        for family in families {
            let name = family.get("name").and_then(|n| n.as_str()).unwrap();
            assert!(registry.get(name).is_some());
            assert!(family.get("engine_driven").and_then(|e| e.as_bool()).is_some());
            for param in family.get("params").and_then(|p| p.as_array()).unwrap() {
                let type_name = param.get("type").and_then(|t| t.as_str()).unwrap();
                assert!(matches!(type_name, "int" | "float" | "bool" | "text"));
                let default = param.get("default").unwrap();
                let domain = param.get("domain").and_then(|d| d.as_array()).unwrap();
                assert!(!domain.is_empty());
                // The default is the first domain value, and every domain
                // value parses back as a ParamValue of the declared type.
                for value in domain {
                    let parsed = ParamValue::from_json(value).unwrap();
                    assert_eq!(parsed.type_name(), type_name);
                }
                assert_eq!(
                    ParamValue::from_json(default).unwrap(),
                    ParamValue::from_json(&domain[0]).unwrap()
                );
            }
        }
    }
}

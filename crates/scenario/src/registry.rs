//! Named scenario families and the builtin adapters over the workspace's
//! use-case simulations.

use std::collections::BTreeMap;
use std::sync::Arc;

use karyon_core::LevelOfService;
use karyon_middleware::{
    ContextFilter, EventBus, NetworkCapability, NetworkId, QosRequirement, Subject, SubscriberId,
};
use karyon_net::mac::selfstab_tdma::allocation_is_collision_free;
use karyon_net::{
    CsmaConfig, CsmaMac, InaccessibilityTracker, MacProtocol, MacSimConfig, MacSimulation,
    MediumConfig, NodeId, R2TMac, R2TMacConfig, SelfStabTdmaMac, WirelessMedium,
};
use karyon_sensors::SensorFault;
use karyon_sim::{Engine, Rng, SimDuration, SimTime, Vec2};
use karyon_vehicles::{
    run_encounter, run_intersection, run_lane_changes, run_platoon, AerialScenario, AvionicsConfig,
    ControlMode, Coordination, FallbackMode, InjectedSensorFault, IntersectionConfig,
    LaneChangeConfig, PlatoonConfig, TrafficType, V2VModel,
};

use crate::scenario::{RunRecord, Scenario};
use crate::spec::ScenarioSpec;

/// A registry of named scenario families.
///
/// Families are stored behind `Arc` so the registry can be shared with the
/// campaign worker threads; the `BTreeMap` keeps [`ScenarioRegistry::names`]
/// deterministic.
#[derive(Clone, Default)]
pub struct ScenarioRegistry {
    families: BTreeMap<String, Arc<dyn Scenario>>,
}

impl std::fmt::Debug for ScenarioRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioRegistry").field("families", &self.names()).finish()
    }
}

impl ScenarioRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers a family under its own [`Scenario::name`]; replaces any
    /// previous family of the same name.
    pub fn register(&mut self, scenario: Arc<dyn Scenario>) {
        self.families.insert(scenario.name().to_string(), scenario);
    }

    /// Looks up a family by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Scenario>> {
        self.families.get(name)
    }

    /// The registered family names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.families.keys().cloned().collect()
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// True when no family is registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }
}

/// Builds a registry with every builtin scenario family:
///
/// | family | adapted from | key parameters |
/// |---|---|---|
/// | `platoon` | `karyon_vehicles::run_platoon` | `mode`, `vehicles`, `v2v_loss`, `lead_braking`, `outage` |
/// | `platoon-fault` | bench `e15` (randomized fault injection) | `mode`, `vehicles` |
/// | `intersection` | `karyon_vehicles::run_intersection` | `fallback`, `arrivals_per_minute`, `light_fail` |
/// | `lane-change` | `karyon_vehicles::run_lane_changes` | `coordination`, `vehicles`, `message_loss`, `desire_rate` |
/// | `avionics-rpv` | `karyon_vehicles::run_encounter` | `encounter`, `traffic`, `resolution` |
/// | `middleware-qos` | `karyon_middleware::EventBus` on a `karyon_sim::Engine` | `rate_hz`, `degrade` |
/// | `tdma` | `karyon_net` self-stabilizing TDMA (bench `e05` body) | `nodes`, `adversarial`, `slots_per_frame` |
/// | `inaccessibility` | `karyon_net` CSMA / R2T-MAC under jamming (bench `e04` body) | `mac`, `burst_ms`, `copies`, `nodes` |
pub fn builtin_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(Arc::new(PlatoonScenario));
    registry.register(Arc::new(PlatoonFaultScenario));
    registry.register(Arc::new(IntersectionScenario));
    registry.register(Arc::new(LaneChangeScenario));
    registry.register(Arc::new(AvionicsScenario));
    registry.register(Arc::new(MiddlewareQosScenario));
    registry.register(Arc::new(TdmaScenario));
    registry.register(Arc::new(InaccessibilityScenario));
    registry
}

/// Parses the shared `mode` parameter (`kernel`, `los0`, `los1`, `los2`).
fn control_mode(spec: &ScenarioSpec) -> ControlMode {
    match spec.str_or("mode", "kernel") {
        "kernel" => ControlMode::SafetyKernel,
        "los0" => ControlMode::FixedLos(LevelOfService(0)),
        "los1" => ControlMode::FixedLos(LevelOfService(1)),
        "los2" => ControlMode::FixedLos(LevelOfService(2)),
        other => panic!("unknown platoon mode {other:?} (expected kernel|los0|los1|los2)"),
    }
}

/// The ACC/CACC platoon of §VI-A1 under configurable V2V quality.
struct PlatoonScenario;

impl Scenario for PlatoonScenario {
    fn name(&self) -> &str {
        "platoon"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let duration = spec.duration;
        let mut v2v = V2VModel { loss: spec.f64_or("v2v_loss", 0.05), ..Default::default() };
        if spec.bool_or("outage", false) {
            // A single outage across the middle third of the run.
            let third = duration.as_secs_f64() / 3.0;
            v2v.outages =
                vec![(SimTime::from_secs_f64(third), SimTime::from_secs_f64(2.0 * third))];
        }
        let config = PlatoonConfig {
            vehicles: spec.u64_or("vehicles", 6).max(2) as usize,
            duration,
            mode: control_mode(spec),
            v2v,
            lead_braking: spec.f64_or("lead_braking", 4.0),
            seed: spec.seed,
            ..Default::default()
        };
        let result = run_platoon(&config);
        let mut record = RunRecord::new();
        record.set("collisions", result.collisions as f64);
        record.set_flag("collision", result.collisions > 0);
        record.set("hazard_steps", result.hazard_steps as f64);
        record.set_flag("hazard", result.hazard_steps > 0);
        record.set("min_time_gap_s", result.min_time_gap);
        record.set("mean_time_gap_s", result.mean_time_gap);
        record.set("mean_speed_mps", result.mean_speed);
        record.set("throughput_vph", result.throughput_veh_per_hour);
        record.set("los2_fraction", result.los_time_fraction[2]);
        record.set("los_switches", result.los_switches as f64);
        record
    }
}

/// The randomized fault-injection campaign body of bench `e15`: every run
/// draws a sensor-fault class, target follower, fault window and V2V outage
/// from the run seed, then executes the platoon under the chosen control
/// strategy.
struct PlatoonFaultScenario;

fn random_fault(rng: &mut Rng) -> SensorFault {
    match rng.range_u64(0, 4) {
        0 => SensorFault::Delay { delay: SimDuration::from_millis(rng.range_u64(400, 1_500)) },
        1 => SensorFault::SporadicOffset { probability: 0.3, magnitude: rng.range_f64(10.0, 40.0) },
        2 => SensorFault::PermanentOffset { offset: rng.range_f64(-25.0, 25.0) },
        3 => SensorFault::StochasticOffset { std_dev: rng.range_f64(3.0, 12.0) },
        _ => SensorFault::StuckAt { stuck_value: None },
    }
}

impl Scenario for PlatoonFaultScenario {
    fn name(&self) -> &str {
        "platoon-fault"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let vehicles = spec.u64_or("vehicles", 6).max(2) as usize;
        let mut rng = Rng::seed_from(spec.seed);
        let fault_start = rng.range_u64(20, 60);
        let outage_start = rng.range_u64(30, 80);
        let config = PlatoonConfig {
            vehicles,
            duration: spec.duration,
            mode: control_mode(spec),
            lead_braking: rng.range_f64(3.5, 5.5),
            v2v: V2VModel {
                loss: rng.range_f64(0.02, 0.2),
                outages: vec![(
                    SimTime::from_secs(outage_start),
                    SimTime::from_secs(outage_start + rng.range_u64(10, 40)),
                )],
                ..Default::default()
            },
            sensor_fault: Some(InjectedSensorFault {
                follower: rng.range_usize(1, vehicles - 1),
                fault: random_fault(&mut rng),
                from: SimTime::from_secs(fault_start),
                until: SimTime::from_secs(fault_start + rng.range_u64(10, 50)),
            }),
            seed: rng.next_u64(),
            ..Default::default()
        };
        let result = run_platoon(&config);
        let mut record = RunRecord::new();
        record.set_flag("collision", result.collisions > 0);
        record.set_flag("hazard", result.hazard_steps > 0);
        record.set("hazard_steps", result.hazard_steps as f64);
        record.set("min_time_gap_s", result.min_time_gap);
        record.set("throughput_vph", result.throughput_veh_per_hour);
        record
    }
}

/// The intersection-crossing use case of §VI-A2 with an optional
/// infrastructure-light failure across the middle third of the run.
struct IntersectionScenario;

impl Scenario for IntersectionScenario {
    fn name(&self) -> &str {
        "intersection"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let duration = spec.duration;
        let fallback = match spec.str_or("fallback", "vtl") {
            "vtl" => FallbackMode::VirtualTrafficLight,
            "uncoordinated" => FallbackMode::Uncoordinated,
            other => panic!("unknown intersection fallback {other:?} (expected vtl|uncoordinated)"),
        };
        let light_failure = if spec.bool_or("light_fail", true) {
            let third = duration.as_secs_f64() / 3.0;
            Some((SimTime::from_secs_f64(third), SimTime::from_secs_f64(2.0 * third)))
        } else {
            None
        };
        let config = IntersectionConfig {
            arrivals_per_minute: spec.f64_or("arrivals_per_minute", 12.0),
            duration,
            light_failure,
            fallback,
            seed: spec.seed,
        };
        let result = run_intersection(&config);
        let mut record = RunRecord::new();
        record.set("crossed", result.crossed as f64);
        record.set("conflicts", result.conflicts as f64);
        record.set_flag("conflict", result.conflicts > 0);
        record.set("mean_wait_s", result.mean_wait);
        record.set("max_wait_s", result.max_wait);
        record.set("throughput_vpm", result.throughput_per_minute);
        record.set("uncontrolled_fraction", result.uncontrolled_fraction);
        record
    }
}

/// The coordinated lane-change use case of §VI-A3.
struct LaneChangeScenario;

impl Scenario for LaneChangeScenario {
    fn name(&self) -> &str {
        "lane-change"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let coordination = match spec.str_or("coordination", "agreement") {
            "agreement" => Coordination::Agreement,
            "none" => Coordination::None,
            other => panic!("unknown lane-change coordination {other:?} (expected agreement|none)"),
        };
        let config = LaneChangeConfig {
            vehicles: spec.u64_or("vehicles", 16).max(2) as usize,
            desire_rate: spec.f64_or("desire_rate", 0.05),
            message_loss: spec.f64_or("message_loss", 0.02),
            duration: spec.duration,
            coordination,
            seed: spec.seed,
            ..Default::default()
        };
        let result = run_lane_changes(&config);
        let mut record = RunRecord::new();
        record.set("desired", result.desired as f64);
        record.set("started", result.started as f64);
        record.set("completed", result.completed as f64);
        record.set("aborted", result.aborted as f64);
        record.set("invariant_violations", result.invariant_violations as f64);
        record.set_flag("violation", result.invariant_violations > 0);
        record.set("mean_start_delay_s", result.mean_start_delay);
        record.set(
            "completion_rate",
            if result.desired > 0 { result.completed as f64 / result.desired as f64 } else { 0.0 },
        );
        record
    }
}

/// The aerial RPV separation scenarios of §VI-B.
struct AvionicsScenario;

impl Scenario for AvionicsScenario {
    fn name(&self) -> &str {
        "avionics-rpv"
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let scenario = match spec.str_or("encounter", "same-direction") {
            "same-direction" => AerialScenario::SameDirection,
            "crossing" => AerialScenario::LeveledCrossing,
            "level-change" => AerialScenario::FlightLevelChange,
            other => panic!(
                "unknown avionics encounter {other:?} (expected same-direction|crossing|level-change)"
            ),
        };
        let traffic = match spec.str_or("traffic", "collaborative") {
            "collaborative" => TrafficType::Collaborative,
            "non-collaborative" => TrafficType::NonCollaborative,
            other => panic!(
                "unknown avionics traffic {other:?} (expected collaborative|non-collaborative)"
            ),
        };
        let config = AvionicsConfig {
            scenario,
            traffic,
            resolution_enabled: spec.bool_or("resolution", true),
            duration: spec.duration,
            seed: spec.seed,
        };
        let result = run_encounter(&config);
        let mut record = RunRecord::new();
        record.set("min_horizontal_sep_m", result.min_horizontal_separation);
        record.set("min_vertical_sep_m", result.min_vertical_separation);
        record.set("violation_seconds", result.violation_seconds);
        record.set_flag("violated", result.violation_seconds > 0.0);
        record.set_flag("detected", result.detected_at.is_some());
        if let Some(at) = result.detected_at {
            record.set("detected_at_s", at);
        }
        record.set_flag("resolution_applied", result.resolution_applied);
        record
    }
}

/// Event-channel QoS under load and mid-run degradation (§V-B), driven by the
/// discrete-event [`Engine`] — this family also exercises the engine's
/// clamped-schedule accounting, which the campaign surfaces as suspect runs.
struct MiddlewareQosScenario;

#[derive(Debug, Clone, Copy)]
enum QosEvent {
    Publish,
    Degrade,
}

impl Scenario for MiddlewareQosScenario {
    fn name(&self) -> &str {
        "middleware-qos"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            // Continuous metrics with known scales: stream their campaign
            // quantiles through fixed histograms so million-run sweeps hold
            // no samples.  Flags and counts stay undeclared (exact).
            "mean_latency_ms" => Some((0.0, 250.0)),
            "delivery_ratio" | "deadline_miss_ratio" => Some((0.0, 1.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let rate_hz = spec.f64_or("rate_hz", 50.0).max(1.0);
        let degrade = spec.bool_or("degrade", false);
        let subject = Subject::from_name("platoon/lead-state");

        let mut bus = EventBus::new(spec.seed);
        bus.attach_network(NetworkId(0), NetworkCapability::local_bus());
        bus.attach_network(NetworkId(1), NetworkCapability::wireless_nominal());
        bus.subscribe(SubscriberId(1), NetworkId(1), subject, ContextFilter::accept_all());
        let admission = bus.announce(
            subject,
            NetworkId(1),
            QosRequirement {
                max_latency: SimDuration::from_millis(60),
                min_delivery_ratio: 0.9,
                max_rate: rate_hz,
            },
        );

        // Clamp audit finding: below ~1 µs the period rounds to zero and the
        // publish loop degenerates into a zero-delay self-loop at t=0 — the
        // engine never advances and `run_until` never returns.  One
        // microsecond (the simulator's time quantum) is the causality floor.
        let period = SimDuration::from_secs_f64(1.0 / rate_hz).max(SimDuration::from_micros(1));
        let end = SimTime::ZERO + spec.duration;
        let mut engine: Engine<EventBus, QosEvent> = Engine::new(bus);
        engine.schedule_at(SimTime::ZERO, QosEvent::Publish);
        if degrade {
            engine.schedule_at(
                SimTime::from_secs_f64(spec.duration.as_secs_f64() / 2.0),
                QosEvent::Degrade,
            );
        }
        engine.run_until(end, |bus, ctx, event| match event {
            QosEvent::Publish => {
                bus.publish_from(subject, None, vec![0], ctx.now());
                ctx.schedule_in(period, QosEvent::Publish);
            }
            QosEvent::Degrade => {
                bus.update_capability(NetworkId(1), NetworkCapability::wireless_degraded());
            }
        });

        let mut record = RunRecord::new();
        record.absorb_engine_clamps(&engine);
        let bus = engine.into_state();
        let stats = bus.channel_stats(subject).expect("channel was announced");
        record.set_flag("admitted", admission == karyon_middleware::Admission::Admitted);
        record.set("published", stats.published as f64);
        record.set(
            "delivery_ratio",
            if stats.published > 0 { stats.delivered as f64 / stats.published as f64 } else { 0.0 },
        );
        record.set("mean_latency_ms", stats.mean_latency_ms);
        record.set(
            "deadline_miss_ratio",
            if stats.delivered > 0 {
                stats.missed_deadline as f64 / stats.delivered as f64
            } else {
                0.0
            },
        );
        record
    }
}

/// Self-stabilizing TDMA slot allocation without an external time source
/// (paper §V-A2, the body of bench `e05`): how many frames the network needs
/// to converge to a collision-free schedule, from empty or adversarial
/// initial claims.
struct TdmaScenario;

impl TdmaScenario {
    fn build(spec: &ScenarioSpec) -> (MacSimulation<SelfStabTdmaMac>, u16) {
        let nodes = spec.u64_or("nodes", 8).max(2) as u32;
        let slots_per_frame = spec.u64_or("slots_per_frame", 16).clamp(2, 1_024) as u16;
        let adversarial = spec.bool_or("adversarial", false);
        let medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.0,
            channels: 1,
        });
        let mut sim = MacSimulation::new(
            medium,
            MacSimConfig { slot_duration: SimDuration::from_millis(1), slots_per_frame },
            spec.seed,
        );
        for i in 0..nodes {
            let mac = if adversarial {
                SelfStabTdmaMac::with_initial_claim(0)
            } else {
                SelfStabTdmaMac::new()
            };
            sim.add_node(NodeId(i), mac, Vec2::new(i as f64 * 10.0, 0.0));
        }
        (sim, slots_per_frame)
    }

    fn converged(sim: &MacSimulation<SelfStabTdmaMac>) -> bool {
        let claims: Vec<(NodeId, Option<u16>)> =
            sim.node_ids().iter().map(|id| (*id, sim.mac(*id).unwrap().claimed_slot())).collect();
        allocation_is_collision_free(&claims, |a, b| sim.medium().in_range(a, b))
    }
}

impl Scenario for TdmaScenario {
    fn name(&self) -> &str {
        "tdma"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "frames_to_converge" => Some((0.0, 1_000.0)),
            "reselections" => Some((0.0, 10_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let (mut sim, slots_per_frame) = Self::build(spec);
        // The spec duration budgets the convergence hunt: at 1 ms slots a
        // frame takes `slots_per_frame` ms of simulated time.
        let max_frames = (spec.duration.as_millis() / slots_per_frame as u64).clamp(1, 100_000);
        let mut frames = max_frames;
        let mut converged = false;
        for frame in 1..=max_frames {
            sim.run_slots(slots_per_frame as u64);
            if Self::converged(&sim) {
                frames = frame;
                converged = true;
                break;
            }
        }
        let reselections: u64 =
            sim.node_ids().iter().map(|id| sim.mac(*id).unwrap().reselections()).sum();
        // Post-convergence stability: ten more frames must stay silent.
        let before = sim.metrics().collisions;
        sim.run_slots(slots_per_frame as u64 * 10);
        let post_collisions = sim.metrics().collisions - before;

        let mut record = RunRecord::new();
        record.set_flag("converged", converged);
        record.set("frames_to_converge", frames as f64);
        record.set("reselections", reselections as f64);
        record.set("post_convergence_collisions", post_collisions as f64);
        record.set_flag("stable_after_convergence", converged && post_collisions == 0);
        record
    }
}

/// Network-inaccessibility control under jamming bursts (paper §V-A1, the
/// body of bench `e04`): a broadcast workload over a disturbed medium, run
/// either on plain CSMA (inaccessibility unbounded by design) or wrapped in
/// R2T-MAC (bounded via channel diversity and temporal redundancy).
struct InaccessibilityScenario;

impl InaccessibilityScenario {
    fn medium(seed: u64, slots: u64, burst_ms: u64) -> WirelessMedium {
        let mut medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.01,
            channels: 2,
        });
        let mut rng = Rng::seed_from(seed);
        medium.add_random_disturbances(
            Some(0),
            SimTime::from_millis(slots),
            SimDuration::from_secs(3),
            SimDuration::from_millis(burst_ms),
            &mut rng,
        );
        medium
    }

    fn traffic<M: MacProtocol>(sim: &mut MacSimulation<M>, slots: u64, nodes: u32) {
        for round in 0..(slots / 50) {
            let src = NodeId((round % nodes as u64) as u32);
            sim.send_broadcast(src, vec![round as u8]);
            sim.run_slots(50);
        }
    }
}

impl Scenario for InaccessibilityScenario {
    fn name(&self) -> &str {
        "inaccessibility"
    }

    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        match metric {
            "delivery_per_generated" => Some((0.0, 8.0)),
            "p95_delay_ms" | "max_delay_ms" => Some((0.0, 5_000.0)),
            "longest_inaccessibility_ms" => Some((0.0, 10_000.0)),
            _ => None,
        }
    }

    fn run(&self, spec: &ScenarioSpec) -> RunRecord {
        let nodes = spec.u64_or("nodes", 6).max(2) as u32;
        let burst_ms = spec.u64_or("burst_ms", 200).max(1);
        let slots = spec.duration.as_millis().max(100); // 1 ms slots
        let mac_kind = spec.str_or("mac", "r2t");

        let mut record = RunRecord::new();
        match mac_kind {
            "csma" => {
                let medium = Self::medium(spec.seed, slots, burst_ms);
                let mut sim = MacSimulation::new(medium, MacSimConfig::default(), spec.seed);
                for i in 0..nodes {
                    sim.add_node(
                        NodeId(i),
                        CsmaMac::new(CsmaConfig::default()),
                        Vec2::new(i as f64 * 10.0, 0.0),
                    );
                }
                Self::traffic(&mut sim, slots, nodes);
                // A CSMA node cannot escape its jammed channel, so its
                // inaccessibility is the raw disturbance profile.
                let mut tracker = InaccessibilityTracker::new();
                for slot in 0..slots {
                    let now = SimTime::from_millis(slot);
                    tracker.observe(sim.medium().is_disturbed(0, now), now);
                }
                tracker.finish(SimTime::from_millis(slots));
                record.set("longest_inaccessibility_ms", tracker.longest().as_secs_f64() * 1e3);
                record.set_flag("bounded", false);
                let mut delays = sim.metrics().delays_ms.clone();
                record.set("delivery_per_generated", sim.metrics().delivery_per_generated());
                record.set("p95_delay_ms", delays.p95());
                record.set("max_delay_ms", delays.max());
                record.set("collisions", sim.metrics().collisions as f64);
            }
            "r2t" => {
                let config = R2TMacConfig {
                    copies: spec.u64_or("copies", 2).clamp(1, 8) as u32,
                    heartbeat_period: 0,
                    channel_switch_threshold: 10,
                    channels: 2,
                    ..Default::default()
                };
                let medium = Self::medium(spec.seed, slots, burst_ms);
                let mut sim = MacSimulation::new(medium, MacSimConfig::default(), spec.seed);
                for i in 0..nodes {
                    sim.add_node(
                        NodeId(i),
                        R2TMac::new(CsmaMac::new(CsmaConfig::default()), config.clone()),
                        Vec2::new(i as f64 * 10.0, 0.0),
                    );
                }
                Self::traffic(&mut sim, slots, nodes);
                let mut longest = SimDuration::ZERO;
                let mut bound = SimDuration::ZERO;
                for id in sim.node_ids() {
                    let mac = sim.mac(id).unwrap();
                    longest = longest.max(mac.inaccessibility().longest());
                    bound = mac.inaccessibility_bound(SimDuration::from_millis(1));
                }
                record.set("longest_inaccessibility_ms", longest.as_secs_f64() * 1e3);
                record.set("inaccessibility_bound_ms", bound.as_secs_f64() * 1e3);
                record.set_flag("bounded", longest <= bound);
                let mut delays = sim.metrics().delays_ms.clone();
                record.set("delivery_per_generated", sim.metrics().delivery_per_generated());
                record.set("p95_delay_ms", delays.p95());
                record.set("max_delay_ms", delays.max());
                record.set("collisions", sim.metrics().collisions as f64);
            }
            other => panic!("unknown inaccessibility mac {other:?} (expected csma|r2t)"),
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_contains_all_families() {
        let registry = builtin_registry();
        assert_eq!(
            registry.names(),
            vec![
                "avionics-rpv",
                "inaccessibility",
                "intersection",
                "lane-change",
                "middleware-qos",
                "platoon",
                "platoon-fault",
                "tdma"
            ]
        );
        assert!(!registry.is_empty());
        assert_eq!(registry.len(), 8);
    }

    #[test]
    fn every_builtin_family_runs_and_is_deterministic() {
        let registry = builtin_registry();
        for name in registry.names() {
            let spec = ScenarioSpec::new(&name).with_seed(11).with_duration_secs(20);
            let scenario = registry.get(&name).unwrap();
            let a = scenario.run(&spec);
            let b = scenario.run(&spec);
            assert_eq!(a, b, "family {name} must be deterministic for a fixed spec");
            assert!(!a.metrics().is_empty(), "family {name} must report metrics");
        }
    }

    #[test]
    fn metric_ranges_are_pure_and_cover_reported_metrics_only() {
        // The bounded-memory merge relies on range declarations being pure
        // functions of the metric name; flags must stay undeclared so small
        // sweeps keep exact 0/1 quantiles.
        let registry = builtin_registry();
        for name in registry.names() {
            let scenario = registry.get(&name).unwrap();
            let record =
                scenario.run(&ScenarioSpec::new(&name).with_seed(3).with_duration_secs(10));
            for metric in record.metrics().keys() {
                assert_eq!(
                    scenario.metric_range(metric),
                    scenario.metric_range(metric),
                    "family {name} metric {metric}: declaration must be pure"
                );
                if let Some((lo, hi)) = scenario.metric_range(metric) {
                    assert!(
                        lo.is_finite() && hi.is_finite() && lo < hi,
                        "family {name} metric {metric}: invalid range ({lo}, {hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn tdma_converges_and_stays_collision_free() {
        let registry = builtin_registry();
        let tdma = registry.get("tdma").unwrap();
        let calm = tdma
            .run(&ScenarioSpec::new("tdma").with("nodes", 8).with_seed(5).with_duration_secs(20));
        assert_eq!(calm.get("converged"), Some(1.0));
        assert_eq!(calm.get("post_convergence_collisions"), Some(0.0));
        let adversarial = tdma.run(
            &ScenarioSpec::new("tdma")
                .with("nodes", 8)
                .with("adversarial", true)
                .with_seed(5)
                .with_duration_secs(20),
        );
        assert_eq!(adversarial.get("converged"), Some(1.0));
        assert!(
            adversarial.get("reselections").unwrap() >= calm.get("reselections").unwrap(),
            "the all-claim-slot-0 start cannot need fewer reselections"
        );
    }

    #[test]
    fn r2t_bounds_inaccessibility_where_csma_does_not() {
        let registry = builtin_registry();
        let family = registry.get("inaccessibility").unwrap();
        let base = ScenarioSpec::new("inaccessibility")
            .with("burst_ms", 800)
            .with_seed(9)
            .with_duration_secs(20);
        let csma = family.run(&base.clone().with("mac", "csma"));
        let r2t = family.run(&base.with("mac", "r2t"));
        assert_eq!(csma.get("bounded"), Some(0.0), "CSMA inaccessibility is unbounded by design");
        assert_eq!(r2t.get("bounded"), Some(1.0), "R2T-MAC must respect its bound: {r2t:?}");
        assert!(
            r2t.get("longest_inaccessibility_ms").unwrap()
                < csma.get("longest_inaccessibility_ms").unwrap(),
            "channel diversity must shorten inaccessibility: {r2t:?} vs {csma:?}"
        );
        assert!(r2t.get("delivery_per_generated").unwrap() > 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown inaccessibility mac")]
    fn invalid_inaccessibility_mac_panics_with_guidance() {
        let registry = builtin_registry();
        let _ = registry
            .get("inaccessibility")
            .unwrap()
            .run(&ScenarioSpec::new("inaccessibility").with("mac", "aloha").with_duration_secs(5));
    }

    /// Clamp audit regression: the publish loop must terminate and stay
    /// causality-clean even for rates whose period rounds below the 1 µs
    /// time quantum (the zero-delay self-loop found by the audit).
    #[test]
    fn middleware_qos_survives_extreme_rates_without_clamps() {
        let registry = builtin_registry();
        let qos = registry.get("middleware-qos").unwrap();
        for rate in [1.0, 997.0, 2.5e6, 1.0e9] {
            let record = qos.run(
                &ScenarioSpec::new("middleware-qos")
                    .with("rate_hz", rate)
                    .with_seed(8)
                    .with_duration(SimDuration::from_millis(10)),
            );
            assert_eq!(
                record.clamped_schedules, 0,
                "rate {rate} Hz: the publish loop must never schedule into the past"
            );
            assert!(record.get("published").unwrap() >= 1.0);
        }
    }

    #[test]
    fn platoon_modes_map_to_control_strategies() {
        let registry = builtin_registry();
        let platoon = registry.get("platoon").unwrap();
        let coop = platoon.run(
            &ScenarioSpec::new("platoon").with("mode", "los2").with_seed(3).with_duration_secs(60),
        );
        let cons = platoon.run(
            &ScenarioSpec::new("platoon").with("mode", "los0").with_seed(3).with_duration_secs(60),
        );
        assert_eq!(coop.get("los2_fraction"), Some(1.0));
        assert_eq!(cons.get("los2_fraction"), Some(0.0));
        assert!(
            cons.get("mean_time_gap_s") > coop.get("mean_time_gap_s"),
            "conservative mode keeps larger margins"
        );
    }

    #[test]
    fn middleware_qos_reports_channel_quality() {
        let registry = builtin_registry();
        let qos = registry.get("middleware-qos").unwrap();
        let record =
            qos.run(&ScenarioSpec::new("middleware-qos").with_seed(5).with_duration_secs(20));
        assert_eq!(record.get("admitted"), Some(1.0));
        assert!(record.get("delivery_ratio").unwrap() > 0.8);
        assert!(record.get("published").unwrap() > 900.0, "50 Hz × 20 s ≈ 1000 events");
        assert_eq!(record.clamped_schedules, 0, "the publish loop never schedules into the past");
    }

    #[test]
    #[should_panic(expected = "unknown platoon mode")]
    fn invalid_mode_panics_with_guidance() {
        let registry = builtin_registry();
        let _ = registry
            .get("platoon")
            .unwrap()
            .run(&ScenarioSpec::new("platoon").with("mode", "warp"));
    }
}

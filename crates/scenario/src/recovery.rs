//! Bounded retry with backoff for the runner's I/O edges.
//!
//! Sink flushes and checkpoint-manifest writes are the two places a healthy
//! campaign touches the filesystem mid-flight; both can fail transiently
//! (disk pressure, NFS hiccups, an injected [`crate::fault::Fault`]).  A
//! [`RetryPolicy`] turns those transients into graceful degradation: a
//! bounded number of re-attempts with exponential backoff, after which the
//! original error propagates unchanged.
//!
//! The pause itself is pluggable via [`Backoff`]: production uses
//! [`WallClockBackoff`] (a real `thread::sleep`), while simulated/virtual-time
//! harnesses use [`RecordedBackoff`], which only records what *would* have
//! been slept — tests stay fast and deterministic.

use std::time::Duration;

/// How to spend the pause between retry attempts.
pub trait Backoff {
    /// Called after failed attempt number `attempt` (1-based) with the delay
    /// the policy prescribes before the next attempt.
    fn pause(&mut self, attempt: u32, delay: Duration);
}

/// Production backoff: actually sleeps on the wall clock.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClockBackoff;

impl Backoff for WallClockBackoff {
    fn pause(&mut self, _attempt: u32, delay: Duration) {
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

/// Virtual-time backoff: records the prescribed pauses without sleeping.
#[derive(Debug, Default, Clone)]
pub struct RecordedBackoff {
    /// The delays the policy prescribed, in order.
    pub pauses: Vec<Duration>,
}

impl Backoff for RecordedBackoff {
    fn pause(&mut self, _attempt: u32, delay: Duration) {
        self.pauses.push(delay);
    }
}

/// A bounded exponential-backoff retry policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay: Duration,
    multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::default_io()
    }
}

impl RetryPolicy {
    /// Builds a policy: at most `max_attempts` total attempts (clamped to at
    /// least 1), pausing `base_delay` after the first failure and multiplying
    /// the pause by `multiplier` (clamped to at least 1.0) after each further
    /// failure.
    pub fn new(max_attempts: u32, base_delay: Duration, multiplier: f64) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_delay,
            multiplier: if multiplier >= 1.0 { multiplier } else { 1.0 },
        }
    }

    /// A policy that never retries (one attempt, no pause).
    pub fn no_retry() -> Self {
        RetryPolicy::new(1, Duration::ZERO, 1.0)
    }

    /// The default for runner I/O edges: 4 attempts, 2 ms first pause,
    /// quadrupling — at most ~42 ms of wall-clock pause per edge.
    pub fn default_io() -> Self {
        RetryPolicy::new(4, Duration::from_millis(2), 4.0)
    }

    /// Maximum total attempts (including the first).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Runs `op` until it succeeds or the attempt budget is exhausted.
    ///
    /// `op` receives the 1-based attempt number.  On success the result
    /// reports how many attempts were needed; on exhaustion the *last* error
    /// propagates unchanged.
    pub fn run<T, E>(
        &self,
        backoff: &mut dyn Backoff,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<Recovered<T>, E> {
        let mut delay = self.base_delay;
        let mut attempt = 1u32;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(Recovered { value, attempts: attempt }),
                Err(e) if attempt >= self.max_attempts => return Err(e),
                Err(_) => {
                    backoff.pause(attempt, delay);
                    delay = delay.mul_f64(self.multiplier);
                    attempt += 1;
                }
            }
        }
    }
}

/// A successful [`RetryPolicy::run`] outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovered<T> {
    /// What `op` finally returned.
    pub value: T,
    /// Total attempts taken (1 = no retry was needed).
    pub attempts: u32,
}

impl<T> Recovered<T> {
    /// Extra attempts beyond the first.
    pub fn retried(&self) -> u32 {
        self.attempts - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_never_pauses() {
        let mut backoff = RecordedBackoff::default();
        let out = RetryPolicy::default_io().run(&mut backoff, |_| Ok::<_, String>(42)).unwrap();
        assert_eq!(out.value, 42);
        assert_eq!(out.retried(), 0);
        assert!(backoff.pauses.is_empty());
    }

    #[test]
    fn transient_failures_heal_with_exponential_pauses() {
        let mut backoff = RecordedBackoff::default();
        let mut failures_left = 2;
        let out = RetryPolicy::new(4, Duration::from_millis(2), 4.0)
            .run(&mut backoff, |attempt| {
                if failures_left > 0 {
                    failures_left -= 1;
                    Err(format!("transient on attempt {attempt}"))
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(out.value, 3);
        assert_eq!(out.retried(), 2);
        assert_eq!(backoff.pauses, vec![Duration::from_millis(2), Duration::from_millis(8)]);
    }

    #[test]
    fn exhaustion_returns_the_last_error_unchanged() {
        let mut backoff = RecordedBackoff::default();
        let err = RetryPolicy::new(3, Duration::from_millis(1), 2.0)
            .run::<(), _>(&mut backoff, |attempt| Err(format!("boom {attempt}")))
            .unwrap_err();
        assert_eq!(err, "boom 3");
        assert_eq!(backoff.pauses.len(), 2, "no pause after the final failure");
    }

    #[test]
    fn no_retry_means_exactly_one_attempt() {
        let mut backoff = RecordedBackoff::default();
        let mut calls = 0;
        let _ = RetryPolicy::no_retry().run::<(), _>(&mut backoff, |_| {
            calls += 1;
            Err("nope")
        });
        assert_eq!(calls, 1);
        assert!(backoff.pauses.is_empty());
    }
}

//! Canonical chunked aggregation: the bounded-memory reduction behind
//! [`Campaign::run`](crate::Campaign::run).
//!
//! Floating-point reduction is order-sensitive, so the campaign runner cannot
//! simply merge per-worker partial aggregates in completion order without
//! breaking its bit-identity-across-worker-counts contract.  Instead, the run
//! list is partitioned into **canonical chunks** of a fixed size: each chunk
//! is reduced *sequentially in canonical run order* into per-point
//! [`MetricAccumulator`] partials (a [`ChunkPartial`]), and partials are
//! merged into the campaign totals *in canonical chunk order*.  The resulting
//! sequence of floating-point operations depends only on the run values and
//! the chunk size — never on which worker ran what — so any worker count
//! (and the retained-record replay of
//! [`Campaign::reduce_records`](crate::Campaign::reduce_records)) produces
//! bit-identical reports, while the runner only ever holds the chunks
//! currently in flight.
//!
//! Quantiles are streamed through one of two states:
//!
//! * **pre-agreed range** — a scenario family that declares a metric's range
//!   up front ([`Scenario::metric_range`](crate::Scenario::metric_range))
//!   gets a fixed-bucket [`BucketHistogram`] from the first sample: O(1)
//!   memory, exactly mergeable across chunks;
//! * **exact-until-spill** — without a declared range, up to
//!   [`QUANTILE_EXACT_LIMIT`] samples are retained for exact nearest-rank
//!   quantiles (so small sweeps report only values that actually occurred);
//!   past the limit the retained prefix fixes a derived histogram range at a
//!   canonical moment, keeping memory bounded for arbitrarily long sweeps.

use std::collections::BTreeMap;

use karyon_sim::{BucketHistogram, OnlineStats};

use crate::report::{MetricSummary, QUANTILE_EXACT_LIMIT};
use crate::scenario::RunRecord;

/// Default number of runs per canonical chunk.
///
/// Part of the aggregation contract: reports are bit-identical across worker
/// counts *for a fixed chunk size* (different chunk sizes regroup the
/// floating-point reduction and may differ in the last ulp).
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// Number of histogram buckets used for streamed quantiles.
const QUANTILE_BUCKETS: usize = 64;

/// Streaming quantile state of one (parameter point, metric) pair.
///
/// `pub(crate)` so the [checkpoint module](crate::checkpoint) can persist and
/// restore it bit-exactly; everything outside the crate only ever sees the
/// finalised [`MetricSummary`].
#[derive(Debug, Clone)]
pub(crate) enum QuantileAcc {
    /// All finite samples so far, in canonical record order.
    Exact(Vec<f64>),
    /// Fixed-bucket histogram (pre-agreed or derived range).
    Bucketed(BucketHistogram),
}

/// Derives a histogram range from the retained sample prefix when the exact
/// buffer spills: the observed span padded by half on each side, so samples
/// of the not-yet-seen tail usually still land inside.  Outliers beyond the
/// range are still counted exactly (under/overflow buckets with exact
/// min/max representatives).
fn derived_range(values: &[f64]) -> (f64, f64) {
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = hi - lo;
    let pad = if span > 0.0 { span / 2.0 } else { lo.abs().max(1.0) / 2.0 };
    (lo - pad, hi + pad)
}

/// The streaming aggregate of one metric at one parameter point: mean /
/// variance / extremes via [`OnlineStats`], the exact canonical-order sum,
/// and a bounded-memory quantile state.
#[derive(Debug, Clone)]
pub struct MetricAccumulator {
    stats: OnlineStats,
    sum: f64,
    quantiles: QuantileAcc,
}

impl MetricAccumulator {
    /// Creates an empty accumulator; with a pre-agreed `(lo, hi)` range the
    /// quantile state is a fixed histogram from the first sample.
    pub fn new(range: Option<(f64, f64)>) -> Self {
        MetricAccumulator {
            stats: OnlineStats::new(),
            sum: 0.0,
            quantiles: match range {
                Some((lo, hi)) => {
                    QuantileAcc::Bucketed(BucketHistogram::new(lo, hi, QUANTILE_BUCKETS))
                }
                None => QuantileAcc::Exact(Vec::new()),
            },
        }
    }

    /// Adds one observation in canonical order.  Non-finite values are
    /// skipped, matching [`MetricSummary::from_values`].
    ///
    /// Recording never spills the exact buffer: a chunk-local spill would
    /// derive a histogram range from *that chunk's* samples alone, and two
    /// chunks would derive different — unmergeable — ranges.  The buffer is
    /// bounded by the chunk size here; the spill decision belongs to
    /// [`MetricAccumulator::merge`], where the retained samples are a
    /// canonical prefix shared by every execution.
    pub fn record(&mut self, value: f64) {
        self.stats.record(value);
        if !value.is_finite() {
            return;
        }
        self.sum += value;
        match &mut self.quantiles {
            QuantileAcc::Exact(values) => values.push(value),
            QuantileAcc::Bucketed(hist) => hist.record(value),
        }
    }

    /// Converts the exact buffer into a derived-range histogram.  Only
    /// called during canonical-order merging, so the range depends only on
    /// the canonical sample prefix and the conversion happens at the same
    /// moment — with the same result — for every worker count.
    fn spill(&mut self) {
        let QuantileAcc::Exact(values) = &self.quantiles else {
            unreachable!("spill is only called on the exact state")
        };
        let (lo, hi) = derived_range(values);
        let mut hist = BucketHistogram::new(lo, hi, QUANTILE_BUCKETS);
        for v in values {
            hist.record(*v);
        }
        self.quantiles = QuantileAcc::Bucketed(hist);
    }

    /// Merges the accumulator of a *later* canonical chunk into this one.
    ///
    /// # Panics
    /// Panics if one side carries a pre-agreed histogram range and the other
    /// does not — a scenario family must declare a metric's range
    /// consistently.
    pub fn merge(&mut self, other: MetricAccumulator) {
        self.stats.merge(&other.stats);
        self.sum += other.sum;
        match (&mut self.quantiles, other.quantiles) {
            (QuantileAcc::Exact(values), QuantileAcc::Exact(more)) => {
                values.extend(more);
                if values.len() as u64 > QUANTILE_EXACT_LIMIT {
                    self.spill();
                }
            }
            (QuantileAcc::Bucketed(hist), QuantileAcc::Exact(more)) => {
                // This side spilled (or was pre-agreed and the other side is
                // from `MetricAccumulator::new(None)` — rejected below);
                // replay the later chunk's samples in canonical order.
                for v in more {
                    hist.record(v);
                }
            }
            (QuantileAcc::Bucketed(hist), QuantileAcc::Bucketed(more)) => hist.merge(&more),
            (QuantileAcc::Exact(_), QuantileAcc::Bucketed(_)) => {
                panic!(
                    "inconsistent metric range declaration: a later chunk pre-agreed a \
                     histogram range this chunk did not"
                )
            }
        }
    }

    /// Finalises the accumulator into a [`MetricSummary`].
    pub fn summary(&self) -> MetricSummary {
        let stats = &self.stats;
        let (p50, p95, p99) = if stats.count() == 0 || stats.min() == stats.max() {
            // Degenerate spread: every quantile is the (single) value.
            (stats.mean(), stats.mean(), stats.mean())
        } else {
            match &self.quantiles {
                QuantileAcc::Exact(values) => {
                    let mut sorted = values.clone();
                    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    let rank = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
                    (rank(0.5), rank(0.95), rank(0.99))
                }
                QuantileAcc::Bucketed(hist) => (hist.p50(), hist.p95(), hist.p99()),
            }
        };
        MetricSummary {
            count: stats.count(),
            sum: self.sum,
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min(),
            max: stats.max(),
            p50,
            p95,
            p99,
        }
    }

    /// The raw internal state, for bit-exact checkpoint persistence.
    pub(crate) fn parts(&self) -> (&OnlineStats, f64, &QuantileAcc) {
        (&self.stats, self.sum, &self.quantiles)
    }

    /// Reconstructs an accumulator from persisted [`MetricAccumulator::parts`]
    /// output.  The round-trip is bit-exact: recording or merging into the
    /// reconstruction produces the same bits as into the original.
    pub(crate) fn from_parts(stats: OnlineStats, sum: f64, quantiles: QuantileAcc) -> Self {
        MetricAccumulator { stats, sum, quantiles }
    }

    /// Number of retained exact samples (0 once bucketed) — the quantity the
    /// bounded-memory contract is about.
    pub fn resident_samples(&self) -> usize {
        match &self.quantiles {
            QuantileAcc::Exact(values) => values.len(),
            QuantileAcc::Bucketed(_) => 0,
        }
    }
}

/// The streaming aggregate of one parameter point.
#[derive(Debug, Clone, Default)]
pub struct PointAccumulator {
    /// Runs aggregated so far.
    pub runs: u64,
    /// Runs flagged causality-suspect (past-time schedule clamps).
    pub suspect_runs: u64,
    /// Per-metric accumulators in deterministic name order.
    pub metrics: BTreeMap<String, MetricAccumulator>,
}

impl PointAccumulator {
    /// Streams one run's record into the point, in canonical run order.
    /// `range_for` supplies the family's pre-agreed metric ranges.
    pub fn record_run(
        &mut self,
        record: &RunRecord,
        range_for: &dyn Fn(&str) -> Option<(f64, f64)>,
    ) {
        self.runs += 1;
        if record.clamped_schedules > 0 {
            self.suspect_runs += 1;
        }
        for (name, value) in record.metrics() {
            self.metrics
                .entry(name.clone())
                .or_insert_with(|| MetricAccumulator::new(range_for(name)))
                .record(*value);
        }
    }

    /// Merges the accumulator of a *later* canonical chunk into this one.
    pub fn merge(&mut self, other: PointAccumulator) {
        self.runs += other.runs;
        self.suspect_runs += other.suspect_runs;
        for (name, acc) in other.metrics {
            match self.metrics.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut slot) => slot.get_mut().merge(acc),
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(acc);
                }
            }
        }
    }

    /// Finalised per-metric summaries in deterministic name order.
    pub fn summaries(&self) -> BTreeMap<String, MetricSummary> {
        self.metrics.iter().map(|(name, acc)| (name.clone(), acc.summary())).collect()
    }
}

/// One worker's reduction of one canonical chunk: per-point partials for the
/// points the chunk touched.
///
/// `Clone` exists for the shard protocol ([`crate::shard`]): a shard session
/// persists every chunk partial it merges, so a later `merge` can replay the
/// exact canonical chunk-order fold of a single-machine run.
#[derive(Debug, Default, Clone)]
pub struct ChunkPartial {
    /// Point index → partial aggregate.
    pub points: BTreeMap<usize, PointAccumulator>,
}

impl ChunkPartial {
    /// Creates an empty partial.
    pub fn new() -> Self {
        ChunkPartial::default()
    }

    /// Streams one run (of point `point`) into the partial, in canonical run
    /// order within the chunk.
    pub fn record_run(
        &mut self,
        point: usize,
        record: &RunRecord,
        range_for: &dyn Fn(&str) -> Option<(f64, f64)>,
    ) {
        self.points.entry(point).or_default().record_run(record, range_for);
    }
}

/// The campaign-wide accumulator: one [`PointAccumulator`] per parameter
/// point, fed by chunk partials strictly in canonical chunk order.
#[derive(Debug)]
pub struct CampaignAccumulator {
    points: Vec<PointAccumulator>,
}

impl CampaignAccumulator {
    /// Creates an accumulator for `point_count` parameter points.
    pub fn new(point_count: usize) -> Self {
        CampaignAccumulator {
            points: (0..point_count).map(|_| PointAccumulator::default()).collect(),
        }
    }

    /// Reconstructs an accumulator from per-point partials restored from a
    /// checkpoint manifest (one entry per parameter point, in point order).
    pub(crate) fn from_points(points: Vec<PointAccumulator>) -> Self {
        CampaignAccumulator { points }
    }

    /// Merges the next canonical chunk's partials.  Chunks **must** arrive in
    /// canonical order; the campaign runner's ordered collector guarantees
    /// this.
    pub fn merge_chunk(&mut self, chunk: ChunkPartial) {
        for (point, partial) in chunk.points {
            self.points[point].merge(partial);
        }
    }

    /// The per-point accumulators, in point order.
    pub fn points(&self) -> &[PointAccumulator] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_range(_: &str) -> Option<(f64, f64)> {
        None
    }

    /// Values for a synthetic metric stream.
    fn value(i: u64) -> f64 {
        ((i as f64) * 0.73).sin() * 40.0 + 50.0
    }

    #[test]
    fn chunked_merge_is_chunk_size_deterministic() {
        // The same values through the same chunk size must be bit-identical
        // no matter how the chunks were produced.
        let n = 10_000u64;
        let chunk = 512;
        let reduce = || {
            let mut total = MetricAccumulator::new(None);
            let mut i = 0;
            while i < n {
                let mut partial = MetricAccumulator::new(None);
                for j in i..(i + chunk).min(n) {
                    partial.record(value(j));
                }
                total.merge(partial);
                i += chunk;
            }
            total.summary()
        };
        assert_eq!(reduce(), reduce());
    }

    #[test]
    fn exact_path_matches_from_values_semantics() {
        let values: Vec<f64> = (0..100).map(|i| i as f64 + 1.0).collect();
        let mut acc = MetricAccumulator::new(None);
        for v in &values {
            acc.record(*v);
        }
        let s = acc.summary();
        let reference = MetricSummary::from_values(&values);
        // One sequential pass is exactly the old retained reduction.
        assert_eq!(s, reference);
        assert_eq!(s.p50, 51.0);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn merge_spills_once_the_canonical_prefix_exceeds_the_exact_limit() {
        let n = (QUANTILE_EXACT_LIMIT + 5_000) as usize;
        let chunk = 1_000;
        let mut total = MetricAccumulator::new(None);
        let mut start = 0;
        while start < n {
            let mut partial = MetricAccumulator::new(None);
            for i in start..(start + chunk).min(n) {
                partial.record(i as f64);
            }
            assert!(partial.resident_samples() <= chunk, "chunk partials never spill on their own");
            if start == 0 {
                total = partial;
            } else {
                total.merge(partial);
            }
            start += chunk;
        }
        assert_eq!(total.resident_samples(), 0, "the merged prefix must spill");
        let s = total.summary();
        assert_eq!(s.count, n as u64);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, (n - 1) as f64);
        // The derived range spans at least the retained prefix; quantile
        // resolution is one bucket of that span.
        let exact_p50 = ((n - 1) as f64) * 0.5;
        assert!((s.p50 - exact_p50).abs() < n as f64 * 0.05, "p50 {} vs {exact_p50}", s.p50);
    }

    #[test]
    fn oversized_chunks_merge_without_range_conflicts() {
        // Regression: chunk sizes above the exact limit must not make two
        // chunks derive different histogram ranges (which would panic in
        // BucketHistogram::merge).  The spill decision happens only at
        // canonical merge time.
        let per_chunk = (QUANTILE_EXACT_LIMIT + 100) as usize;
        let mut a = MetricAccumulator::new(None);
        let mut b = MetricAccumulator::new(None);
        for i in 0..per_chunk {
            a.record(i as f64);
            b.record((i * 7) as f64);
        }
        a.merge(b);
        let s = a.summary();
        assert_eq!(s.count, 2 * per_chunk as u64);
        assert_eq!(s.max, ((per_chunk - 1) * 7) as f64);
    }

    #[test]
    fn pre_agreed_range_streams_without_retention() {
        let mut a = MetricAccumulator::new(Some((0.0, 100.0)));
        let mut b = MetricAccumulator::new(Some((0.0, 100.0)));
        let mut whole = MetricAccumulator::new(Some((0.0, 100.0)));
        for i in 0..2_000u64 {
            let v = value(i).clamp(0.0, 100.0);
            whole.record(v);
            if i < 1_000 {
                a.record(v)
            } else {
                b.record(v)
            }
        }
        assert_eq!(a.resident_samples(), 0);
        a.merge(b);
        assert_eq!(a.summary().p95, whole.summary().p95);
        assert_eq!(a.summary().count, 2_000);
    }

    #[test]
    fn non_finite_values_are_skipped_everywhere() {
        let mut acc = MetricAccumulator::new(None);
        acc.record(f64::NAN);
        acc.record(f64::INFINITY);
        acc.record(2.0);
        let s = acc.summary();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2.0);
        assert_eq!(s.p99, 2.0);
    }

    #[test]
    fn point_accumulator_tracks_suspect_runs_and_metric_subsets() {
        let mut point = PointAccumulator::default();
        let mut a = RunRecord::new();
        a.set("x", 1.0);
        a.set("only_sometimes", 5.0);
        let mut b = RunRecord::new();
        b.set("x", 3.0);
        b.clamped_schedules = 2;
        point.record_run(&a, &no_range);
        point.record_run(&b, &no_range);
        assert_eq!(point.runs, 2);
        assert_eq!(point.suspect_runs, 1);
        let summaries = point.summaries();
        assert_eq!(summaries["x"].count, 2);
        assert_eq!(summaries["only_sometimes"].count, 1);
    }

    #[test]
    #[should_panic(expected = "inconsistent metric range")]
    fn mismatched_range_declarations_are_rejected() {
        let mut exact = MetricAccumulator::new(None);
        exact.record(1.0);
        let mut ranged = MetricAccumulator::new(Some((0.0, 1.0)));
        ranged.record(0.5);
        exact.merge(ranged);
    }
}

//! Cartesian parameter grids.

use std::collections::BTreeMap;

use crate::spec::ParamValue;

/// A cartesian parameter grid: an ordered list of axes, each a parameter name
/// with the values it sweeps over.
///
/// [`ParamGrid::expand`] produces the full cross product as parameter maps,
/// in a deterministic order (the first axis varies slowest).  An empty grid
/// expands to one empty point, so "no parameters, just N seeds" campaigns
/// need no special casing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<ParamValue>)>,
}

impl ParamGrid {
    /// Creates an empty grid (one parameter point with no parameters).
    pub fn new() -> Self {
        ParamGrid::default()
    }

    /// Adds an axis sweeping `name` over `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty (the cross product would be empty, which
    /// is never what a campaign means) or if the axis name repeats.
    pub fn axis<V: Into<ParamValue>>(
        self,
        name: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        self.axis_values(name, values.into_iter().map(Into::into).collect())
    }

    /// Number of axes.
    pub fn axis_count(&self) -> usize {
        self.axes.len()
    }

    /// Number of parameter points the grid expands to (1 for an empty grid).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// True when the grid has no axes (it still expands to one empty point).
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Builds a grid from a parsed JSON object: each member is one axis
    /// (`{"vehicles": [4, 8], "mode": ["kernel", "none"]}`), in **source
    /// order** — the first member of the file is the slowest-varying axis,
    /// so the spec file pins the canonical run order exactly as written.
    ///
    /// A scalar member is shorthand for a single-value axis.
    pub fn from_json(value: &crate::json::JsonValue) -> Result<ParamGrid, String> {
        use crate::json::JsonValue;
        let members = value
            .as_object()
            .ok_or_else(|| format!("a grid must be a JSON object, not {}", value.type_name()))?;
        let mut grid = ParamGrid::new();
        for (name, axis) in members {
            let values: Vec<ParamValue> = match axis {
                JsonValue::Array(items) => {
                    if items.is_empty() {
                        return Err(format!("grid axis {name:?} must sweep at least one value"));
                    }
                    items
                        .iter()
                        .map(ParamValue::from_json)
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("grid axis {name:?}: {e}"))?
                }
                scalar => vec![ParamValue::from_json(scalar)
                    .map_err(|e| format!("grid axis {name:?}: {e}"))?],
            };
            // The builder panics on duplicates, but a JSON object cannot
            // carry them (the parser rejects duplicate keys), so `axis` is
            // safe to call here.
            grid = grid.axis_values(name, values);
        }
        Ok(grid)
    }

    /// Adds an axis from already-converted values (the non-generic core of
    /// [`ParamGrid::axis`]).
    ///
    /// # Panics
    /// Panics under the same conditions as [`ParamGrid::axis`].
    pub fn axis_values(mut self, name: &str, values: Vec<ParamValue>) -> Self {
        assert!(!values.is_empty(), "grid axis {name:?} must sweep at least one value");
        assert!(self.axes.iter().all(|(n, _)| n != name), "grid axis {name:?} declared twice");
        self.axes.push((name.to_string(), values));
        self
    }

    /// The axes in declaration order: `(name, values)` pairs.
    pub fn axes(&self) -> &[(String, Vec<ParamValue>)] {
        &self.axes
    }

    /// Expands the cross product into parameter maps, first axis slowest.
    pub fn expand(&self) -> Vec<BTreeMap<String, ParamValue>> {
        let mut points: Vec<BTreeMap<String, ParamValue>> = vec![BTreeMap::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for point in &points {
                for value in values {
                    let mut p = point.clone();
                    p.insert(name.clone(), value.clone());
                    next.push(p);
                }
            }
            points = next;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_one_empty_point() {
        let grid = ParamGrid::new();
        assert_eq!(grid.len(), 1);
        let points = grid.expand();
        assert_eq!(points.len(), 1);
        assert!(points[0].is_empty());
    }

    #[test]
    fn expansion_is_full_cross_product_first_axis_slowest() {
        let grid = ParamGrid::new().axis("a", [1, 2]).axis("b", ["x", "y", "z"]);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid.axis_count(), 2);
        let points = grid.expand();
        assert_eq!(points.len(), 6);
        // First axis varies slowest: a=1 for the first three points.
        assert_eq!(points[0]["a"], ParamValue::Int(1));
        assert_eq!(points[0]["b"], ParamValue::Text("x".into()));
        assert_eq!(points[2]["a"], ParamValue::Int(1));
        assert_eq!(points[2]["b"], ParamValue::Text("z".into()));
        assert_eq!(points[3]["a"], ParamValue::Int(2));
        assert_eq!(points[3]["b"], ParamValue::Text("x".into()));
        // Every point carries every axis.
        assert!(points.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn mixed_value_types_on_one_axis_via_paramvalue() {
        let grid = ParamGrid::new().axis("loss", [0.02, 0.2]).axis("fault", [true, false]);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid.expand()[0]["loss"], ParamValue::Float(0.02));
    }

    #[test]
    fn from_json_preserves_axis_order_and_types() {
        let doc = crate::json::JsonValue::parse(
            r#"{"zeta": [4, 8], "mode": ["kernel", "none"], "rate": [0.5], "flag": true}"#,
        )
        .unwrap();
        let grid = ParamGrid::from_json(&doc).unwrap();
        assert_eq!(grid.axis_count(), 4);
        assert_eq!(grid.len(), 4);
        let axes = grid.axes();
        assert_eq!(axes[0].0, "zeta", "first file member is the slowest axis");
        assert_eq!(axes[0].1, vec![ParamValue::Int(4), ParamValue::Int(8)]);
        assert_eq!(axes[1].1[0], ParamValue::Text("kernel".into()));
        assert_eq!(axes[2].1, vec![ParamValue::Float(0.5)]);
        assert_eq!(axes[3].1, vec![ParamValue::Bool(true)], "scalar = single-value axis");
        // 4 varies slowest.
        assert_eq!(grid.expand()[0]["zeta"], ParamValue::Int(4));
        assert_eq!(grid.expand()[2]["zeta"], ParamValue::Int(8));
    }

    #[test]
    fn from_json_rejects_bad_axes() {
        for (doc, needle) in [
            (r#"[1, 2]"#, "must be a JSON object"),
            (r#"{"a": []}"#, "at least one value"),
            (r#"{"a": [null]}"#, "number, string or boolean"),
            (r#"{"a": {"nested": 1}}"#, "number, string or boolean"),
        ] {
            let parsed = crate::json::JsonValue::parse(doc).unwrap();
            let err = ParamGrid::from_json(&parsed).unwrap_err();
            assert!(err.contains(needle), "{doc}: {err}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_is_rejected() {
        let _ = ParamGrid::new().axis::<i64>("a", Vec::<i64>::new());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_axis_is_rejected() {
        let _ = ParamGrid::new().axis("a", [1]).axis("a", [2]);
    }
}

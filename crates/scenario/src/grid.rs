//! Cartesian parameter grids.

use std::collections::BTreeMap;

use crate::spec::ParamValue;

/// A cartesian parameter grid: an ordered list of axes, each a parameter name
/// with the values it sweeps over.
///
/// [`ParamGrid::expand`] produces the full cross product as parameter maps,
/// in a deterministic order (the first axis varies slowest).  An empty grid
/// expands to one empty point, so "no parameters, just N seeds" campaigns
/// need no special casing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamGrid {
    axes: Vec<(String, Vec<ParamValue>)>,
}

impl ParamGrid {
    /// Creates an empty grid (one parameter point with no parameters).
    pub fn new() -> Self {
        ParamGrid::default()
    }

    /// Adds an axis sweeping `name` over `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty (the cross product would be empty, which
    /// is never what a campaign means) or if the axis name repeats.
    pub fn axis<V: Into<ParamValue>>(
        mut self,
        name: &str,
        values: impl IntoIterator<Item = V>,
    ) -> Self {
        let values: Vec<ParamValue> = values.into_iter().map(Into::into).collect();
        assert!(!values.is_empty(), "grid axis {name:?} must sweep at least one value");
        assert!(self.axes.iter().all(|(n, _)| n != name), "grid axis {name:?} declared twice");
        self.axes.push((name.to_string(), values));
        self
    }

    /// Number of axes.
    pub fn axis_count(&self) -> usize {
        self.axes.len()
    }

    /// Number of parameter points the grid expands to (1 for an empty grid).
    pub fn len(&self) -> usize {
        self.axes.iter().map(|(_, v)| v.len()).product()
    }

    /// True when the grid has no axes (it still expands to one empty point).
    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Expands the cross product into parameter maps, first axis slowest.
    pub fn expand(&self) -> Vec<BTreeMap<String, ParamValue>> {
        let mut points: Vec<BTreeMap<String, ParamValue>> = vec![BTreeMap::new()];
        for (name, values) in &self.axes {
            let mut next = Vec::with_capacity(points.len() * values.len());
            for point in &points {
                for value in values {
                    let mut p = point.clone();
                    p.insert(name.clone(), value.clone());
                    next.push(p);
                }
            }
            points = next;
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_grid_is_one_empty_point() {
        let grid = ParamGrid::new();
        assert_eq!(grid.len(), 1);
        let points = grid.expand();
        assert_eq!(points.len(), 1);
        assert!(points[0].is_empty());
    }

    #[test]
    fn expansion_is_full_cross_product_first_axis_slowest() {
        let grid = ParamGrid::new().axis("a", [1, 2]).axis("b", ["x", "y", "z"]);
        assert_eq!(grid.len(), 6);
        assert_eq!(grid.axis_count(), 2);
        let points = grid.expand();
        assert_eq!(points.len(), 6);
        // First axis varies slowest: a=1 for the first three points.
        assert_eq!(points[0]["a"], ParamValue::Int(1));
        assert_eq!(points[0]["b"], ParamValue::Text("x".into()));
        assert_eq!(points[2]["a"], ParamValue::Int(1));
        assert_eq!(points[2]["b"], ParamValue::Text("z".into()));
        assert_eq!(points[3]["a"], ParamValue::Int(2));
        assert_eq!(points[3]["b"], ParamValue::Text("x".into()));
        // Every point carries every axis.
        assert!(points.iter().all(|p| p.len() == 2));
    }

    #[test]
    fn mixed_value_types_on_one_axis_via_paramvalue() {
        let grid = ParamGrid::new().axis("loss", [0.02, 0.2]).axis("fault", [true, false]);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid.expand()[0]["loss"], ParamValue::Float(0.02));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_axis_is_rejected() {
        let _ = ParamGrid::new().axis::<i64>("a", Vec::<i64>::new());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn duplicate_axis_is_rejected() {
        let _ = ParamGrid::new().axis("a", [1]).axis("a", [2]);
    }
}

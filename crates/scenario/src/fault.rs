//! Deterministic campaign fault injection.
//!
//! The campaign runner's crash-safety story (checkpoint/resume, abort
//! handling, atomic manifests) was until now exercised only by hand-written
//! interruption tests.  This module turns those failure modes into a
//! first-class, replayable input: a [`FaultPlan`] names *which* faults fire
//! *where* (chunk boundaries, checkpoint flushes, manifest writes), and the
//! runner consults an armed [`FaultInjector`] at exactly those canonical
//! points.  Plans come from JSON (committed chaos drills) or are derived from
//! a seed ([`FaultPlan::derive`]), so every chaotic run is repeatable the same
//! way every campaign run is.
//!
//! The hook is an `Option<&FaultInjector>` threaded through the runner: the
//! zero-fault path costs one branch per probe and allocates nothing.
//!
//! Injected failures are ordinary runner errors carrying the
//! [`INJECTED_PREFIX`] marker, so recovery tooling (the `karyon-campaign
//! chaos` subcommand, the crash-at-any-boundary property tests) can
//! distinguish a planned fault from a real defect.

use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use karyon_sim::splitmix64;

use crate::json::{array, JsonValue, ObjectWriter};

/// Marker embedded in every error message produced by an injected fault.
pub const INJECTED_PREFIX: &str = "injected fault:";

/// Returns `true` if `message` originated from a [`FaultInjector`] rather
/// than a real defect.
pub fn is_injected(message: &str) -> bool {
    message.contains(INJECTED_PREFIX)
}

/// One planned fault at a canonical injection point of the campaign runner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// A worker thread dies at the boundary of `at_chunk`, before executing
    /// any of its runs — the whole session aborts like a killed process.
    WorkerDeath {
        /// Chunk index whose claim kills the worker.
        at_chunk: usize,
    },
    /// An abort signal lands mid-chunk: the session stops after `after_runs`
    /// runs of `at_chunk` have executed, leaving a partial chunk in flight.
    AbortMidChunk {
        /// Chunk index inside which the abort fires.
        at_chunk: usize,
        /// Runs of that chunk that complete before the abort.
        after_runs: u64,
    },
    /// The checkpoint manifest write is torn: the freshly written file is
    /// truncated to `keep_bytes` bytes and the session dies, as if the
    /// process crashed mid-`write(2)` on a filesystem without atomic rename.
    TornManifest {
        /// Checkpoint watermark (chunks merged) at which the tear happens.
        at_chunks_done: usize,
        /// Bytes of the manifest that survive on disk.
        keep_bytes: u64,
    },
    /// The run-sink flush before a checkpoint fails with an I/O error,
    /// `failures` times in a row — transient disk pressure that bounded
    /// retry should heal without losing the session.
    SinkIoError {
        /// Checkpoint watermark at which the flush starts failing.
        at_chunks_done: usize,
        /// Consecutive flush attempts that fail before the sink recovers.
        failures: u32,
    },
}

impl Fault {
    /// Stable category label, used for plan JSON and telemetry counters.
    pub fn category(&self) -> &'static str {
        match self {
            Fault::WorkerDeath { .. } => "worker-death",
            Fault::AbortMidChunk { .. } => "abort-mid-chunk",
            Fault::TornManifest { .. } => "torn-manifest",
            Fault::SinkIoError { .. } => "sink-io-error",
        }
    }

    /// How many times this fault may fire before it is spent.
    fn budget(&self) -> u32 {
        match self {
            Fault::SinkIoError { failures, .. } => (*failures).max(1),
            _ => 1,
        }
    }

    fn to_json(&self) -> String {
        let mut obj = ObjectWriter::new();
        obj.string("kind", self.category());
        match self {
            Fault::WorkerDeath { at_chunk } => {
                obj.u64("at_chunk", *at_chunk as u64);
            }
            Fault::AbortMidChunk { at_chunk, after_runs } => {
                obj.u64("at_chunk", *at_chunk as u64).u64("after_runs", *after_runs);
            }
            Fault::TornManifest { at_chunks_done, keep_bytes } => {
                obj.u64("at_chunks_done", *at_chunks_done as u64).u64("keep_bytes", *keep_bytes);
            }
            Fault::SinkIoError { at_chunks_done, failures } => {
                obj.u64("at_chunks_done", *at_chunks_done as u64).u64("failures", *failures as u64);
            }
        }
        obj.finish()
    }

    fn from_json(value: &JsonValue) -> Result<Fault, String> {
        let fields = value.as_object().ok_or("each fault must be a JSON object")?;
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or("each fault needs a string \"kind\"")?;
        let known: &[&str] = match kind {
            "worker-death" => &["kind", "at_chunk"],
            "abort-mid-chunk" => &["kind", "at_chunk", "after_runs"],
            "torn-manifest" => &["kind", "at_chunks_done", "keep_bytes"],
            "sink-io-error" => &["kind", "at_chunks_done", "failures"],
            other => {
                return Err(format!(
                    "unknown fault kind {other:?} (expected worker-death, abort-mid-chunk, \
                     torn-manifest or sink-io-error)"
                ))
            }
        };
        for (key, _) in fields {
            if !known.contains(&key.as_str()) {
                return Err(format!("unknown field {key:?} in a {kind} fault"));
            }
        }
        let u64_field = |name: &str| -> Result<u64, String> {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{kind} fault needs a non-negative integer {name:?}"))
        };
        Ok(match kind {
            "worker-death" => Fault::WorkerDeath { at_chunk: u64_field("at_chunk")? as usize },
            "abort-mid-chunk" => Fault::AbortMidChunk {
                at_chunk: u64_field("at_chunk")? as usize,
                after_runs: u64_field("after_runs")?,
            },
            "torn-manifest" => Fault::TornManifest {
                at_chunks_done: u64_field("at_chunks_done")? as usize,
                keep_bytes: u64_field("keep_bytes")?,
            },
            _ => Fault::SinkIoError {
                at_chunks_done: u64_field("at_chunks_done")? as usize,
                failures: u64_field("failures")?.min(u32::MAX as u64) as u32,
            },
        })
    }
}

/// An ordered collection of planned faults.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault to the plan.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// The planned faults, in plan order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Derives a small mixed plan purely from `seed` and the campaign's chunk
    /// count: a transient sink I/O error, a worker death at a mid-campaign
    /// chunk boundary and (for campaigns of at least four chunks) a mid-chunk
    /// abort.  The same `(seed, chunks)` always yields the same plan.
    pub fn derive(seed: u64, chunks: usize) -> Self {
        let chunks = chunks.max(2);
        let mut state = seed ^ 0xFA17_B1A5_0DD5_EED5;
        let death_chunk = 1 + (splitmix64(&mut state) as usize % (chunks - 1));
        let flush_at = splitmix64(&mut state) as usize % chunks;
        let failures = 1 + (splitmix64(&mut state) % 2) as u32;
        let mut plan = FaultPlan::new()
            .with(Fault::SinkIoError { at_chunks_done: flush_at, failures })
            .with(Fault::WorkerDeath { at_chunk: death_chunk });
        if chunks >= 4 {
            let abort_chunk = splitmix64(&mut state) as usize % chunks;
            let after_runs = splitmix64(&mut state) % 3;
            plan = plan.with(Fault::AbortMidChunk { at_chunk: abort_chunk, after_runs });
        }
        plan
    }

    /// Parses a plan from its JSON form:
    ///
    /// ```json
    /// {"faults": [
    ///   {"kind": "worker-death", "at_chunk": 2},
    ///   {"kind": "abort-mid-chunk", "at_chunk": 4, "after_runs": 3},
    ///   {"kind": "torn-manifest", "at_chunks_done": 3, "keep_bytes": 120},
    ///   {"kind": "sink-io-error", "at_chunks_done": 1, "failures": 2}
    /// ]}
    /// ```
    ///
    /// Unknown kinds and unknown fields are rejected, like campaign specs.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let root = JsonValue::parse(text).map_err(|e| format!("fault plan: {e}"))?;
        let fields = root.as_object().ok_or("fault plan: expected a top-level JSON object")?;
        for (key, _) in fields {
            if key != "faults" {
                return Err(format!("fault plan: unknown top-level field {key:?}"));
            }
        }
        let faults = root
            .get("faults")
            .and_then(JsonValue::as_array)
            .ok_or("fault plan: needs a \"faults\" array")?;
        let mut plan = FaultPlan::new();
        for (i, entry) in faults.iter().enumerate() {
            plan.faults
                .push(Fault::from_json(entry).map_err(|e| format!("fault plan, fault {i}: {e}"))?);
        }
        Ok(plan)
    }

    /// Renders the plan as single-line JSON (the inverse of
    /// [`from_json_str`](Self::from_json_str)).
    pub fn to_json(&self) -> String {
        let faults: Vec<String> = self.faults.iter().map(Fault::to_json).collect();
        let mut obj = ObjectWriter::new();
        obj.raw("faults", &array(&faults));
        obj.finish()
    }

    /// Arms the plan: each fault gets a one-shot (or `failures`-shot) budget
    /// so a recovered session does not re-trip the same fault forever.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            armed: self.faults.iter().map(|f| (f.clone(), AtomicU32::new(f.budget()))).collect(),
            injected: AtomicU64::new(0),
            worker_deaths: AtomicU64::new(0),
            mid_chunk_aborts: AtomicU64::new(0),
            torn_manifests: AtomicU64::new(0),
            sink_errors: AtomicU64::new(0),
        }
    }
}

/// An armed [`FaultPlan`]: thread-safe, consulted by the campaign runner at
/// its canonical injection points.
///
/// Each fault carries a firing budget (one shot, except
/// [`Fault::SinkIoError`] which fires `failures` times), so the injector can
/// be shared across the crash/recover sessions of a chaos drill: once a fault
/// has fired it stays quiet and the recovery path can make progress.
#[derive(Debug)]
pub struct FaultInjector {
    armed: Vec<(Fault, AtomicU32)>,
    injected: AtomicU64,
    worker_deaths: AtomicU64,
    mid_chunk_aborts: AtomicU64,
    torn_manifests: AtomicU64,
    sink_errors: AtomicU64,
}

impl FaultInjector {
    /// Consumes one shot of `armed[idx]`'s budget; `false` if spent.
    fn consume(budget: &AtomicU32) -> bool {
        budget.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| b.checked_sub(1)).is_ok()
    }

    fn record(&self, counter: &AtomicU64) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Probe at a chunk-claim boundary; `Err` kills the claiming worker.
    pub fn before_chunk(&self, chunk: usize) -> Result<(), String> {
        for (fault, budget) in &self.armed {
            if let Fault::WorkerDeath { at_chunk } = fault {
                if *at_chunk == chunk && Self::consume(budget) {
                    self.record(&self.worker_deaths);
                    return Err(format!(
                        "{INJECTED_PREFIX} worker death at the chunk {chunk} boundary"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Probe before each run inside a chunk; `Err` aborts the session
    /// mid-chunk (the partial chunk is discarded, never merged).
    pub fn before_run(&self, chunk: usize, run_in_chunk: u64) -> Result<(), String> {
        for (fault, budget) in &self.armed {
            if let Fault::AbortMidChunk { at_chunk, after_runs } = fault {
                if *at_chunk == chunk && run_in_chunk >= *after_runs && Self::consume(budget) {
                    self.record(&self.mid_chunk_aborts);
                    return Err(format!(
                        "{INJECTED_PREFIX} abort signal after {run_in_chunk} runs of chunk {chunk}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Probe at the sink flush preceding a checkpoint; `Some` simulates a
    /// transient flush failure (which bounded retry is expected to heal).
    pub fn sink_flush_error(&self, chunks_done: usize) -> Option<std::io::Error> {
        for (fault, budget) in &self.armed {
            if let Fault::SinkIoError { at_chunks_done, .. } = fault {
                if *at_chunks_done == chunks_done && Self::consume(budget) {
                    self.record(&self.sink_errors);
                    return Some(std::io::Error::other(format!(
                        "{INJECTED_PREFIX} sink flush I/O error at checkpoint {chunks_done}"
                    )));
                }
            }
        }
        None
    }

    /// Probe after a manifest write lands; a matching torn-manifest fault
    /// truncates the freshly written file and kills the session.
    pub fn after_manifest_write(&self, chunks_done: usize, path: &Path) -> Result<(), String> {
        for (fault, budget) in &self.armed {
            if let Fault::TornManifest { at_chunks_done, keep_bytes } = fault {
                if *at_chunks_done == chunks_done && Self::consume(budget) {
                    self.record(&self.torn_manifests);
                    let tear = std::fs::OpenOptions::new()
                        .write(true)
                        .open(path)
                        .and_then(|f| f.set_len(*keep_bytes));
                    return Err(match tear {
                        Ok(()) => format!(
                            "{INJECTED_PREFIX} torn manifest write at checkpoint {chunks_done} \
                             (file truncated to {keep_bytes} bytes)"
                        ),
                        Err(e) => format!(
                            "{INJECTED_PREFIX} torn manifest write at checkpoint {chunks_done} \
                             (truncation itself failed: {e})"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    /// Total faults fired since the last [`drain_counts`](Self::drain_counts).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Drains the per-category fire counters as `(metric name, count)` pairs,
    /// resetting them to zero — each runner session folds only the faults it
    /// actually observed into its metrics registry.
    pub fn drain_counts(&self) -> Vec<(&'static str, u64)> {
        let mut out = Vec::new();
        for (name, counter) in [
            ("fault.injected", &self.injected),
            ("fault.injected.worker_death", &self.worker_deaths),
            ("fault.injected.abort_mid_chunk", &self.mid_chunk_aborts),
            ("fault.injected.torn_manifest", &self.torn_manifests),
            ("fault.injected.sink_io_error", &self.sink_errors),
        ] {
            let n = counter.swap(0, Ordering::Relaxed);
            if n > 0 {
                out.push((name, n));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_json_round_trips_and_rejects_garbage() {
        let plan = FaultPlan::new()
            .with(Fault::WorkerDeath { at_chunk: 2 })
            .with(Fault::AbortMidChunk { at_chunk: 4, after_runs: 3 })
            .with(Fault::TornManifest { at_chunks_done: 3, keep_bytes: 120 })
            .with(Fault::SinkIoError { at_chunks_done: 1, failures: 2 });
        let text = plan.to_json();
        assert_eq!(FaultPlan::from_json_str(&text).unwrap(), plan);

        let unknown_kind = r#"{"faults":[{"kind":"meteor-strike","at_chunk":1}]}"#;
        let err = FaultPlan::from_json_str(unknown_kind).unwrap_err();
        assert!(err.contains("unknown fault kind"), "{err}");

        let unknown_field = r#"{"faults":[{"kind":"worker-death","at_chunk":1,"bogus":2}]}"#;
        let err = FaultPlan::from_json_str(unknown_field).unwrap_err();
        assert!(err.contains("unknown field"), "{err}");

        let unknown_top = r#"{"faults":[],"extra":true}"#;
        let err = FaultPlan::from_json_str(unknown_top).unwrap_err();
        assert!(err.contains("unknown top-level field"), "{err}");
    }

    #[test]
    fn derived_plans_are_deterministic() {
        assert_eq!(FaultPlan::derive(99, 12), FaultPlan::derive(99, 12));
        assert_ne!(FaultPlan::derive(99, 12), FaultPlan::derive(100, 12));
        assert!(!FaultPlan::derive(0, 1).is_empty());
    }

    #[test]
    fn faults_are_one_shot_and_counted() {
        let plan = FaultPlan::new()
            .with(Fault::WorkerDeath { at_chunk: 3 })
            .with(Fault::SinkIoError { at_chunks_done: 1, failures: 2 });
        let injector = plan.injector();

        assert!(injector.before_chunk(2).is_ok());
        let err = injector.before_chunk(3).unwrap_err();
        assert!(is_injected(&err), "{err}");
        // Spent: the recovered session sails past the same boundary.
        assert!(injector.before_chunk(3).is_ok());

        assert!(injector.sink_flush_error(0).is_none());
        assert!(injector.sink_flush_error(1).is_some());
        assert!(injector.sink_flush_error(1).is_some());
        assert!(injector.sink_flush_error(1).is_none(), "budget of 2 is spent");

        assert_eq!(injector.injected(), 3);
        let counts = injector.drain_counts();
        assert!(counts.contains(&("fault.injected", 3)));
        assert!(counts.contains(&("fault.injected.worker_death", 1)));
        assert!(counts.contains(&("fault.injected.sink_io_error", 2)));
        assert_eq!(injector.injected(), 0, "drained");
        assert!(injector.drain_counts().is_empty());
    }
}

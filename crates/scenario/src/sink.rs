//! Per-run artifact streaming.
//!
//! Chunked aggregation means the campaign runner never retains raw
//! [`RunRecord`]s — which is exactly what makes million-run campaigns fit in
//! memory, but also means the raw records are gone unless captured on the
//! way through.  A [`RunSink`] receives every run **in canonical run order**
//! (the runner buffers at most the chunks currently in flight to restore
//! order), so downstream tooling sees a deterministic stream regardless of
//! the worker count.  [`JsonlRunWriter`] is the ready-made sink: one JSON
//! object per line, parseable by any JSONL consumer, and re-aggregatable with
//! [`Campaign::reduce_records`](crate::Campaign::reduce_records).

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::json::ObjectWriter;
use crate::scenario::RunRecord;
use crate::spec::{params_json, ParamValue};

/// The canonical coordinates and derived identity of one campaign run,
/// handed to a [`RunSink`] alongside the run's record.
#[derive(Debug, Clone, Copy)]
pub struct RunMeta<'a> {
    /// Global run index in the canonical work list.
    pub run_index: u64,
    /// Index of the run's parameter point in the flattened point list.
    pub point: usize,
    /// The scenario family name.
    pub scenario: &'a str,
    /// The run's parameter point.
    pub params: &'a BTreeMap<String, ParamValue>,
    /// Monte-Carlo replication index within the point.
    pub replication: u64,
    /// The derived per-run RNG seed.
    pub seed: u64,
}

/// A consumer of per-run artifacts, called in canonical run order.
pub trait RunSink {
    /// Receives one run.  Runs arrive strictly in canonical order
    /// (`meta.run_index` is increasing) for any worker count.
    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord);

    /// Pushes buffered output down to the sink's backing store.  The
    /// checkpointing runner calls this **before** every manifest write, so
    /// the artifact stream covers at least the checkpointed runs — with
    /// exactly the durability the underlying writer's `flush` provides.  A
    /// plain [`BufWriter<File>`](std::io::BufWriter) flushes to the OS page
    /// cache, which survives a process kill but not a power loss; wrap the
    /// file in [`SyncOnFlushFile`] to make each checkpoint's stream prefix
    /// durable against power loss too (manifests themselves are always
    /// fsynced).  In-memory sinks keep the no-op default.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl<F: FnMut(&RunMeta<'_>, &RunRecord)> RunSink for F {
    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord) {
        self(meta, record)
    }
}

/// A buffered file writer whose [`flush`](Write::flush) drains the buffer
/// **and** fsyncs (`sync_all`) the file.
///
/// [`RunSink::flush`] is called before every checkpoint manifest write, and
/// the manifest itself is fsynced — so a JSONL stream that only reaches the
/// OS page cache can, after a power loss, hold fewer lines than the manifest
/// watermark and refuse to resume.  Streaming through this wrapper closes
/// that gap: by the time a manifest lands, the stream prefix it covers is on
/// stable storage.  The `karyon-campaign` CLI wraps its `--jsonl` file in
/// this.
#[derive(Debug)]
pub struct SyncOnFlushFile {
    inner: io::BufWriter<std::fs::File>,
}

impl SyncOnFlushFile {
    /// Wraps `file` in a buffered, sync-on-flush writer.
    pub fn new(file: std::fs::File) -> Self {
        SyncOnFlushFile { inner: io::BufWriter::new(file) }
    }
}

impl Write for SyncOnFlushFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_all()
    }
}

/// A [`RunSink`] writing one JSON object per run (JSON Lines).
///
/// Each line carries the canonical coordinates, the derived seed, the
/// causality-clamp count and the full metric map:
///
/// ```text
/// {"run":0,"scenario":"echo","point":0,"replication":0,"seed":42,"clamped_schedules":0,"params":{},"metrics":{"x":1.5}}
/// ```
#[derive(Debug)]
pub struct JsonlRunWriter<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlRunWriter<W> {
    /// Creates a writer over any `io::Write` (a file, a buffer, a pipe).
    pub fn new(out: W) -> Self {
        JsonlRunWriter { out, written: 0, error: None }
    }

    /// Number of lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer, or the first I/O error the
    /// streaming callbacks (which cannot fail) had to defer.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> RunSink for JsonlRunWriter<W> {
    fn flush(&mut self) -> io::Result<()> {
        // Report without consuming: the sticky error must survive into
        // `finish()`, and later `on_run` calls must stay suppressed —
        // otherwise a caller that logs-and-continues would produce a stream
        // with silent gaps that `finish()` then blesses as Ok.
        if let Some(error) = &self.error {
            return Err(io::Error::new(error.kind(), error.to_string()));
        }
        self.out.flush()
    }

    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord) {
        if self.error.is_some() {
            return;
        }
        let mut metrics = ObjectWriter::new();
        for (name, value) in record.metrics() {
            metrics.f64(name, *value);
        }
        let mut line = ObjectWriter::new();
        line.u64("run", meta.run_index)
            .string("scenario", meta.scenario)
            .u64("point", meta.point as u64)
            .u64("replication", meta.replication)
            .u64("seed", meta.seed)
            .u64("clamped_schedules", record.clamped_schedules)
            .raw("params", &params_json(meta.params))
            .raw("metrics", &metrics.finish());
        if let Err(error) = writeln!(self.out, "{}", line.finish()) {
            self.error = Some(error);
        } else {
            self.written += 1;
        }
    }
}

/// Parses a JSONL run stream (as written by [`JsonlRunWriter`]) back into
/// per-run records, one per line in canonical run order — the input
/// [`Campaign::reduce_records`](crate::Campaign::reduce_records) replays.
///
/// Each line's `run` index is checked against its position, so a reordered,
/// truncated-in-the-middle or concatenated stream is rejected instead of
/// silently re-aggregating wrong data.  Metric round-trips are bit-exact for
/// finite values (the writer emits shortest-round-trip decimals); non-finite
/// metrics were serialised as `null` and come back as NaN, which every
/// aggregation path treats exactly like the original non-finite value.
pub fn read_jsonl_records(text: &str) -> Result<Vec<RunRecord>, String> {
    let mut records = Vec::new();
    for (index, line) in text.lines().enumerate() {
        let value = crate::json::JsonValue::parse(line)
            .map_err(|e| format!("JSONL line {}: {e}", index + 1))?;
        let run = value
            .get("run")
            .and_then(crate::json::JsonValue::as_u64)
            .ok_or_else(|| format!("JSONL line {}: missing \"run\" index", index + 1))?;
        if run != index as u64 {
            return Err(format!(
                "JSONL line {}: run index {run} out of canonical order — the stream is \
                 reordered or spliced",
                index + 1
            ));
        }
        let mut record = RunRecord::new();
        record.clamped_schedules = value
            .get("clamped_schedules")
            .and_then(crate::json::JsonValue::as_u64)
            .ok_or_else(|| format!("JSONL line {}: missing \"clamped_schedules\"", index + 1))?;
        let metrics = value
            .get("metrics")
            .and_then(crate::json::JsonValue::as_object)
            .ok_or_else(|| format!("JSONL line {}: missing \"metrics\" object", index + 1))?;
        for (name, metric) in metrics {
            let metric = metric.as_f64().ok_or_else(|| {
                format!("JSONL line {}: metric {name:?} is not a number", index + 1)
            })?;
            record.set(name, metric);
        }
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_writer_emits_one_parseable_line_per_run() {
        let mut params = BTreeMap::new();
        params.insert("mode".to_string(), ParamValue::Text("kernel".into()));
        let mut record = RunRecord::new();
        record.set("x", 1.5);
        record.set_flag("ok", true);
        let mut writer = JsonlRunWriter::new(Vec::new());
        for run in 0..3u64 {
            let meta = RunMeta {
                run_index: run,
                point: 0,
                scenario: "demo",
                params: &params,
                replication: run,
                seed: 100 + run,
            };
            writer.on_run(&meta, &record);
        }
        assert_eq!(writer.written(), 3);
        let bytes = writer.finish().expect("in-memory writes cannot fail");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(r#"{"run":0,"scenario":"demo""#));
        assert!(lines[2].contains(r#""seed":102"#));
        assert!(lines[0].contains(r#""params":{"mode":"kernel"}"#));
        assert!(lines[0].contains(r#""metrics":{"ok":1,"x":1.5}"#));
    }

    #[test]
    fn jsonl_reader_round_trips_the_writer_bit_exactly() {
        let params = BTreeMap::new();
        let mut writer = JsonlRunWriter::new(Vec::new());
        for run in 0..4u64 {
            let mut record = RunRecord::new();
            record.set("x", (run as f64) * 0.1 + 1.0 / 3.0);
            record.set("tiny", f64::MIN_POSITIVE);
            if run == 2 {
                record.set("broken", f64::NAN);
                record.clamped_schedules = 3;
            }
            let meta = RunMeta {
                run_index: run,
                point: 0,
                scenario: "demo",
                params: &params,
                replication: run,
                seed: run,
            };
            writer.on_run(&meta, &record);
        }
        let text = String::from_utf8(writer.finish().unwrap()).unwrap();
        let records = read_jsonl_records(&text).expect("well-formed stream");
        assert_eq!(records.len(), 4);
        assert_eq!(records[1].get("x").unwrap().to_bits(), (0.1f64 + 1.0 / 3.0).to_bits());
        assert_eq!(records[3].get("tiny").unwrap().to_bits(), f64::MIN_POSITIVE.to_bits());
        assert!(records[2].get("broken").unwrap().is_nan(), "null reads back as non-finite");
        assert_eq!(records[2].clamped_schedules, 3);
    }

    #[test]
    fn jsonl_reader_rejects_reordered_and_malformed_streams() {
        let good = "{\"run\":0,\"clamped_schedules\":0,\"metrics\":{}}\n";
        assert_eq!(read_jsonl_records(good).unwrap().len(), 1);
        let reordered = "{\"run\":1,\"clamped_schedules\":0,\"metrics\":{}}\n";
        assert!(read_jsonl_records(reordered).unwrap_err().contains("canonical order"));
        assert!(read_jsonl_records("{\"run\":0}\n").unwrap_err().contains("clamped_schedules"));
        assert!(read_jsonl_records("{torn").unwrap_err().contains("line 1"));
    }

    #[test]
    fn write_errors_stay_sticky_through_flush_and_finish() {
        /// A writer that fails once the first full line (body + newline,
        /// two `write` calls under `writeln!`) has gone through.
        struct Flaky {
            writes: usize,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.writes += 1;
                if self.writes > 2 {
                    Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
                } else {
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let params = BTreeMap::new();
        let record = RunRecord::new();
        let meta = |run| RunMeta {
            run_index: run,
            point: 0,
            scenario: "s",
            params: &params,
            replication: run,
            seed: run,
        };
        let mut writer = JsonlRunWriter::new(Flaky { writes: 0 });
        writer.on_run(&meta(0), &record);
        writer.on_run(&meta(1), &record); // fails, sets the sticky error
        assert!(writer.flush().is_err(), "flush reports the deferred error");
        assert!(writer.flush().is_err(), "…and does not consume it");
        writer.on_run(&meta(2), &record); // must stay suppressed (no gapped stream)
        assert_eq!(writer.written(), 1, "nothing after the error counts as written");
        assert!(writer.finish().is_err(), "finish still surfaces the failure");
    }

    #[test]
    fn sync_on_flush_file_lands_every_flushed_byte_on_disk() {
        let path =
            std::env::temp_dir().join(format!("karyon-sync-on-flush-{}.jsonl", std::process::id()));
        let mut out = SyncOnFlushFile::new(std::fs::File::create(&path).unwrap());
        writeln!(out, "line 1").unwrap();
        out.flush().expect("flush drains the buffer and fsyncs");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "line 1\n");
        writeln!(out, "line 2").unwrap();
        out.flush().unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "line 1\nline 2\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = Vec::new();
        let mut sink = |meta: &RunMeta<'_>, _record: &RunRecord| seen.push(meta.run_index);
        let params = BTreeMap::new();
        let record = RunRecord::new();
        let meta = RunMeta {
            run_index: 7,
            point: 0,
            scenario: "s",
            params: &params,
            replication: 0,
            seed: 1,
        };
        RunSink::on_run(&mut sink, &meta, &record);
        assert_eq!(seen, vec![7]);
    }
}

//! Per-run artifact streaming.
//!
//! Chunked aggregation means the campaign runner never retains raw
//! [`RunRecord`]s — which is exactly what makes million-run campaigns fit in
//! memory, but also means the raw records are gone unless captured on the
//! way through.  A [`RunSink`] receives every run **in canonical run order**
//! (the runner buffers at most the chunks currently in flight to restore
//! order), so downstream tooling sees a deterministic stream regardless of
//! the worker count.  [`JsonlRunWriter`] is the ready-made sink: one JSON
//! object per line, parseable by any JSONL consumer, and re-aggregatable with
//! [`Campaign::reduce_records`](crate::Campaign::reduce_records).

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::json::ObjectWriter;
use crate::scenario::RunRecord;
use crate::spec::{params_json, ParamValue};

/// The canonical coordinates and derived identity of one campaign run,
/// handed to a [`RunSink`] alongside the run's record.
#[derive(Debug, Clone, Copy)]
pub struct RunMeta<'a> {
    /// Global run index in the canonical work list.
    pub run_index: u64,
    /// Index of the run's parameter point in the flattened point list.
    pub point: usize,
    /// The scenario family name.
    pub scenario: &'a str,
    /// The run's parameter point.
    pub params: &'a BTreeMap<String, ParamValue>,
    /// Monte-Carlo replication index within the point.
    pub replication: u64,
    /// The derived per-run RNG seed.
    pub seed: u64,
}

/// A consumer of per-run artifacts, called in canonical run order.
pub trait RunSink {
    /// Receives one run.  Runs arrive strictly in canonical order
    /// (`meta.run_index` is increasing) for any worker count.
    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord);
}

impl<F: FnMut(&RunMeta<'_>, &RunRecord)> RunSink for F {
    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord) {
        self(meta, record)
    }
}

/// A [`RunSink`] writing one JSON object per run (JSON Lines).
///
/// Each line carries the canonical coordinates, the derived seed, the
/// causality-clamp count and the full metric map:
///
/// ```text
/// {"run":0,"scenario":"echo","point":0,"replication":0,"seed":42,"clamped_schedules":0,"params":{},"metrics":{"x":1.5}}
/// ```
#[derive(Debug)]
pub struct JsonlRunWriter<W: Write> {
    out: W,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlRunWriter<W> {
    /// Creates a writer over any `io::Write` (a file, a buffer, a pipe).
    pub fn new(out: W) -> Self {
        JsonlRunWriter { out, written: 0, error: None }
    }

    /// Number of lines written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer, or the first I/O error the
    /// streaming callbacks (which cannot fail) had to defer.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> RunSink for JsonlRunWriter<W> {
    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord) {
        if self.error.is_some() {
            return;
        }
        let mut metrics = ObjectWriter::new();
        for (name, value) in record.metrics() {
            metrics.f64(name, *value);
        }
        let mut line = ObjectWriter::new();
        line.u64("run", meta.run_index)
            .string("scenario", meta.scenario)
            .u64("point", meta.point as u64)
            .u64("replication", meta.replication)
            .u64("seed", meta.seed)
            .u64("clamped_schedules", record.clamped_schedules)
            .raw("params", &params_json(meta.params))
            .raw("metrics", &metrics.finish());
        if let Err(error) = writeln!(self.out, "{}", line.finish()) {
            self.error = Some(error);
        } else {
            self.written += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_writer_emits_one_parseable_line_per_run() {
        let mut params = BTreeMap::new();
        params.insert("mode".to_string(), ParamValue::Text("kernel".into()));
        let mut record = RunRecord::new();
        record.set("x", 1.5);
        record.set_flag("ok", true);
        let mut writer = JsonlRunWriter::new(Vec::new());
        for run in 0..3u64 {
            let meta = RunMeta {
                run_index: run,
                point: 0,
                scenario: "demo",
                params: &params,
                replication: run,
                seed: 100 + run,
            };
            writer.on_run(&meta, &record);
        }
        assert_eq!(writer.written(), 3);
        let bytes = writer.finish().expect("in-memory writes cannot fail");
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with(r#"{"run":0,"scenario":"demo""#));
        assert!(lines[2].contains(r#""seed":102"#));
        assert!(lines[0].contains(r#""params":{"mode":"kernel"}"#));
        assert!(lines[0].contains(r#""metrics":{"ok":1,"x":1.5}"#));
    }

    #[test]
    fn closures_are_sinks() {
        let mut seen = Vec::new();
        let mut sink = |meta: &RunMeta<'_>, _record: &RunRecord| seen.push(meta.run_index);
        let params = BTreeMap::new();
        let record = RunRecord::new();
        let meta = RunMeta {
            run_index: 7,
            point: 0,
            scenario: "s",
            params: &params,
            replication: 0,
            seed: 1,
        };
        RunSink::on_run(&mut sink, &meta, &record);
        assert_eq!(seen, vec![7]);
    }
}

//! Crash-safe campaign checkpointing and resume.
//!
//! A multi-hour, million-run campaign loses everything when its process dies
//! — a crash, an OOM kill, a preempted cloud instance.  This module makes
//! campaigns **resumable**: at a configurable canonical-chunk cadence the
//! runner persists a [`CheckpointManifest`] — the campaign's identity
//! fingerprint, a canonical-chunk watermark and the merged per-point
//! aggregation partials, every `f64` stored as its IEEE-754 bit pattern —
//! written **atomically** (temp file + rename) so a crash mid-write can
//! never leave a torn manifest behind.  [`Campaign::resume`] validates the
//! fingerprint against the (re-built) campaign, restores the
//! [`CampaignAccumulator`] from the persisted partials, skips every chunk at
//! or below the watermark and continues with live workers.
//!
//! Because aggregation is canonically chunked (see [`crate::aggregate`]), the
//! resumed reduction performs the exact same sequence of floating-point
//! operations as an uninterrupted run: the final
//! [`CampaignReport`](crate::CampaignReport) is
//! **bit-identical** for any worker count and any interruption point — the
//! property `tests/checkpoint_resume.rs` pins down.
//!
//! When a [`RunSink`](crate::RunSink) streams per-run JSONL artifacts
//! alongside, the runner flushes the sink *before* each manifest write, so
//! the stream on disk always covers at least the checkpointed runs — with
//! the durability the sink's writer provides: stream the file through
//! [`SyncOnFlushFile`](crate::SyncOnFlushFile) (as the `karyon-campaign` CLI
//! does) and the covered prefix survives power loss, exactly like the
//! fsynced manifest.  After a crash the stream may run ahead of the manifest
//! (or end in a torn line); [`truncate_jsonl`] cuts it back to exactly the
//! watermark so the resumed stream continues byte-identically.
//!
//! ```
//! use karyon_scenario::{Campaign, CampaignEntry, CampaignOutcome, Checkpointer};
//! use karyon_scenario::builtin_registry;
//!
//! let dir = std::env::temp_dir().join(format!("karyon-ckpt-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let campaign = Campaign::new("doc", 7)
//!     .with_chunk_size(4)
//!     .entry(CampaignEntry::new("lane-change").replications(12).duration_secs(30));
//! let registry = builtin_registry();
//!
//! // First session: budget of one chunk, then a (simulated) preemption.
//! let mut ckpt = Checkpointer::new(dir.join("c.ckpt.json")).max_chunks_per_session(1);
//! let (outcome, _) = campaign.run_checkpointed(&registry, &mut ckpt, None).unwrap();
//! assert!(matches!(outcome, CampaignOutcome::Interrupted { chunks_done: 1, .. }));
//!
//! // Second session: resume from the manifest and finish.
//! let mut ckpt = Checkpointer::new(dir.join("c.ckpt.json"));
//! let (outcome, _) = campaign.resume(&registry, &mut ckpt, None).unwrap();
//! let report = outcome.into_report().expect("completed");
//! assert_eq!(report.total_runs, 12);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use std::fs;
use std::io::{BufRead, Read, Write};
use std::path::{Path, PathBuf};

use karyon_sim::{BucketHistogram, BucketHistogramState, OnlineStats, OnlineStatsState};

use crate::aggregate::{CampaignAccumulator, MetricAccumulator, PointAccumulator, QuantileAcc};
use crate::campaign::{fnv1a64, Campaign};
use crate::json::{array, JsonValue, ObjectWriter};
use crate::recovery::RetryPolicy;

/// Manifest format tag, checked on load.
const FORMAT: &str = "karyon-campaign-checkpoint";
/// Manifest format version, checked on load.
const VERSION: u64 = 1;
/// Tag of the integrity frame line written after the manifest payload.
const FRAME_TAG: &str = "karyon-ckpt-frame-v1";

/// Checkpoint policy and manifest location for one campaign session.
///
/// Built fluently and handed to [`Campaign::run_checkpointed`] /
/// [`Campaign::resume`]:
///
/// * [`every_chunks`](Checkpointer::every_chunks) — the write cadence, in
///   canonical chunks (default: every chunk).  Checkpointing costs one
///   manifest serialisation per cadence hit; `e16` measures the overhead as
///   negligible against real per-run simulation work.
/// * [`max_chunks_per_session`](Checkpointer::max_chunks_per_session) — an
///   optional bounded work slice: the session executes at most this many
///   chunks, writes a final checkpoint at its end boundary and returns
///   [`CampaignOutcome::Interrupted`](crate::CampaignOutcome::Interrupted).
///   This is both a scheduler primitive (time-slicing a huge campaign across
///   preemptible compute) and the exact semantics of a kill arriving right
///   after a checkpoint — which is what the resume determinism tests use it
///   for.
#[derive(Debug, Clone)]
pub struct Checkpointer {
    path: PathBuf,
    every_chunks: usize,
    max_chunks: Option<usize>,
    retry: RetryPolicy,
}

impl Checkpointer {
    /// Creates a checkpointer writing its manifest to `path`, at the default
    /// cadence of every canonical chunk and the default I/O retry policy
    /// ([`RetryPolicy::default_io`]).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Checkpointer {
            path: path.into(),
            every_chunks: 1,
            max_chunks: None,
            retry: RetryPolicy::default_io(),
        }
    }

    /// Replaces the retry policy applied to the sink flushes and manifest
    /// writes of each checkpoint ([`RetryPolicy::no_retry`] restores the
    /// fail-fast behaviour).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the write cadence: a manifest is written after every `every`-th
    /// canonical chunk merge (and always at a session's final boundary).
    ///
    /// # Panics
    /// Panics if `every` is zero.
    pub fn every_chunks(mut self, every: usize) -> Self {
        assert!(every > 0, "the checkpoint cadence must be at least one chunk");
        self.every_chunks = every;
        self
    }

    /// Bounds this session to at most `max` canonical chunks; the session
    /// checkpoints at its end boundary and reports
    /// [`CampaignOutcome::Interrupted`](crate::CampaignOutcome::Interrupted)
    /// if work remains.
    ///
    /// # Panics
    /// Panics if `max` is zero.
    pub fn max_chunks_per_session(mut self, max: usize) -> Self {
        assert!(max > 0, "a session must be allowed at least one chunk");
        self.max_chunks = Some(max);
        self
    }

    /// The manifest path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads and parses the manifest at this checkpointer's path.
    pub fn load(&self) -> Result<CheckpointManifest, String> {
        CheckpointManifest::load(&self.path)
    }

    /// The last chunk (exclusive) this session may execute.
    pub(crate) fn session_end_chunk(&self, start_chunk: usize, chunks: usize) -> usize {
        match self.max_chunks {
            Some(max) => chunks.min(start_chunk.saturating_add(max)),
            None => chunks,
        }
    }

    /// True when the cadence calls for a write after `chunks_done` merges.
    pub(crate) fn due(&self, chunks_done: usize) -> bool {
        chunks_done % self.every_chunks == 0
    }

    /// The retry policy for this checkpointer's I/O edges.
    pub(crate) fn retry(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Writes `manifest_json` atomically: to a temp file in the manifest's
    /// directory, fsynced, then renamed over the final path, so a crash at
    /// any instant leaves either the previous manifest or the new one —
    /// never a torn file.  An [`integrity frame`](integrity_frame) line
    /// follows the payload so [`CheckpointManifest::load`] can detect
    /// corruption that slips past the atomic rename (bit rot, manual edits,
    /// non-atomic filesystems).
    pub(crate) fn write(&self, manifest_json: &str) -> Result<(), String> {
        write_framed_atomic(&self.path, manifest_json, "checkpoint")
    }
}

/// Writes `payload` plus its [`integrity frame`](integrity_frame) atomically
/// to `path`: to a temp file in the target's directory, fsynced, then renamed
/// over the final path, so a crash at any instant leaves either the previous
/// file or the new one — never a torn write.  Shared by checkpoint manifests
/// and [shard manifests](crate::shard); `what` names the artifact in errors.
pub(crate) fn write_framed_atomic(path: &Path, payload: &str, what: &str) -> Result<(), String> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension("tmp");
    let fail =
        |stage: &str, e: std::io::Error| format!("{what} write to {path:?} failed ({stage}): {e}");
    let mut file = fs::File::create(&tmp).map_err(|e| fail("create temp", e))?;
    file.write_all(payload.as_bytes()).map_err(|e| fail("write temp", e))?;
    file.write_all(b"\n").map_err(|e| fail("write temp", e))?;
    file.write_all(integrity_frame(payload).as_bytes()).map_err(|e| fail("write frame", e))?;
    file.write_all(b"\n").map_err(|e| fail("write frame", e))?;
    file.sync_all().map_err(|e| fail("sync temp", e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| fail("rename", e))?;
    // Make the rename durable too, where the platform allows opening
    // directories; skipping this on failure only weakens crash-ordering,
    // never correctness of what is read back.
    if let Some(dir) = dir {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A parsed checkpoint manifest: the campaign's identity, the canonical-chunk
/// watermark and the persisted per-point aggregation partials.
#[derive(Debug, Clone)]
pub struct CheckpointManifest {
    /// The campaign name (informational; identity is the fingerprint).
    pub campaign: String,
    /// The campaign seed.
    pub seed: u64,
    /// Fingerprint of the campaign definition (see
    /// [`Campaign::fingerprint`]); resume refuses a mismatch.
    pub fingerprint: u64,
    /// The canonical chunk size the partials were reduced with.
    pub chunk_size: usize,
    /// Total runs of the full campaign.
    pub total_runs: u64,
    /// Canonical chunks fully merged into the persisted partials.
    pub chunks_done: usize,
    /// Runs covered by the watermark (`min(chunks_done × chunk_size,
    /// total_runs)`): the exact line count a JSONL stream written alongside
    /// must be [truncated](truncate_jsonl) to before resuming.
    pub runs_done: u64,
    points: Vec<PointAccumulator>,
}

impl CheckpointManifest {
    /// Loads a manifest file, verifying its integrity frame before parsing.
    ///
    /// The atomic rename in [`Checkpointer`] already rules out torn writes on
    /// POSIX filesystems; the frame check additionally catches truncation on
    /// non-atomic filesystems, bit rot and manual edits.  Corrupt manifests
    /// are **refused with a recovery hint** — the file on disk is never
    /// touched and this function never panics.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = fs::read(path)
            .map_err(|e| format!("cannot read checkpoint manifest {path:?}: {e}"))
            .and_then(|bytes| {
                String::from_utf8(bytes).map_err(|_| {
                    refusal(path, "the file is not valid UTF-8 — it is corrupt or not a manifest")
                })
            })?;
        let (payload, rest) = text.split_once('\n').ok_or_else(|| {
            refusal(
                path,
                "no newline-terminated manifest payload — the file was truncated mid-write",
            )
        })?;
        let frame_line = rest.lines().next().unwrap_or("").trim();
        if frame_line.is_empty() {
            return Err(refusal(
                path,
                "the integrity frame line after the payload is missing — the file was \
                 truncated, or written by an incompatible build",
            ));
        }
        let frame = JsonValue::parse(frame_line)
            .map_err(|e| refusal(path, &format!("the integrity frame is unreadable ({e})")))?;
        if frame.get("frame").and_then(JsonValue::as_str) != Some(FRAME_TAG) {
            return Err(refusal(
                path,
                &format!("the integrity frame does not carry the {FRAME_TAG:?} tag"),
            ));
        }
        let framed_len = frame.get("len").and_then(JsonValue::as_u64);
        if framed_len != Some(payload.len() as u64) {
            return Err(refusal(
                path,
                &format!(
                    "length mismatch: the integrity frame covers {} payload bytes but the file \
                     holds {} — the manifest was truncated or spliced",
                    framed_len.unwrap_or(0),
                    payload.len()
                ),
            ));
        }
        if frame.get("fnv").and_then(JsonValue::as_u64) != Some(fnv1a64(payload.as_bytes())) {
            return Err(refusal(
                path,
                "FNV-1a hash mismatch: the manifest bytes changed after they were written — \
                 bit rot, a manual edit or a torn write",
            ));
        }
        Self::parse(payload).map_err(|e| refusal(path, &e))
    }

    /// Parses a manifest from its JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(text)?;
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let u64_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        if str_field("format")? != FORMAT {
            return Err(format!("not a {FORMAT} file"));
        }
        if u64_field("version")? != VERSION {
            return Err(format!(
                "unsupported manifest version {} (this build reads {VERSION})",
                u64_field("version")?
            ));
        }
        let points = doc
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("missing or non-array field \"points\"")?
            .iter()
            .map(parse_point)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CheckpointManifest {
            campaign: str_field("campaign")?,
            seed: u64_field("seed")?,
            fingerprint: u64_field("fingerprint")?,
            chunk_size: u64_field("chunk_size")? as usize,
            total_runs: u64_field("total_runs")?,
            chunks_done: u64_field("chunks_done")? as usize,
            runs_done: u64_field("runs_done")?,
            points,
        })
    }

    /// Checks the manifest belongs to `campaign` (same fingerprint, i.e. the
    /// same name, seed, chunk size and entry list) and is internally
    /// consistent with the campaign's expansion.
    pub(crate) fn validate_for(
        &self,
        campaign: &Campaign,
        total_runs: u64,
        point_count: usize,
        chunks: usize,
    ) -> Result<(), String> {
        if self.fingerprint != campaign.fingerprint() {
            return Err(format!(
                "checkpoint fingerprint {:#018x} does not match campaign {:?} \
                 ({:#018x}) — the spec (name, seed, chunk size, entries or grids) \
                 changed since the checkpoint was written",
                self.fingerprint,
                campaign.name(),
                campaign.fingerprint()
            ));
        }
        if self.total_runs != total_runs || self.points.len() != point_count {
            return Err(format!(
                "checkpoint shape mismatch: manifest covers {} runs / {} points, \
                 campaign expands to {total_runs} runs / {point_count} points",
                self.total_runs,
                self.points.len()
            ));
        }
        if self.chunks_done > chunks {
            return Err(format!(
                "checkpoint watermark {} exceeds the campaign's {chunks} chunks",
                self.chunks_done
            ));
        }
        Ok(())
    }

    /// Consumes the manifest into the accumulator the runner continues from.
    pub(crate) fn into_accumulator(self) -> CampaignAccumulator {
        CampaignAccumulator::from_points(self.points)
    }
}

/// Serialises the merged state after `chunks_done` canonical chunks.
pub(crate) fn render_manifest(
    campaign: &Campaign,
    total_runs: u64,
    chunks_done: usize,
    runs_done: u64,
    accumulator: &CampaignAccumulator,
) -> String {
    let points: Vec<String> = accumulator.points().iter().map(render_point).collect();
    let mut o = ObjectWriter::new();
    o.string("format", FORMAT)
        .u64("version", VERSION)
        .string("campaign", campaign.name())
        .u64("seed", campaign.seed())
        .u64("fingerprint", campaign.fingerprint())
        .u64("chunk_size", campaign.chunk_size() as u64)
        .u64("total_runs", total_runs)
        .u64("chunks_done", chunks_done as u64)
        .u64("runs_done", runs_done)
        .raw("points", &array(&points));
    o.finish()
}

/// Renders one point's partial.  Every `f64` is stored as its IEEE-754 bit
/// pattern in a `u64` field, so the restore is bit-exact by construction.
/// Shared with the shard manifests of [`crate::shard`], which persist the
/// same representation per chunk.
pub(crate) fn render_point(point: &PointAccumulator) -> String {
    let mut metrics = ObjectWriter::new();
    for (name, acc) in &point.metrics {
        metrics.raw(name, &render_metric(acc));
    }
    let mut o = ObjectWriter::new();
    o.u64("runs", point.runs)
        .u64("suspect_runs", point.suspect_runs)
        .raw("metrics", &metrics.finish());
    o.finish()
}

fn render_metric(acc: &MetricAccumulator) -> String {
    let (stats, sum, quantiles) = acc.parts();
    let state = stats.raw_state();
    let mut o = ObjectWriter::new();
    o.u64("count", state.count)
        .u64("mean", state.mean.to_bits())
        .u64("m2", state.m2.to_bits())
        .u64("min", state.min.to_bits())
        .u64("max", state.max.to_bits())
        .u64("sum", sum.to_bits());
    match quantiles {
        QuantileAcc::Exact(values) => {
            let bits: Vec<String> = values.iter().map(|v| v.to_bits().to_string()).collect();
            o.raw("exact", &array(&bits));
        }
        QuantileAcc::Bucketed(hist) => {
            let state = hist.raw_state();
            let counts: Vec<String> = state.counts.iter().map(u64::to_string).collect();
            let mut h = ObjectWriter::new();
            h.u64("lo", state.lo.to_bits())
                .u64("hi", state.hi.to_bits())
                .raw("counts", &array(&counts))
                .u64("underflow", state.underflow)
                .u64("overflow", state.overflow)
                .u64("count", state.count)
                .u64("sum", state.sum.to_bits())
                .u64("min", state.min.to_bits())
                .u64("max", state.max.to_bits());
            o.raw("histogram", &h.finish());
        }
    }
    o.finish()
}

pub(crate) fn parse_point(value: &JsonValue) -> Result<PointAccumulator, String> {
    let runs = value.get("runs").and_then(JsonValue::as_u64).ok_or("point is missing \"runs\"")?;
    let suspect_runs = value
        .get("suspect_runs")
        .and_then(JsonValue::as_u64)
        .ok_or("point is missing \"suspect_runs\"")?;
    let mut metrics = std::collections::BTreeMap::new();
    let members = value
        .get("metrics")
        .and_then(JsonValue::as_object)
        .ok_or("point is missing \"metrics\"")?;
    for (name, metric) in members {
        metrics.insert(name.clone(), parse_metric(name, metric)?);
    }
    Ok(PointAccumulator { runs, suspect_runs, metrics })
}

fn parse_metric(name: &str, value: &JsonValue) -> Result<MetricAccumulator, String> {
    let bits_field = |key: &str| {
        value
            .get(key)
            .and_then(JsonValue::as_u64)
            .map(f64::from_bits)
            .ok_or_else(|| format!("metric {name:?} is missing bit field {key:?}"))
    };
    let stats = OnlineStats::from_raw_state(OnlineStatsState {
        count: value
            .get("count")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("metric {name:?} is missing \"count\""))?,
        mean: bits_field("mean")?,
        m2: bits_field("m2")?,
        min: bits_field("min")?,
        max: bits_field("max")?,
    });
    let sum = bits_field("sum")?;
    let quantiles = match (value.get("exact"), value.get("histogram")) {
        (Some(exact), None) => {
            let values = exact
                .as_array()
                .ok_or_else(|| format!("metric {name:?}: \"exact\" must be an array"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .map(f64::from_bits)
                        .ok_or_else(|| format!("metric {name:?}: non-integer sample bit pattern"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            QuantileAcc::Exact(values)
        }
        (None, Some(hist)) => {
            let hbits = |key: &str| {
                hist.get(key)
                    .and_then(JsonValue::as_u64)
                    .map(f64::from_bits)
                    .ok_or_else(|| format!("metric {name:?} histogram is missing {key:?}"))
            };
            let hu64 = |key: &str| {
                hist.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("metric {name:?} histogram is missing {key:?}"))
            };
            let counts = hist
                .get("counts")
                .and_then(JsonValue::as_array)
                .ok_or_else(|| format!("metric {name:?} histogram is missing \"counts\""))?
                .iter()
                .map(|v| {
                    v.as_u64().ok_or_else(|| format!("metric {name:?}: non-integer bucket count"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            if counts.is_empty() {
                return Err(format!("metric {name:?} histogram has no buckets"));
            }
            let state = BucketHistogramState {
                lo: hbits("lo")?,
                hi: hbits("hi")?,
                counts,
                underflow: hu64("underflow")?,
                overflow: hu64("overflow")?,
                count: hu64("count")?,
                sum: hbits("sum")?,
                min: hbits("min")?,
                max: hbits("max")?,
            };
            if !(state.lo.is_finite() && state.hi.is_finite() && state.lo < state.hi) {
                return Err(format!("metric {name:?} histogram has an invalid range"));
            }
            QuantileAcc::Bucketed(BucketHistogram::from_raw_state(state))
        }
        _ => {
            return Err(format!(
                "metric {name:?} must carry exactly one of \"exact\" or \"histogram\""
            ))
        }
    };
    Ok(MetricAccumulator::from_parts(stats, sum, quantiles))
}

/// Renders the integrity frame line written after a manifest payload: the
/// payload's byte length plus its FNV-1a hash, as single-line JSON.
///
/// Exposed so tooling (and the corrupt-manifest tests) can construct frames
/// for payloads they assemble themselves.
pub fn integrity_frame(manifest_json: &str) -> String {
    let mut o = ObjectWriter::new();
    o.string("frame", FRAME_TAG)
        .u64("len", manifest_json.len() as u64)
        .u64("fnv", fnv1a64(manifest_json.as_bytes()));
    o.finish()
}

/// A refusal message for a corrupt manifest, with the recovery hint attached.
fn refusal(path: &Path, why: &str) -> String {
    format!(
        "checkpoint manifest {path:?}: {why}; refusing to resume from it — recovery: delete \
         the manifest (and discard or re-truncate any JSONL/trace streams written alongside) \
         and restart the campaign from scratch, or restore the manifest from a backup"
    )
}

/// Outcome of a [`scan_complete_lines`] pass.
struct ScanOutcome {
    /// Byte offset just past the last kept line.
    offset: u64,
    /// Number of complete lines kept.
    lines: u64,
}

/// Scans complete newline-terminated lines from the start of `file`, keeping
/// each line `keep(index, bytes-without-newline)` approves and stopping at
/// the first rejected line, at EOF, or at a torn tail (trailing bytes with no
/// newline — including a tail that ends mid multi-byte UTF-8 character, which
/// is why this works on raw bytes and never decodes).
///
/// Shared by [`truncate_jsonl`] and [`truncate_trace_jsonl`] so both recover
/// torn streams identically.
fn scan_complete_lines(
    path: &Path,
    file: &fs::File,
    mut keep: impl FnMut(u64, &[u8]) -> bool,
) -> Result<ScanOutcome, String> {
    let mut reader = std::io::BufReader::new(file);
    let mut line: Vec<u8> = Vec::new();
    let mut offset = 0u64;
    let mut lines = 0u64;
    loop {
        line.clear();
        let n = reader
            .read_until(b'\n', &mut line)
            .map_err(|e| format!("cannot read stream {path:?}: {e}"))?;
        if n == 0 || line.last() != Some(&b'\n') {
            // EOF, or a torn tail with no newline: nothing more to keep.
            return Ok(ScanOutcome { offset, lines });
        }
        if !keep(lines, &line[..line.len() - 1]) {
            return Ok(ScanOutcome { offset, lines });
        }
        offset += n as u64;
        lines += 1;
    }
}

/// Truncates a JSONL run stream to its first `runs` complete lines, dropping
/// anything beyond the checkpoint watermark — lines a crashed session wrote
/// past its last manifest, including a torn final line (even one cut mid
/// multi-byte UTF-8 character).
///
/// Returns the retained byte length.  Errors **without truncating** if the
/// stream holds fewer than `runs` complete lines: the runner flushes the sink
/// before every manifest write, so a shorter stream means either the two
/// files do not belong together, or a power loss dropped tail writes a
/// non-syncing writer had only handed to the OS cache (stream through
/// [`SyncOnFlushFile`](crate::SyncOnFlushFile) to rule that out).
pub fn truncate_jsonl(path: &Path, runs: u64) -> Result<u64, String> {
    let file = fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .map_err(|e| format!("cannot open JSONL stream {path:?}: {e}"))?;
    let scan = scan_complete_lines(path, &file, |index, _| index < runs)?;
    if scan.lines < runs {
        return Err(format!(
            "JSONL stream {path:?} holds only {} complete lines but the \
             checkpoint covers {runs} runs — either the stream does not belong to this \
             checkpoint, or a power loss dropped tail writes that never reached stable \
             storage (stream through a sync-on-flush writer to prevent this)",
            scan.lines
        ));
    }
    file.set_len(scan.offset).map_err(|e| format!("cannot truncate JSONL stream {path:?}: {e}"))?;
    file.sync_all().map_err(|e| format!("cannot sync JSONL stream {path:?}: {e}"))?;
    Ok(scan.offset)
}

/// Truncates a JSONL **trace** stream to the lines belonging to runs below
/// `runs_done`, dropping everything a crashed session wrote past its last
/// manifest — including a torn final line cut mid multi-byte UTF-8 character.
///
/// Trace lines lead with `{"run":N,` (the canonical field order the
/// deterministic trace writer emits), which is how each line's run index is
/// recovered without parsing the full record.  Unlike [`truncate_jsonl`] this
/// is lenient: traces are optional side artifacts, so a missing file is fine
/// (tracing may have been off) and fewer lines than the watermark is not an
/// error — a fresh session simply appends from wherever the stream ends.
///
/// Returns the retained byte length.
pub fn truncate_trace_jsonl(path: &Path, runs_done: u64) -> Result<u64, String> {
    let file = match fs::OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(format!("cannot open trace stream {path:?}: {e}")),
    };
    let scan = scan_complete_lines(path, &file, |_, line| {
        line_run_index(line).is_some_and(|run| run < runs_done)
    })?;
    let len = file.metadata().map_err(|e| format!("cannot stat trace stream {path:?}: {e}"))?.len();
    if scan.offset < len {
        file.set_len(scan.offset)
            .map_err(|e| format!("cannot truncate trace stream {path:?}: {e}"))?;
        file.sync_all().map_err(|e| format!("cannot sync trace stream {path:?}: {e}"))?;
    }
    Ok(scan.offset)
}

/// Extracts the run index from a line's canonical `{"run":N,` prefix (both
/// the run-stream and trace-stream writers emit it first), operating on raw
/// bytes so torn/invalid UTF-8 elsewhere cannot panic.  Shared with the shard
/// segment validation of [`crate::shard`].
pub(crate) fn line_run_index(line: &[u8]) -> Option<u64> {
    let rest = line.strip_prefix(b"{\"run\":")?;
    let digits: Vec<u8> = rest.iter().copied().take_while(u8::is_ascii_digit).collect();
    if digits.is_empty() {
        return None;
    }
    std::str::from_utf8(&digits).ok()?.parse().ok()
}

/// Reads a checkpoint manifest's raw JSON payload — the first line of the
/// file, without the integrity frame — for tooling that wants to inspect a
/// manifest without restoring it.
pub fn read_manifest_text(path: &Path) -> Result<String, String> {
    let mut text = String::new();
    fs::File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("cannot read checkpoint manifest {path:?}: {e}"))?;
    Ok(text.split_once('\n').map(|(payload, _)| payload.to_string()).unwrap_or(text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("karyon-ckpt-{}-{name}", std::process::id()))
    }

    #[test]
    fn manifest_round_trips_every_quantile_state_bit_exactly() {
        // Build a synthetic accumulator with both quantile states and
        // non-trivial floating-point content.
        let mut exact = MetricAccumulator::new(None);
        for v in [0.1, -2.5e17, 3.3333333333333335, f64::MIN_POSITIVE] {
            exact.record(v);
        }
        let mut ranged = MetricAccumulator::new(Some((0.0, 1.0)));
        for v in [0.25, 0.5, 1.5, -0.5] {
            ranged.record(v);
        }
        let mut metrics = std::collections::BTreeMap::new();
        metrics.insert("exact".to_string(), exact);
        metrics.insert("ranged".to_string(), ranged);
        let point = PointAccumulator { runs: 4, suspect_runs: 1, metrics };
        let acc = CampaignAccumulator::from_points(vec![point, PointAccumulator::default()]);

        let campaign = Campaign::new("rt", 9).with_chunk_size(2);
        let text = render_manifest(&campaign, 4, 2, 4, &acc);
        let manifest = CheckpointManifest::parse(&text).expect("well-formed manifest");
        assert_eq!(manifest.campaign, "rt");
        assert_eq!(manifest.chunks_done, 2);
        assert_eq!(manifest.runs_done, 4);
        assert_eq!(manifest.fingerprint, campaign.fingerprint());

        let restored = manifest.into_accumulator();
        assert_eq!(restored.points().len(), 2);
        // Continuing both accumulators must produce identical summaries: the
        // restore is bit-exact, including the ±∞ min/max sentinels of the
        // empty second point.
        for (a, b) in acc.points().iter().zip(restored.points()) {
            assert_eq!(a.runs, b.runs);
            assert_eq!(a.suspect_runs, b.suspect_runs);
            let left = a.summaries();
            let right = b.summaries();
            assert_eq!(left, right);
            for (name, s) in &left {
                assert_eq!(s.mean.to_bits(), right[name].mean.to_bits(), "{name}");
                assert_eq!(s.std_dev.to_bits(), right[name].std_dev.to_bits(), "{name}");
            }
        }
    }

    #[test]
    fn manifest_rejects_foreign_and_corrupt_files() {
        assert!(CheckpointManifest::parse("{}").unwrap_err().contains("format"));
        assert!(CheckpointManifest::parse("not json").unwrap_err().contains("JSON error"));
        let ok = render_manifest(
            &Campaign::new("x", 1),
            0,
            0,
            0,
            &CampaignAccumulator::from_points(vec![]),
        );
        assert!(CheckpointManifest::parse(&ok).is_ok());
        let wrong_version = ok.replace("\"version\":1", "\"version\":99");
        assert!(CheckpointManifest::parse(&wrong_version).unwrap_err().contains("version"));
    }

    #[test]
    fn atomic_write_replaces_the_manifest_in_one_step() {
        let path = temp_path("atomic.json");
        let ckpt = Checkpointer::new(&path).every_chunks(3);
        assert!(ckpt.due(3) && !ckpt.due(4));
        ckpt.write("{\"first\": true}").expect("writable temp dir");
        ckpt.write("{\"second\": true}").expect("writable temp dir");
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("second"));
        assert!(!path.with_extension("tmp").exists(), "the temp file must be renamed away");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_jsonl_cuts_torn_tails_and_rejects_short_streams() {
        let path = temp_path("stream.jsonl");
        fs::write(&path, "{\"run\":0}\n{\"run\":1}\n{\"run\":2}\n{\"ru").unwrap();
        // Keep two complete lines; the third line and the torn tail go.
        let kept = truncate_jsonl(&path, 2).expect("enough lines");
        assert_eq!(kept, 20);
        assert_eq!(fs::read_to_string(&path).unwrap(), "{\"run\":0}\n{\"run\":1}\n");
        // Truncating to more lines than exist is an error, not silent loss.
        let err = truncate_jsonl(&path, 5).unwrap_err();
        assert!(err.contains("2 complete lines"), "{err}");
        // Truncating to zero empties the stream.
        truncate_jsonl(&path, 0).expect("zero is fine");
        assert_eq!(fs::read_to_string(&path).unwrap(), "");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn the_integrity_frame_guards_the_manifest_on_disk() {
        let path = temp_path("frame.json");
        let campaign = Campaign::new("framed", 3).with_chunk_size(2);
        let payload =
            render_manifest(&campaign, 0, 0, 0, &CampaignAccumulator::from_points(vec![]));
        let ckpt = Checkpointer::new(&path);
        ckpt.write(&payload).expect("writable temp dir");
        CheckpointManifest::load(&path).expect("a pristine manifest loads");

        let pristine = fs::read(&path).unwrap();
        let assert_refused = |bytes: &[u8], needle: &str| {
            fs::write(&path, bytes).unwrap();
            let before = fs::read(&path).unwrap();
            let err = CheckpointManifest::load(&path).unwrap_err();
            assert!(err.contains(needle), "expected {needle:?} in: {err}");
            assert!(err.contains("recovery:"), "refusals carry a recovery hint: {err}");
            assert_eq!(fs::read(&path).unwrap(), before, "failed loads never touch the disk");
        };

        // Truncated mid-payload: no newline-terminated payload at all.
        assert_refused(&pristine[..payload.len() / 2], "truncated mid-write");
        // Truncated right after the payload: the frame line is gone.
        assert_refused(&pristine[..payload.len() + 1], "integrity frame line after the payload");
        // Truncated inside the frame line.
        assert_refused(&pristine[..payload.len() + 10], "integrity frame");
        // A single flipped payload byte fails the hash check.
        let mut flipped = pristine.clone();
        flipped[10] ^= 0x20;
        assert_refused(&flipped, "hash mismatch");
        // A spliced (shortened) payload under the old frame fails on length.
        let mut spliced = payload.replace("\"campaign\":\"framed\"", "\"campaign\":\"f\"");
        spliced.push('\n');
        spliced.push_str(&integrity_frame(&payload));
        spliced.push('\n');
        assert_refused(spliced.as_bytes(), "length mismatch");

        // A version bump with a *valid* frame gets past the integrity check
        // and is refused by the parser with the version message.
        let bumped = payload.replace("\"version\":1", "\"version\":99");
        let mut file = format!("{bumped}\n{}\n", integrity_frame(&bumped));
        fs::write(&path, &file).unwrap();
        let err = CheckpointManifest::load(&path).unwrap_err();
        assert!(err.contains("unsupported manifest version 99"), "{err}");

        // Not UTF-8 at all.
        file.truncate(0);
        assert_refused(&[0xFF, 0xFE, 0x00, b'\n', b'x'], "not valid UTF-8");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_handles_multibyte_utf8_torn_tails_and_empty_files() {
        // A torn tail that stops mid-way through the two-byte UTF-8 encoding
        // of 'é' (0xC3 0xA9): the byte-level scanner must shrug it off where
        // a read_to_string-based implementation would refuse the whole file.
        let jsonl = temp_path("utf8.jsonl");
        let mut bytes = Vec::new();
        bytes.extend_from_slice("{\"run\":0,\"s\":\"é\"}\n{\"run\":1,\"s\":\"é\"}\n".as_bytes());
        bytes.extend_from_slice(b"{\"run\":2,\"s\":\"\xC3");
        fs::write(&jsonl, &bytes).unwrap();
        let kept = truncate_jsonl(&jsonl, 2).expect("torn multi-byte tail is recoverable");
        assert_eq!(kept as usize, "{\"run\":0,\"s\":\"é\"}\n{\"run\":1,\"s\":\"é\"}\n".len());

        // Zero-length streams: watermark 0 is fine, anything more errors
        // without touching the file.
        fs::write(&jsonl, b"").unwrap();
        assert_eq!(truncate_jsonl(&jsonl, 0).unwrap(), 0);
        let err = truncate_jsonl(&jsonl, 1).unwrap_err();
        assert!(err.contains("0 complete lines"), "{err}");
        assert_eq!(fs::read(&jsonl).unwrap(), b"", "failed truncation never writes");
        fs::remove_file(&jsonl).ok();

        // The trace variant shares the scanner: same torn tail, but lenient —
        // it keeps lines below the watermark and never errors on short files.
        let trace = temp_path("utf8.trace.jsonl");
        let mut bytes = Vec::new();
        bytes.extend_from_slice("{\"run\":0,\"name\":\"é\"}\n{\"run\":1,\"x\":1}\n".as_bytes());
        bytes.extend_from_slice(b"{\"run\":2,\"s\":\"\xC3");
        fs::write(&trace, &bytes).unwrap();
        let kept = truncate_trace_jsonl(&trace, 2).expect("lenient on torn tails");
        assert_eq!(kept as usize, "{\"run\":0,\"name\":\"é\"}\n{\"run\":1,\"x\":1}\n".len());
        // Watermark below the stream cuts back run 1 too.
        assert!(truncate_trace_jsonl(&trace, 1).unwrap() < kept);
        // Zero-length and missing files are fine.
        fs::write(&trace, b"").unwrap();
        assert_eq!(truncate_trace_jsonl(&trace, 7).unwrap(), 0);
        fs::remove_file(&trace).ok();
        assert_eq!(truncate_trace_jsonl(&trace, 7).unwrap(), 0, "missing trace is not an error");
    }

    #[test]
    #[should_panic(expected = "cadence must be at least one chunk")]
    fn zero_cadence_rejected() {
        let _ = Checkpointer::new("x").every_chunks(0);
    }

    #[test]
    #[should_panic(expected = "at least one chunk")]
    fn zero_session_budget_rejected() {
        let _ = Checkpointer::new("x").max_chunks_per_session(0);
    }
}

//! The `Scenario` trait and the per-run metric record.

use std::collections::BTreeMap;

use karyon_sim::{Engine, SimTime};
use karyon_telemetry::{trace, AttrValue};

use crate::grid::ParamGrid;
use crate::spec::ScenarioSpec;

/// The named metrics produced by one scenario run.
///
/// Metrics are flat `name → f64` pairs so the campaign runner can aggregate
/// any scenario family without knowing its result type; booleans are encoded
/// as 0/1 (their mean over a sweep is then a rate).  The map is a `BTreeMap`
/// so metric enumeration — and therefore report layout and JSON output — is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    metrics: BTreeMap<String, f64>,
    /// Past-time schedules clamped by the simulation engine during this run
    /// (see `karyon_sim::Engine::clamped_schedules`).  A non-zero value marks
    /// the run as causality-suspect in the campaign report.
    pub clamped_schedules: u64,
}

impl RunRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        RunRecord::default()
    }

    /// Sets one metric.  Non-finite values are stored as-is and skipped by
    /// the aggregators, which keeps a broken metric visible in a single-run
    /// record without poisoning campaign statistics.
    pub fn set(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), value);
    }

    /// Sets a boolean metric as 0/1 (its campaign mean is a rate).
    pub fn set_flag(&mut self, name: &str, value: bool) {
        self.set(name, if value { 1.0 } else { 0.0 });
    }

    /// Looks up one metric.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics.get(name).copied()
    }

    /// All metrics in deterministic (sorted-name) order.
    pub fn metrics(&self) -> &BTreeMap<String, f64> {
        &self.metrics
    }

    /// Folds an engine's causality accounting into the record.
    ///
    /// Part of the Scenario-to-runner contract: every `Engine`-driven family
    /// must call this (once per engine, after the run) so the campaign can
    /// flag causality-suspect runs — otherwise a model that schedules into
    /// the past is silently clamped again, which is exactly what the counter
    /// exists to prevent.
    /// When a [trace collection scope](karyon_telemetry::trace::collect) is
    /// active (a campaign running with a trace sink attached), this also
    /// emits an `engine.run` summary span — so every engine-driven family is
    /// traceable without touching its code.
    pub fn absorb_engine_clamps<S, E>(&mut self, engine: &Engine<S, E>) {
        self.clamped_schedules += engine.clamped_schedules();
        if trace::active() {
            trace::span(
                "engine.run",
                SimTime::ZERO,
                engine.now(),
                &[
                    ("processed", AttrValue::U64(engine.processed())),
                    ("pending", AttrValue::U64(engine.pending() as u64)),
                    ("clamped", AttrValue::U64(engine.clamped_schedules())),
                ],
            );
        }
    }
}

/// A named scenario family: anything that can turn a [`ScenarioSpec`] into a
/// [`RunRecord`].
///
/// Implementations must be deterministic — the same spec (including its seed)
/// must produce the same record — and `Send + Sync`, because the campaign
/// runner executes runs on worker threads.  Families that drive a
/// `karyon_sim::Engine` must fold its clamp counter into the record via
/// [`RunRecord::absorb_engine_clamps`] so campaigns can flag
/// causality-suspect runs.
pub trait Scenario: Send + Sync {
    /// The family name this scenario registers under.
    fn name(&self) -> &str;

    /// Runs one instance described by `spec` and returns its metrics.
    fn run(&self, spec: &ScenarioSpec) -> RunRecord;

    /// The pre-agreed `(lo, hi)` aggregation range of a metric, if the family
    /// declares one.
    ///
    /// With a declared range, campaign quantiles for the metric stream
    /// through a fixed-bucket histogram from the first sample — O(1) memory
    /// per (point, metric) no matter how many runs — at the cost of
    /// one-bucket quantile resolution even for small sweeps.  Without one,
    /// quantiles are exact up to
    /// [`QUANTILE_EXACT_LIMIT`](crate::report::QUANTILE_EXACT_LIMIT) samples
    /// and switch to a range derived from that prefix beyond it.  Declare
    /// ranges for continuous metrics with known scales (latencies, delays,
    /// ratios measured against a bound); leave 0/1 flag metrics undeclared so
    /// small sweeps report only values that actually occurred.
    ///
    /// The declaration must be a pure function of the metric name — the
    /// bounded-memory merge relies on every chunk agreeing on it.
    fn metric_range(&self, metric: &str) -> Option<(f64, f64)> {
        let _ = metric;
        None
    }

    /// The family's parameter domain: one grid axis per recognised parameter,
    /// sweeping a representative set of values with the **first value of each
    /// axis being the parameter's default**.
    ///
    /// This is the machine-readable contract behind
    /// `karyon-campaign list-families --output json`, the registry coverage
    /// tests, and [`Scenario::default_spec`].  A family with no parameters
    /// returns the empty grid.  Like [`Scenario::metric_range`], the
    /// declaration must be pure (constant per family).
    fn param_domain(&self) -> ParamGrid {
        ParamGrid::new()
    }

    /// True when this family drives a `karyon_sim::Engine` and therefore
    /// participates in the clamp audit: the registry-wide guard test asserts
    /// that every engine-driven builtin reports zero causality-suspect runs
    /// on its default spec, so a family that schedules into the past cannot
    /// land silently.  Families that override this must also call
    /// [`RunRecord::absorb_engine_clamps`].
    fn engine_driven(&self) -> bool {
        false
    }

    /// A spec exercising this family at its defaults: every
    /// [`Scenario::param_domain`] axis pinned to its first (default) value,
    /// seed and duration as in [`ScenarioSpec::new`].
    fn default_spec(&self) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(self.name());
        for (name, values) in self.param_domain().axes() {
            spec = spec.with(name, values[0].clone());
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_encode_as_rates() {
        let mut r = RunRecord::new();
        r.set_flag("collision", true);
        r.set_flag("hazard", false);
        r.set("gap", 1.25);
        assert_eq!(r.get("collision"), Some(1.0));
        assert_eq!(r.get("hazard"), Some(0.0));
        assert_eq!(r.get("gap"), Some(1.25));
        assert_eq!(r.metrics().len(), 3);
        assert_eq!(r.clamped_schedules, 0);
    }
}

//! The shard/merge protocol: one campaign, split across machines.
//!
//! A campaign's canonical chunk range is the natural distribution unit: every
//! chunk reduces sequentially in canonical run order, and chunk partials merge
//! in canonical chunk order — so *any* contiguous window of chunks can execute
//! on its own machine, with its own worker count, and the global reduction is
//! reassembled later.  This module is the coordination-free file/dir half of
//! that protocol (the live [`ShardCoordinator`](../../karyon_transport/index.html)
//! state machine in `karyon-transport` hands windows out over a network):
//!
//! * [`ShardPlan`] — splits the `[0, chunks)` canonical range into
//!   `shard_count` balanced, contiguous [`ShardSlice`]s;
//! * [`ShardManifest`] — what one shard session persists: the campaign's
//!   identity fingerprint, the slice bounds and the slice's **per-chunk
//!   partials** (every `f64` as its IEEE-754 bit pattern), written atomically
//!   with the same integrity frame a checkpoint manifest carries;
//! * [`validate_shard_set`] / [`merge_shards`] — refuse foreign, tampered,
//!   overlapping or gapped shard sets, then replay every shard's partials in
//!   global canonical chunk order through the exact left-fold a
//!   single-machine run performs;
//! * [`read_run_segment`] / [`read_trace_segment`] — validate a shard's JSONL
//!   run/trace segment against its global run range, so segments concatenate
//!   byte-exactly into the stream an uninterrupted run writes.
//!
//! ## Why per-chunk partials, not per-shard aggregates
//!
//! Floating-point merging is not associative: folding shard-level aggregates
//! together would regroup the reduction and drift in the last ulp, and the
//! exact-to-histogram quantile spill depends on how many samples the
//! *canonical prefix* has seen.  Persisting every chunk partial — the same
//! granularity the streaming runner merges at — lets `merge` reproduce the
//! single-machine floating-point operation sequence exactly, which is what
//! makes the merged [`CampaignReport`] **byte-identical** to an uninterrupted
//! run's (the property `tests/shard.rs` pins for arbitrary shard counts,
//! per-shard worker counts and merge orders).
//!
//! ## On-disk layout
//!
//! The `karyon-campaign` CLI writes, per shard `I` of `N`, into one shared
//! directory:
//!
//! ```text
//! <dir>/<name>.shard-I-of-N.manifest.json    # ShardManifest + integrity frame
//! <dir>/<name>.shard-I-of-N.jsonl            # run segment (global run indices)
//! <dir>/<name>.shard-I-of-N.trace.jsonl      # trace segment (optional)
//! ```
//!
//! A faulted shard session is simply rerun: the shard is the unit of retry
//! (there is no checkpointing inside a shard window), and the manifest is
//! only written after the window completes, so a crash can never leave a
//! half-true manifest behind.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::aggregate::ChunkPartial;
use crate::campaign::Campaign;
use crate::checkpoint::{
    integrity_frame, line_run_index, parse_point, render_point, write_framed_atomic,
};
use crate::json::{array, JsonValue, ObjectWriter};
use crate::report::CampaignReport;

/// Shard manifest format tag, checked on load.
const FORMAT: &str = "karyon-campaign-shard";
/// Shard manifest format version, checked on load.
const VERSION: u64 = 1;

/// One shard's contiguous window of the canonical chunk range:
/// `[start_chunk, end_chunk)`, as shard `index` of `shard_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSlice {
    /// This shard's index, `0..shard_count`.
    pub index: usize,
    /// Total shards in the plan.
    pub shard_count: usize,
    /// First canonical chunk of the window (inclusive).
    pub start_chunk: usize,
    /// End of the window (exclusive).
    pub end_chunk: usize,
}

impl ShardSlice {
    /// Canonical chunks in this slice.
    pub fn chunk_count(&self) -> usize {
        self.end_chunk - self.start_chunk
    }

    /// True when the slice covers no chunks (legal when a plan has more
    /// shards than the campaign has chunks).
    pub fn is_empty(&self) -> bool {
        self.start_chunk == self.end_chunk
    }

    /// The global run range `[start, end)` this slice covers, for a campaign
    /// with the given chunk size and total run count — the exact run indices
    /// the shard's JSONL/trace segments must carry.
    pub fn run_range(&self, chunk_size: usize, total_runs: u64) -> (u64, u64) {
        let start = (self.start_chunk as u64 * chunk_size as u64).min(total_runs);
        let end = (self.end_chunk as u64 * chunk_size as u64).min(total_runs);
        (start, end)
    }
}

/// A balanced, contiguous split of a campaign's canonical chunk range into
/// shard windows.
///
/// Every machine that derives the plan from the same campaign definition and
/// shard count computes the same slices — no coordination needed.  Chunks are
/// dealt contiguously (shard boundaries never interleave) because the merge
/// replays chunks in global canonical order: contiguity is what lets each
/// shard's JSONL/trace segment concatenate byte-exactly.  The first
/// `chunks % shard_count` shards carry one extra chunk; when the plan has
/// more shards than chunks, the tail slices are legally empty.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    chunks: usize,
    slices: Vec<ShardSlice>,
}

impl ShardPlan {
    /// Splits `chunks` canonical chunks into `shard_count` contiguous slices.
    ///
    /// # Panics
    /// Panics if `shard_count` is zero.
    pub fn new(chunks: usize, shard_count: usize) -> Self {
        assert!(shard_count > 0, "a shard plan needs at least one shard");
        let base = chunks / shard_count;
        let extra = chunks % shard_count;
        let mut slices = Vec::with_capacity(shard_count);
        let mut start = 0usize;
        for index in 0..shard_count {
            let len = base + usize::from(index < extra);
            slices.push(ShardSlice {
                index,
                shard_count,
                start_chunk: start,
                end_chunk: start + len,
            });
            start += len;
        }
        debug_assert_eq!(start, chunks);
        ShardPlan { chunks, slices }
    }

    /// The plan for `campaign`'s canonical chunk range.
    ///
    /// # Panics
    /// Panics if `shard_count` is zero.
    pub fn for_campaign(campaign: &Campaign, shard_count: usize) -> Self {
        ShardPlan::new(campaign.canonical_chunks(), shard_count)
    }

    /// Total canonical chunks the plan covers.
    pub fn chunks(&self) -> usize {
        self.chunks
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slices.len()
    }

    /// The slices, in shard (and canonical chunk) order.
    pub fn slices(&self) -> &[ShardSlice] {
        &self.slices
    }

    /// Shard `index`'s slice.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn slice(&self, index: usize) -> ShardSlice {
        self.slices[index]
    }
}

/// What one shard session persists: the campaign identity it executed a
/// window of, the window bounds, and the window's per-chunk aggregation
/// partials in canonical chunk order.
///
/// Serialised like a checkpoint manifest — single-line JSON with every `f64`
/// as its IEEE-754 bit pattern, followed by an
/// [`integrity_frame`] line — and written atomically,
/// so [`ShardManifest::load`] either sees a manifest exactly as a completed
/// shard session wrote it, or refuses with a recovery hint.
#[derive(Debug, Clone)]
pub struct ShardManifest {
    /// The campaign name (informational; identity is the fingerprint).
    pub campaign: String,
    /// The campaign seed.
    pub seed: u64,
    /// Fingerprint of the campaign definition ([`Campaign::fingerprint`]);
    /// [`validate_shard_set`] refuses a mismatch.
    pub fingerprint: u64,
    /// The canonical chunk size the partials were reduced with.
    pub chunk_size: usize,
    /// Total runs of the full campaign.
    pub total_runs: u64,
    /// This shard's index, `0..shard_count`.
    pub shard_index: usize,
    /// Total shards in the plan this manifest belongs to.
    pub shard_count: usize,
    /// First canonical chunk of the shard's window (inclusive).
    pub start_chunk: usize,
    /// End of the window (exclusive).
    pub end_chunk: usize,
    /// The window's per-chunk partials, in canonical chunk order.
    chunks: Vec<ChunkPartial>,
}

impl ShardManifest {
    /// Builds the manifest of one completed shard session from the campaign
    /// it executed, the slice it covered and the per-chunk partials
    /// [`Campaign::run_shard`] returned.
    ///
    /// Errors if the partial count does not match the slice's chunk count —
    /// the caller handed over an incomplete window.
    pub fn new(
        campaign: &Campaign,
        slice: ShardSlice,
        chunks: Vec<ChunkPartial>,
    ) -> Result<ShardManifest, String> {
        if chunks.len() != slice.chunk_count() {
            return Err(format!(
                "shard {} of {} covers chunks [{}, {}) but {} chunk partials were supplied",
                slice.index,
                slice.shard_count,
                slice.start_chunk,
                slice.end_chunk,
                chunks.len()
            ));
        }
        Ok(ShardManifest {
            campaign: campaign.name().to_string(),
            seed: campaign.seed(),
            fingerprint: campaign.fingerprint(),
            chunk_size: campaign.chunk_size(),
            total_runs: campaign.run_count(),
            shard_index: slice.index,
            shard_count: slice.shard_count,
            start_chunk: slice.start_chunk,
            end_chunk: slice.end_chunk,
            chunks,
        })
    }

    /// The slice this manifest covers.
    pub fn slice(&self) -> ShardSlice {
        ShardSlice {
            index: self.shard_index,
            shard_count: self.shard_count,
            start_chunk: self.start_chunk,
            end_chunk: self.end_chunk,
        }
    }

    /// The window's per-chunk partials, in canonical chunk order.
    pub fn chunks(&self) -> &[ChunkPartial] {
        &self.chunks
    }

    /// The global run range `[start, end)` this shard's JSONL/trace segments
    /// must carry.
    pub fn run_range(&self) -> (u64, u64) {
        self.slice().run_range(self.chunk_size, self.total_runs)
    }

    /// Serialises the manifest payload (without the integrity frame).
    pub fn render(&self) -> String {
        let chunks: Vec<String> = self
            .chunks
            .iter()
            .enumerate()
            .map(|(offset, partial)| render_chunk(self.start_chunk + offset, partial))
            .collect();
        let mut o = ObjectWriter::new();
        o.string("format", FORMAT)
            .u64("version", VERSION)
            .string("campaign", &self.campaign)
            .u64("seed", self.seed)
            .u64("fingerprint", self.fingerprint)
            .u64("chunk_size", self.chunk_size as u64)
            .u64("total_runs", self.total_runs)
            .u64("shard_index", self.shard_index as u64)
            .u64("shard_count", self.shard_count as u64)
            .u64("start_chunk", self.start_chunk as u64)
            .u64("end_chunk", self.end_chunk as u64)
            .raw("chunks", &array(&chunks));
        o.finish()
    }

    /// Parses a manifest from its JSON payload text.
    pub fn parse(text: &str) -> Result<ShardManifest, String> {
        let doc = JsonValue::parse(text)?;
        let str_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field {key:?}"))
        };
        let u64_field = |key: &str| {
            doc.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("missing or non-integer field {key:?}"))
        };
        if str_field("format")? != FORMAT {
            return Err(format!("not a {FORMAT} file"));
        }
        if u64_field("version")? != VERSION {
            return Err(format!(
                "unsupported shard manifest version {} (this build reads {VERSION})",
                u64_field("version")?
            ));
        }
        let start_chunk = u64_field("start_chunk")? as usize;
        let end_chunk = u64_field("end_chunk")? as usize;
        if start_chunk > end_chunk {
            return Err(format!("inverted shard window [{start_chunk}, {end_chunk})"));
        }
        let chunk_values = doc
            .get("chunks")
            .and_then(JsonValue::as_array)
            .ok_or("missing or non-array field \"chunks\"")?;
        if chunk_values.len() != end_chunk - start_chunk {
            return Err(format!(
                "shard window [{start_chunk}, {end_chunk}) must carry {} chunk partials, \
                 found {}",
                end_chunk - start_chunk,
                chunk_values.len()
            ));
        }
        let chunks = chunk_values
            .iter()
            .enumerate()
            .map(|(offset, value)| parse_chunk(value, start_chunk + offset))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardManifest {
            campaign: str_field("campaign")?,
            seed: u64_field("seed")?,
            fingerprint: u64_field("fingerprint")?,
            chunk_size: u64_field("chunk_size")? as usize,
            total_runs: u64_field("total_runs")?,
            shard_index: u64_field("shard_index")? as usize,
            shard_count: u64_field("shard_count")? as usize,
            start_chunk,
            end_chunk,
            chunks,
        })
    }

    /// Writes the manifest atomically (temp file + fsync + rename), payload
    /// line plus integrity frame line — the same discipline checkpoint
    /// manifests use, so a crash can never leave a torn manifest behind.
    pub fn write(&self, path: &Path) -> Result<(), String> {
        write_framed_atomic(path, &self.render(), "shard manifest")
    }

    /// Loads a manifest file, verifying its integrity frame before parsing.
    ///
    /// The frame is byte-compared against the one the payload implies, which
    /// catches truncation, bit rot, splicing and manual edits in one check.
    /// Corrupt manifests are refused with a recovery hint; the file on disk
    /// is never touched.
    pub fn load(path: &Path) -> Result<ShardManifest, String> {
        let text = fs::read(path)
            .map_err(|e| format!("cannot read shard manifest {path:?}: {e}"))
            .and_then(|bytes| {
                String::from_utf8(bytes).map_err(|_| {
                    refusal(path, "the file is not valid UTF-8 — it is corrupt or not a manifest")
                })
            })?;
        let (payload, rest) = text.split_once('\n').ok_or_else(|| {
            refusal(
                path,
                "no newline-terminated manifest payload — the file was truncated mid-write",
            )
        })?;
        let frame_line = rest.lines().next().unwrap_or("").trim();
        if frame_line != integrity_frame(payload) {
            return Err(refusal(
                path,
                "the integrity frame does not match the payload — the manifest was \
                 truncated, spliced or edited after it was written",
            ));
        }
        Self::parse(payload).map_err(|e| refusal(path, &e))
    }
}

/// Renders one canonical chunk's partial: the global chunk index plus each
/// touched point's aggregate (bit-exact, via the checkpoint representation).
fn render_chunk(global_chunk: usize, partial: &ChunkPartial) -> String {
    let mut points = ObjectWriter::new();
    for (index, point) in &partial.points {
        points.raw(&index.to_string(), &render_point(point));
    }
    let mut o = ObjectWriter::new();
    o.u64("chunk", global_chunk as u64).raw("points", &points.finish());
    o.finish()
}

/// Parses one chunk partial, checking it sits at the global chunk index its
/// array position implies.
fn parse_chunk(value: &JsonValue, expected_chunk: usize) -> Result<ChunkPartial, String> {
    let chunk = value
        .get("chunk")
        .and_then(JsonValue::as_u64)
        .ok_or("chunk partial is missing \"chunk\"")?;
    if chunk != expected_chunk as u64 {
        return Err(format!(
            "chunk partial claims global chunk {chunk} but sits at position {expected_chunk} \
             of the shard window"
        ));
    }
    let members = value
        .get("points")
        .and_then(JsonValue::as_object)
        .ok_or("chunk partial is missing \"points\"")?;
    let mut points = BTreeMap::new();
    for (key, point) in members {
        let index: usize = key
            .parse()
            .map_err(|_| format!("chunk partial has a non-integer point key {key:?}"))?;
        points.insert(index, parse_point(point).map_err(|e| format!("point {index}: {e}"))?);
    }
    Ok(ChunkPartial { points })
}

/// A refusal message for a corrupt shard manifest, with the recovery hint
/// attached: unlike a checkpoint, a shard is the unit of retry, so the fix is
/// always to rerun that one shard session.
fn refusal(path: &Path, why: &str) -> String {
    format!(
        "shard manifest {path:?}: {why}; refusing to merge it — recovery: rerun that shard \
         session (`karyon-campaign shard`) to regenerate the manifest and its JSONL/trace \
         segments, then merge again"
    )
}

/// Checks that `manifests` form exactly the shard set of `campaign`: every
/// manifest carries the campaign's fingerprint, chunk size and run count, the
/// declared shard counts agree with the number of manifests, shard indices
/// are distinct, and the windows tile the canonical chunk range `[0, chunks)`
/// with no overlap and no gap.
///
/// The manifests may arrive in any order (merge sorts them canonically); a
/// refusal names the first offending shard.  This is the validation behind
/// the `karyon-campaign merge` subcommand's shard-set exit code.
pub fn validate_shard_set(campaign: &Campaign, manifests: &[ShardManifest]) -> Result<(), String> {
    if manifests.is_empty() {
        return Err("no shard manifests to merge".to_string());
    }
    let fingerprint = campaign.fingerprint();
    let chunks = campaign.canonical_chunks();
    for m in manifests {
        if m.fingerprint != fingerprint {
            return Err(format!(
                "shard {} fingerprint {:#018x} does not match campaign {:?} ({fingerprint:#018x}) \
                 — the spec (name, seed, chunk size, entries or grids) differs from the one the \
                 shard executed",
                m.shard_index,
                m.fingerprint,
                campaign.name()
            ));
        }
        if m.chunk_size != campaign.chunk_size() {
            return Err(format!(
                "shard {} was reduced with chunk size {} but campaign {:?} uses {} — merging \
                 would regroup the floating-point reduction",
                m.shard_index,
                m.chunk_size,
                campaign.name(),
                campaign.chunk_size()
            ));
        }
        if m.total_runs != campaign.run_count() {
            return Err(format!(
                "shard {} covers a campaign of {} runs but {:?} expands to {}",
                m.shard_index,
                m.total_runs,
                campaign.name(),
                campaign.run_count()
            ));
        }
        if m.shard_count != manifests.len() {
            return Err(format!(
                "shard {} declares a plan of {} shards but {} manifests were supplied — the \
                 set is incomplete or mixes plans",
                m.shard_index,
                m.shard_count,
                manifests.len()
            ));
        }
        if m.chunks.len() != m.end_chunk - m.start_chunk {
            return Err(format!(
                "shard {} window [{}, {}) carries {} chunk partials",
                m.shard_index,
                m.start_chunk,
                m.end_chunk,
                m.chunks.len()
            ));
        }
    }
    let mut seen = vec![false; manifests.len()];
    for m in manifests {
        if m.shard_index >= manifests.len() || seen[m.shard_index] {
            return Err(format!(
                "duplicate or out-of-range shard index {} in a {}-shard set",
                m.shard_index,
                manifests.len()
            ));
        }
        seen[m.shard_index] = true;
    }
    let mut ordered: Vec<&ShardManifest> = manifests.iter().collect();
    ordered.sort_by_key(|m| (m.start_chunk, m.end_chunk));
    let mut frontier = 0usize;
    for m in &ordered {
        if m.start_chunk < frontier {
            return Err(format!(
                "shard {} window [{}, {}) overlaps chunks already covered up to {frontier} — \
                 merging would double-count runs",
                m.shard_index, m.start_chunk, m.end_chunk
            ));
        }
        if m.start_chunk > frontier {
            return Err(format!(
                "gap in shard coverage: chunks [{frontier}, {}) are covered by no shard",
                m.start_chunk
            ));
        }
        frontier = m.end_chunk;
    }
    if frontier != chunks {
        return Err(format!(
            "gap in shard coverage: chunks [{frontier}, {chunks}) are covered by no shard"
        ));
    }
    Ok(())
}

/// Merges a complete shard set into the campaign's final report, replaying
/// every shard's per-chunk partials in **global canonical chunk order**
/// through the same left-fold a single-machine run performs — which is why
/// the result is byte-identical to an uninterrupted run's, whatever the
/// shard count, per-shard worker counts or the order the manifests arrive
/// in.
///
/// Refuses invalid sets (see [`validate_shard_set`]) before touching any
/// aggregation state.
pub fn merge_shards(
    campaign: &Campaign,
    mut manifests: Vec<ShardManifest>,
) -> Result<CampaignReport, String> {
    validate_shard_set(campaign, &manifests)?;
    manifests.sort_by_key(|m| m.start_chunk);
    campaign.finish_from_chunks(manifests.into_iter().flat_map(|m| m.chunks))
}

/// Reads and validates one shard's JSONL **run segment**: exactly
/// `end_run - start_run` newline-terminated lines whose canonical
/// `{"run":N,` prefixes count `start_run..end_run` in order, with no torn
/// tail.  Returns the raw bytes, ready to concatenate (in shard order) into
/// the stream an uninterrupted run writes.
///
/// Strict by design: a shard session that completed wrote exactly its
/// window's runs, so anything else means the segment belongs to a different
/// shard/plan or a faulted session's leftovers were never rerun.
pub fn read_run_segment(path: &Path, start_run: u64, end_run: u64) -> Result<Vec<u8>, String> {
    let bytes =
        fs::read(path).map_err(|e| format!("cannot read shard run segment {path:?}: {e}"))?;
    let mut expected = start_run;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|b| *b == b'\n') else {
            return Err(format!(
                "shard run segment {path:?} ends in a torn line — the shard session did not \
                 complete; rerun it"
            ));
        };
        let line = &bytes[pos..pos + nl];
        let run = line_run_index(line).ok_or_else(|| {
            format!("shard run segment {path:?} line does not carry a {{\"run\":N,...}} record")
        })?;
        if expected >= end_run || run != expected {
            return Err(format!(
                "shard run segment {path:?} carries run {run} where global run {expected} of \
                 window [{start_run}, {end_run}) belongs — the segment does not match the \
                 shard's window"
            ));
        }
        expected += 1;
        pos += nl + 1;
    }
    if expected != end_run {
        return Err(format!(
            "shard run segment {path:?} holds runs [{start_run}, {expected}) but the shard \
             window covers [{start_run}, {end_run}) — the segment is incomplete"
        ));
    }
    Ok(bytes)
}

/// Reads and validates one shard's JSONL **trace segment**: every line's
/// `{"run":N,` prefix must fall inside the shard's global run range
/// `[start_run, end_run)` and run indices must be non-decreasing (a run
/// emits any number of trace lines, including none).  A missing file is an
/// empty segment — tracing is an optional side artifact, exactly like
/// [`truncate_trace_jsonl`](crate::truncate_trace_jsonl) treats it — but a
/// torn tail or an out-of-range run is refused.
pub fn read_trace_segment(path: &Path, start_run: u64, end_run: u64) -> Result<Vec<u8>, String> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read shard trace segment {path:?}: {e}")),
    };
    let mut floor = start_run;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|b| *b == b'\n') else {
            return Err(format!(
                "shard trace segment {path:?} ends in a torn line — the shard session did not \
                 complete; rerun it"
            ));
        };
        let line = &bytes[pos..pos + nl];
        let run = line_run_index(line).ok_or_else(|| {
            format!("shard trace segment {path:?} line does not carry a {{\"run\":N,...}} record")
        })?;
        if run < floor || run >= end_run {
            return Err(format!(
                "shard trace segment {path:?} carries run {run} outside (or out of order \
                 within) the shard's window [{start_run}, {end_run})"
            ));
        }
        floor = run;
        pos += nl + 1;
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignEntry;
    use crate::grid::ParamGrid;
    use crate::registry::ScenarioRegistry;
    use crate::scenario::{RunRecord, Scenario};
    use crate::spec::ScenarioSpec;
    use std::path::PathBuf;
    use std::sync::Arc;

    struct Echo;

    impl Scenario for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn run(&self, spec: &ScenarioSpec) -> RunRecord {
            let mut record = RunRecord::new();
            record.set("seed_lo", (spec.seed % 1_000) as f64);
            record.set("x", spec.f64_or("x", 0.0) * 2.0);
            record
        }
    }

    fn echo_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(Arc::new(Echo));
        registry
    }

    fn echo_campaign() -> Campaign {
        Campaign::new("sharded", 77).with_chunk_size(3).entry(
            CampaignEntry::new("echo")
                .grid(ParamGrid::new().axis("x", [0.25, 1.75]))
                .replications(8),
        ) // 16 runs → 6 chunks (ragged tail of 1)
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("karyon-shard-{}-{name}", std::process::id()))
    }

    #[test]
    fn plan_splits_the_chunk_range_contiguously_and_balanced() {
        let plan = ShardPlan::new(7, 3);
        let bounds: Vec<(usize, usize)> =
            plan.slices().iter().map(|s| (s.start_chunk, s.end_chunk)).collect();
        assert_eq!(bounds, [(0, 3), (3, 5), (5, 7)], "first shards carry the remainder");
        assert_eq!(plan.chunks(), 7);
        assert_eq!(plan.shard_count(), 3);

        // More shards than chunks: the tail slices are legally empty.
        let plan = ShardPlan::new(2, 5);
        let lens: Vec<usize> = plan.slices().iter().map(ShardSlice::chunk_count).collect();
        assert_eq!(lens, [1, 1, 0, 0, 0]);
        assert!(plan.slice(4).is_empty());

        // Run ranges cap at the campaign's total runs (ragged final chunk).
        let slice = ShardSlice { index: 1, shard_count: 2, start_chunk: 3, end_chunk: 6 };
        assert_eq!(slice.run_range(3, 16), (9, 16));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_plans_are_rejected() {
        let _ = ShardPlan::new(4, 0);
    }

    #[test]
    fn shard_manifests_round_trip_and_merge_to_the_reference_report() {
        let registry = echo_registry();
        let campaign = echo_campaign();
        let reference = campaign.run(&registry).unwrap();
        let plan = ShardPlan::for_campaign(&campaign, 3);

        let mut manifests = Vec::new();
        for slice in plan.slices() {
            // Heterogeneous worker counts per shard: determinism must hold.
            let shard_campaign = campaign.clone().with_threads(slice.index + 1);
            let (partials, _) = shard_campaign
                .run_shard(&registry, slice.start_chunk, slice.end_chunk, None)
                .unwrap();
            let manifest = ShardManifest::new(&campaign, *slice, partials).unwrap();

            // Disk round trip: write, load, and the reload re-renders
            // byte-identically.
            let path = temp_path(&format!("rt-{}.json", slice.index));
            manifest.write(&path).unwrap();
            let loaded = ShardManifest::load(&path).unwrap();
            assert_eq!(loaded.render(), manifest.render());
            assert_eq!(loaded.run_range(), slice.run_range(3, 16));
            std::fs::remove_file(&path).ok();
            manifests.push(loaded);
        }

        // Merge order must not matter: present the manifests reversed.
        manifests.reverse();
        let merged = merge_shards(&campaign, manifests).unwrap();
        assert_eq!(merged, reference);
        assert_eq!(merged.to_json(), reference.to_json());
    }

    #[test]
    fn merge_refuses_mismatched_and_mistiled_shard_sets() {
        let registry = echo_registry();
        let campaign = echo_campaign();
        let chunks = campaign.canonical_chunks();
        let window = |slice: ShardSlice| {
            let (partials, _) =
                campaign.run_shard(&registry, slice.start_chunk, slice.end_chunk, None).unwrap();
            ShardManifest::new(&campaign, slice, partials).unwrap()
        };
        let pair = |split: usize, count: usize| {
            vec![
                window(ShardSlice {
                    index: 0,
                    shard_count: count,
                    start_chunk: 0,
                    end_chunk: split,
                }),
                window(ShardSlice {
                    index: 1,
                    shard_count: count,
                    start_chunk: split,
                    end_chunk: chunks,
                }),
            ]
        };

        // A well-formed two-shard set merges.
        assert!(merge_shards(&campaign, pair(2, 2)).is_ok());

        // Empty set.
        assert!(merge_shards(&campaign, vec![]).unwrap_err().contains("no shard manifests"));

        // Foreign fingerprint: the same shape under a different seed.
        let other = Campaign::new("sharded", 78).with_chunk_size(3).entry(
            CampaignEntry::new("echo")
                .grid(ParamGrid::new().axis("x", [0.25, 1.75]))
                .replications(8),
        );
        let err = merge_shards(&other, pair(2, 2)).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");

        // Tampered chunk size (fingerprint faked to match): refused before
        // it can regroup the reduction.
        let mut tampered = pair(2, 2);
        tampered[0].chunk_size = 4;
        let err = validate_shard_set(&campaign, &tampered).unwrap_err();
        assert!(err.contains("chunk size 4"), "{err}");

        // Tampered run count.
        let mut tampered = pair(2, 2);
        tampered[1].total_runs = 99;
        let err = validate_shard_set(&campaign, &tampered).unwrap_err();
        assert!(err.contains("99 runs"), "{err}");

        // Wrong declared shard count for the set size.
        let err = merge_shards(&campaign, pair(2, 3)).unwrap_err();
        assert!(err.contains("3 shards but 2 manifests"), "{err}");

        // Duplicate shard index.
        let mut dup = pair(2, 2);
        dup[1].shard_index = 0;
        let err = validate_shard_set(&campaign, &dup).unwrap_err();
        assert!(err.contains("duplicate or out-of-range"), "{err}");

        // Overlap: [0, 3) ∪ [2, chunks).
        let overlap = vec![
            window(ShardSlice { index: 0, shard_count: 2, start_chunk: 0, end_chunk: 3 }),
            window(ShardSlice { index: 1, shard_count: 2, start_chunk: 2, end_chunk: chunks }),
        ];
        let err = merge_shards(&campaign, overlap).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");

        // Gap in the middle: [0, 2) ∪ [3, chunks).
        let gapped = vec![
            window(ShardSlice { index: 0, shard_count: 2, start_chunk: 0, end_chunk: 2 }),
            window(ShardSlice { index: 1, shard_count: 2, start_chunk: 3, end_chunk: chunks }),
        ];
        let err = merge_shards(&campaign, gapped).unwrap_err();
        assert!(err.contains("gap in shard coverage"), "{err}");

        // Gap at the tail: a single shard that stops short.
        let short =
            vec![window(ShardSlice { index: 0, shard_count: 1, start_chunk: 0, end_chunk: 4 })];
        let err = merge_shards(&campaign, short).unwrap_err();
        assert!(err.contains("gap in shard coverage"), "{err}");
    }

    #[test]
    fn shard_manifest_load_refuses_corruption_with_a_recovery_hint() {
        let registry = echo_registry();
        let campaign = echo_campaign();
        let slice = ShardPlan::for_campaign(&campaign, 2).slice(0);
        let (partials, _) =
            campaign.run_shard(&registry, slice.start_chunk, slice.end_chunk, None).unwrap();
        let manifest = ShardManifest::new(&campaign, slice, partials).unwrap();
        let path = temp_path("corrupt.json");
        manifest.write(&path).unwrap();
        let pristine = fs::read(&path).unwrap();

        let assert_refused = |bytes: &[u8]| {
            fs::write(&path, bytes).unwrap();
            let err = ShardManifest::load(&path).unwrap_err();
            assert!(err.contains("recovery:"), "refusals carry a recovery hint: {err}");
            assert!(err.contains("rerun"), "the hint names the fix: {err}");
        };
        // Truncated mid-payload, truncated at the frame, one flipped byte.
        assert_refused(&pristine[..pristine.len() / 2]);
        assert_refused(&pristine[..manifest.render().len() + 1]);
        let mut flipped = pristine.clone();
        flipped[12] ^= 0x01;
        assert_refused(&flipped);

        // A wrong-format payload with a *valid* frame is refused by the
        // parser, not the frame check.
        let foreign = "{\"format\":\"other\"}";
        fs::write(&path, format!("{foreign}\n{}\n", integrity_frame(foreign))).unwrap();
        let err = ShardManifest::load(&path).unwrap_err();
        assert!(err.contains("not a karyon-campaign-shard file"), "{err}");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn run_and_trace_segments_validate_their_global_ranges() {
        let path = temp_path("segment.jsonl");

        // A pristine run segment for global runs [5, 8).
        fs::write(&path, "{\"run\":5,\"x\":1}\n{\"run\":6,\"x\":2}\n{\"run\":7,\"x\":3}\n")
            .unwrap();
        let bytes = read_run_segment(&path, 5, 8).unwrap();
        assert_eq!(bytes, fs::read(&path).unwrap());

        // Wrong window, short segment, extra line, torn tail — all refused.
        assert!(read_run_segment(&path, 4, 7).unwrap_err().contains("carries run 5"));
        assert!(read_run_segment(&path, 5, 9).unwrap_err().contains("incomplete"));
        assert!(read_run_segment(&path, 5, 7).unwrap_err().contains("carries run 7"));
        fs::write(&path, "{\"run\":5,\"x\":1}\n{\"run\":6,\"x\"").unwrap();
        assert!(read_run_segment(&path, 5, 7).unwrap_err().contains("torn line"));
        fs::write(&path, "not a record\n").unwrap();
        assert!(read_run_segment(&path, 0, 1).unwrap_err().contains("{\"run\":N,"));

        // Trace segments: any number of lines per run, non-decreasing, all
        // inside the window.
        fs::write(&path, "{\"run\":5,\"a\":1}\n{\"run\":5,\"b\":2}\n{\"run\":7,\"c\":3}\n")
            .unwrap();
        let bytes = read_trace_segment(&path, 5, 8).unwrap();
        assert_eq!(bytes, fs::read(&path).unwrap());
        assert!(read_trace_segment(&path, 6, 8).unwrap_err().contains("outside"));
        fs::write(&path, "{\"run\":6,\"a\":1}\n{\"run\":5,\"b\":2}\n").unwrap();
        assert!(read_trace_segment(&path, 5, 8).unwrap_err().contains("outside"));
        fs::remove_file(&path).ok();

        // A missing trace segment is an empty segment (tracing is optional);
        // a missing run segment is an error.
        assert_eq!(read_trace_segment(&path, 0, 9).unwrap(), Vec::<u8>::new());
        assert!(read_run_segment(&path, 0, 9).unwrap_err().contains("cannot read"));
    }
}

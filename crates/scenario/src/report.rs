//! Structured campaign results: per-point aggregates, JSON and text tables.

use std::collections::BTreeMap;

use karyon_sim::table::fmt3;
use karyon_sim::{BucketHistogram, OnlineStats, Table};

use crate::json::{array, ObjectWriter};
use crate::spec::{params_label, ParamValue};

/// Aggregate of one metric over every run of one parameter point.
///
/// Mean / standard deviation / extremes come from a streaming
/// [`OnlineStats`].  Quantiles are exact (nearest rank over the sorted
/// samples) while a point has at most [`QUANTILE_EXACT_LIMIT`] observations —
/// so small sweeps report only values that actually occurred (a 0/1 flag
/// metric yields 0 or 1, never a bucket midpoint) — and switch to the
/// allocation-light fixed-bucket [`BucketHistogram`] beyond that, where the
/// extra sort would dominate and 1/64th-range resolution is ample.  Both
/// paths depend only on the sample multiset, never on execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Number of finite observations aggregated.
    pub count: u64,
    /// Exact sum of the finite observations in canonical run order (for 0/1
    /// flag metrics this is the exact event count — prefer it over
    /// reconstructing counts from `mean`).
    pub sum: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Number of histogram buckets used for large-sweep quantile aggregation.
const QUANTILE_BUCKETS: usize = 64;

/// Largest per-point sample count for which quantiles are computed exactly.
pub const QUANTILE_EXACT_LIMIT: u64 = 4_096;

impl MetricSummary {
    /// Aggregates a slice of observations (non-finite values are skipped).
    pub fn from_values(values: &[f64]) -> Self {
        let mut stats = OnlineStats::new();
        for v in values {
            stats.record(*v);
        }
        let (p50, p95, p99) = if stats.count() == 0 || stats.min() == stats.max() {
            // Degenerate spread: every quantile is the (single) value.
            (stats.mean(), stats.mean(), stats.mean())
        } else if stats.count() <= QUANTILE_EXACT_LIMIT {
            let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
            finite.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let rank = |q: f64| finite[((finite.len() - 1) as f64 * q).round() as usize];
            (rank(0.5), rank(0.95), rank(0.99))
        } else {
            let mut hist = BucketHistogram::new(stats.min(), stats.max(), QUANTILE_BUCKETS);
            for v in values {
                hist.record(*v);
            }
            (hist.p50(), hist.p95(), hist.p99())
        };
        MetricSummary {
            count: stats.count(),
            sum: values.iter().filter(|v| v.is_finite()).sum(),
            mean: stats.mean(),
            std_dev: stats.std_dev(),
            min: stats.min(),
            max: stats.max(),
            p50,
            p95,
            p99,
        }
    }

    fn to_json(&self) -> String {
        let mut o = ObjectWriter::new();
        o.u64("count", self.count)
            .f64("mean", self.mean)
            .f64("sum", self.sum)
            .f64("std_dev", self.std_dev)
            .f64("min", self.min)
            .f64("max", self.max)
            .f64("p50", self.p50)
            .f64("p95", self.p95)
            .f64("p99", self.p99);
        o.finish()
    }
}

/// The aggregate of every Monte-Carlo run at one parameter point of one
/// scenario family.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// The scenario family.
    pub scenario: String,
    /// The parameter point.
    pub params: BTreeMap<String, ParamValue>,
    /// Number of runs aggregated.
    pub runs: u64,
    /// Runs in which the simulation engine clamped a past-time schedule —
    /// causality-suspect runs whose results deserve scrutiny.
    pub suspect_runs: u64,
    /// Per-metric aggregates, in deterministic metric-name order.
    pub metrics: BTreeMap<String, MetricSummary>,
}

impl PointReport {
    /// A compact `k=v, k=v` label of the parameter point.
    pub fn params_label(&self) -> String {
        params_label(&self.params)
    }

    fn to_json(&self) -> String {
        let mut metrics = ObjectWriter::new();
        for (name, summary) in &self.metrics {
            metrics.raw(name, &summary.to_json());
        }
        let mut o = ObjectWriter::new();
        o.string("scenario", &self.scenario)
            .raw("params", &crate::spec::params_json(&self.params))
            .u64("runs", self.runs)
            .u64("suspect_runs", self.suspect_runs)
            .raw("metrics", &metrics.finish());
        o.finish()
    }
}

/// The full structured result of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The campaign name.
    pub name: String,
    /// The campaign seed every per-run seed was derived from.
    pub seed: u64,
    /// Total number of runs executed.
    pub total_runs: u64,
    /// One aggregate per (scenario family, parameter point), in canonical
    /// work-list order.
    pub points: Vec<PointReport>,
}

impl CampaignReport {
    /// Serialises the whole report as a single JSON object.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self.points.iter().map(PointReport::to_json).collect();
        let mut o = ObjectWriter::new();
        o.string("campaign", &self.name)
            .u64("seed", self.seed)
            .u64("total_runs", self.total_runs)
            .raw("points", &array(&points));
        o.finish()
    }

    /// Total number of causality-suspect runs across all points.
    pub fn suspect_runs(&self) -> u64 {
        self.points.iter().map(|p| p.suspect_runs).sum()
    }

    /// An aligned-text table with one row per (point, metric): the complete
    /// campaign result in one table.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(
            &format!("campaign {} (seed {}, {} runs)", self.name, self.seed, self.total_runs),
            &[
                "scenario",
                "parameters",
                "runs",
                "suspect",
                "metric",
                "n",
                "mean",
                "std",
                "p50",
                "p95",
                "p99",
            ],
        );
        for point in &self.points {
            for (metric, s) in &point.metrics {
                table.add_row(&[
                    point.scenario.clone(),
                    point.params_label(),
                    point.runs.to_string(),
                    point.suspect_runs.to_string(),
                    metric.clone(),
                    // A metric may be present in only a subset of the runs
                    // (e.g. detection times exist only for detected runs), so
                    // its own sample count is printed next to the run count.
                    s.count.to_string(),
                    fmt3(s.mean),
                    fmt3(s.std_dev),
                    fmt3(s.p50),
                    fmt3(s.p95),
                    fmt3(s.p99),
                ]);
            }
        }
        table
    }

    /// An aligned-text table for one metric across every parameter point.
    pub fn metric_table(&self, metric: &str) -> Table {
        let mut table = Table::new(
            &format!("campaign {} — {metric}", self.name),
            &["scenario", "parameters", "n", "mean", "std", "min", "p50", "p95", "p99", "max"],
        );
        for point in &self.points {
            if let Some(s) = point.metrics.get(metric) {
                table.add_row(&[
                    point.scenario.clone(),
                    point.params_label(),
                    s.count.to_string(),
                    fmt3(s.mean),
                    fmt3(s.std_dev),
                    fmt3(s.min),
                    fmt3(s.p50),
                    fmt3(s.p95),
                    fmt3(s.p99),
                    fmt3(s.max),
                ]);
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_summary_degenerate_and_spread() {
        let constant = MetricSummary::from_values(&[2.0, 2.0, 2.0]);
        assert_eq!(constant.count, 3);
        assert_eq!(constant.p50, 2.0);
        assert_eq!(constant.p99, 2.0);
        assert_eq!(constant.std_dev, 0.0);

        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let spread = MetricSummary::from_values(&values);
        assert_eq!(spread.count, 100);
        assert!((spread.mean - 50.5).abs() < 1e-9);
        assert_eq!(spread.min, 1.0);
        assert_eq!(spread.max, 100.0);
        // Below the exact limit, quantiles are exact nearest-rank values.
        assert_eq!(spread.p50, 51.0);
        assert_eq!(spread.p95, 95.0);
        assert_eq!(spread.p99, 99.0);

        let empty = MetricSummary::from_values(&[f64::NAN]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p50, 0.0);
    }

    #[test]
    fn flag_metric_quantiles_are_observed_values() {
        // A 0/1 flag metric must never report a bucket midpoint like 0.008.
        let values: Vec<f64> = (0..30).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        let s = MetricSummary::from_values(&values);
        assert_eq!(s.p50, 0.0);
        assert_eq!(s.p95, 1.0);
        assert!((s.mean - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.sum, 10.0, "the sum of a flag metric is the exact event count");
    }

    #[test]
    fn large_sweeps_fall_back_to_bucketed_quantiles() {
        let n = (QUANTILE_EXACT_LIMIT + 1_000) as usize;
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let s = MetricSummary::from_values(&values);
        assert_eq!(s.count, n as u64);
        let width = (n - 1) as f64 / QUANTILE_BUCKETS as f64;
        let exact_p50 = ((n - 1) as f64 * 0.5).round();
        assert!((s.p50 - exact_p50).abs() <= width, "p50 {} vs {exact_p50}", s.p50);
    }

    #[test]
    fn report_json_is_valid_shape_and_deterministic() {
        let mut metrics = BTreeMap::new();
        metrics.insert("m".to_string(), MetricSummary::from_values(&[1.0, 2.0, 3.0]));
        let mut params = BTreeMap::new();
        params.insert("mode".to_string(), ParamValue::Text("kernel".into()));
        params.insert("n".to_string(), ParamValue::Int(6));
        let report = CampaignReport {
            name: "demo".into(),
            seed: 9,
            total_runs: 3,
            points: vec![PointReport {
                scenario: "platoon".into(),
                params,
                runs: 3,
                suspect_runs: 0,
                metrics,
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with(r#"{"campaign":"demo","seed":9,"total_runs":3,"points":[{"#));
        assert!(json.contains(r#""params":{"mode":"kernel","n":6}"#));
        assert!(json.contains(r#""m":{"count":3,"mean":2"#));
        assert_eq!(json, report.to_json(), "serialisation is deterministic");
        assert_eq!(report.suspect_runs(), 0);
    }

    #[test]
    fn tables_render_rows_per_point() {
        let mut metrics = BTreeMap::new();
        metrics.insert("a".to_string(), MetricSummary::from_values(&[1.0]));
        metrics.insert("b".to_string(), MetricSummary::from_values(&[2.0]));
        let report = CampaignReport {
            name: "demo".into(),
            seed: 1,
            total_runs: 1,
            points: vec![PointReport {
                scenario: "s".into(),
                params: BTreeMap::new(),
                runs: 1,
                suspect_runs: 1,
                metrics,
            }],
        };
        assert_eq!(report.summary_table().row_count(), 2, "one row per metric");
        assert_eq!(report.metric_table("a").row_count(), 1);
        assert_eq!(report.metric_table("zzz").row_count(), 0);
    }
}

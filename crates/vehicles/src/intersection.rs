//! The intersection use case (paper §VI-A2): infrastructure traffic lights
//! with I-am-alive monitoring and the virtual-traffic-light fallback.
//!
//! "Future traffic light systems will periodically broadcast I-am-alive
//! messages to the arriving vehicles … When the traffic light system is in an
//! inoperative mode, the vehicles will switch to the use of a backup system:
//! a virtual traffic light that relies on vehicle-to-vehicle communications
//! for coordinating the intersection crossing."
//!
//! The virtual traffic light is built on the [`karyon_core::VirtualNode`]
//! replicated state machine hosted by the vehicles queued at the
//! intersection.

use std::collections::VecDeque;

use karyon_core::{Region, ReplicatedMachine, VirtualNode};
use karyon_sim::{Rng, SimDuration, SimTime, Vec2};

/// How crossings are coordinated when the infrastructure light is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackMode {
    /// Drivers coordinate by themselves (error-prone human negotiation).
    Uncoordinated,
    /// The KARYON virtual traffic light takes over.
    VirtualTrafficLight,
}

/// Configuration of an intersection run.
#[derive(Debug, Clone)]
pub struct IntersectionConfig {
    /// Mean vehicle arrivals per minute on each of the two approaches.
    pub arrivals_per_minute: f64,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Window during which the infrastructure traffic light is failed.
    pub light_failure: Option<(SimTime, SimTime)>,
    /// What vehicles do while the light is failed.
    pub fallback: FallbackMode,
    /// Random seed.
    pub seed: u64,
}

impl Default for IntersectionConfig {
    fn default() -> Self {
        IntersectionConfig {
            arrivals_per_minute: 12.0,
            duration: SimDuration::from_secs(600),
            light_failure: None,
            fallback: FallbackMode::VirtualTrafficLight,
            seed: 1,
        }
    }
}

/// Aggregate result of an intersection run.
#[derive(Debug, Clone, PartialEq)]
pub struct IntersectionResult {
    /// Vehicles that completed the crossing.
    pub crossed: u64,
    /// Conflicts: a vehicle entered while a vehicle from the crossing
    /// approach occupied the intersection.
    pub conflicts: u64,
    /// Mean waiting time at the stop line (s).
    pub mean_wait: f64,
    /// Maximum waiting time (s).
    pub max_wait: f64,
    /// Crossing throughput (vehicles per minute, both approaches).
    pub throughput_per_minute: f64,
    /// Fraction of simulated time spent without an operating (real or
    /// virtual) traffic light.
    pub uncontrolled_fraction: f64,
}

/// The replicated state of the virtual traffic light.
#[derive(Debug, Clone, PartialEq)]
pub struct VtlState {
    /// The approach currently granted green (0 or 1).
    pub green_approach: usize,
    /// When the current green phase started.
    pub since: SimTime,
}

impl Default for VtlState {
    fn default() -> Self {
        VtlState { green_approach: 0, since: SimTime::ZERO }
    }
}

/// Operations on the virtual traffic light.
#[derive(Debug, Clone, Copy)]
pub enum VtlOp {
    /// Grant green to the given approach.
    SetGreen(usize),
}

impl ReplicatedMachine for VtlState {
    type Op = VtlOp;
    fn apply(&mut self, op: &VtlOp, now: SimTime) {
        match op {
            VtlOp::SetGreen(approach) => {
                self.green_approach = *approach % 2;
                self.since = now;
            }
        }
    }
}

const GREEN_PHASE_S: f64 = 15.0;
const CROSSING_TIME_S: f64 = 3.0;
const RELEASE_HEADWAY_S: f64 = 2.0;
const ALIVE_TIMEOUT_S: f64 = 2.0;

#[derive(Debug, Clone, Copy)]
struct QueuedVehicle {
    id: u32,
    arrived: SimTime,
}

/// Runs the intersection scenario and returns the aggregate metrics.
pub fn run_intersection(config: &IntersectionConfig) -> IntersectionResult {
    let dt = 0.5;
    let steps = (config.duration.as_secs_f64() / dt).round() as u64;
    let mut rng = Rng::seed_from(config.seed);

    let mut queues: [VecDeque<QueuedVehicle>; 2] = [VecDeque::new(), VecDeque::new()];
    let mut next_id: u32 = 0;
    let arrival_prob = config.arrivals_per_minute / 60.0 * dt;

    // Infrastructure traffic light state.
    let mut infra_green = 0usize;
    let mut infra_since = SimTime::ZERO;
    let mut last_alive = SimTime::ZERO;

    // Virtual traffic light hosted by the queued vehicles.
    let mut vtl: VirtualNode<VtlState> =
        VirtualNode::new(Region::new(Vec2::ZERO, 60.0), VtlState::default());

    // Intersection occupancy: (approach, leaves_at).
    let mut occupancy: Vec<(usize, SimTime)> = Vec::new();
    let mut last_release: [SimTime; 2] = [SimTime::ZERO, SimTime::ZERO];

    let mut result = IntersectionResult {
        crossed: 0,
        conflicts: 0,
        mean_wait: 0.0,
        max_wait: 0.0,
        throughput_per_minute: 0.0,
        uncontrolled_fraction: 0.0,
    };
    let mut wait_sum = 0.0;
    let mut uncontrolled_steps = 0u64;

    for step in 0..steps {
        let now = SimTime::from_secs_f64(step as f64 * dt);
        let light_failed = config.light_failure.map(|(s, e)| now >= s && now < e).unwrap_or(false);

        // Arrivals on both approaches.
        for (approach, queue) in queues.iter_mut().enumerate() {
            if rng.chance(arrival_prob) {
                queue.push_back(QueuedVehicle { id: next_id * 2 + approach as u32, arrived: now });
                next_id += 1;
            }
        }

        // Intersection occupancy decay.
        occupancy.retain(|(_, leaves)| *leaves > now);

        // Infrastructure traffic light: alternate green and broadcast
        // I-am-alive while healthy.
        if !light_failed {
            last_alive = now;
            if now.since(SimTime::from_secs_f64(infra_since.as_secs_f64())).as_secs_f64()
                >= GREEN_PHASE_S
            {
                infra_green = 1 - infra_green;
                infra_since = now;
            }
        }
        // Vehicles detect the failure via the I-am-alive timeout.
        let failure_detected = now.since(last_alive).as_secs_f64() > ALIVE_TIMEOUT_S;

        // Update the virtual traffic light population from the queued
        // vehicles (they are all within the intersection region).
        let population: Vec<(u32, Vec2)> =
            queues.iter().flat_map(|q| q.iter().map(|v| (v.id, Vec2::new(5.0, 5.0)))).collect();
        vtl.update_population(&population);

        // Decide who (if anyone) currently has green.
        let green: Option<usize> = if !failure_detected {
            Some(infra_green)
        } else {
            match config.fallback {
                FallbackMode::VirtualTrafficLight => {
                    // The leader rotates the green phase of the VTL.
                    if let Some(state) = vtl.state() {
                        if now.since(state.since).as_secs_f64() >= GREEN_PHASE_S {
                            let next = 1 - state.green_approach;
                            vtl.submit(&VtlOp::SetGreen(next), now);
                        }
                    }
                    vtl.state().map(|s| s.green_approach)
                }
                FallbackMode::Uncoordinated => None,
            }
        };
        if green.is_none() {
            uncontrolled_steps += 1;
        }

        // Release vehicles into the intersection.
        match green {
            Some(approach) => {
                // Controlled crossing: the head of the green approach enters
                // when the intersection is clear and the release headway has
                // elapsed.
                let clear = occupancy.is_empty();
                let headway_ok =
                    now.since(last_release[approach]).as_secs_f64() >= RELEASE_HEADWAY_S;
                if clear && headway_ok {
                    if let Some(vehicle) = queues[approach].pop_front() {
                        enter(&mut occupancy, &mut result, &mut wait_sum, approach, vehicle, now);
                        last_release[approach] = now;
                    }
                }
            }
            None => {
                // Uncoordinated: each approach head decides independently and
                // occasionally misjudges whether the intersection is clear.
                for approach in 0..2 {
                    let misjudged = rng.chance(0.1);
                    let occupied_by_other = occupancy.iter().any(|(a, _)| *a != approach);
                    let proceed = if occupied_by_other || !occupancy.is_empty() {
                        misjudged && rng.chance(0.3)
                    } else {
                        rng.chance(0.25)
                    };
                    let headway_ok =
                        now.since(last_release[approach]).as_secs_f64() >= RELEASE_HEADWAY_S;
                    if proceed && headway_ok {
                        if let Some(vehicle) = queues[approach].pop_front() {
                            enter(
                                &mut occupancy,
                                &mut result,
                                &mut wait_sum,
                                approach,
                                vehicle,
                                now,
                            );
                            last_release[approach] = now;
                        }
                    }
                }
            }
        }
    }

    if result.crossed > 0 {
        result.mean_wait = wait_sum / result.crossed as f64;
    }
    result.throughput_per_minute = result.crossed as f64 / (config.duration.as_secs_f64() / 60.0);
    result.uncontrolled_fraction = uncontrolled_steps as f64 / steps as f64;
    result
}

fn enter(
    occupancy: &mut Vec<(usize, SimTime)>,
    result: &mut IntersectionResult,
    wait_sum: &mut f64,
    approach: usize,
    vehicle: QueuedVehicle,
    now: SimTime,
) {
    // A conflict occurs when a vehicle from the crossing approach is still in
    // the intersection box.
    if occupancy.iter().any(|(a, _)| *a != approach) {
        result.conflicts += 1;
    }
    occupancy.push((approach, now + SimDuration::from_secs_f64(CROSSING_TIME_S)));
    let wait = now.since(vehicle.arrived).as_secs_f64();
    *wait_sum += wait;
    result.max_wait = result.max_wait.max(wait);
    result.crossed += 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_failure(fallback: FallbackMode, seed: u64) -> IntersectionConfig {
        IntersectionConfig {
            arrivals_per_minute: 15.0,
            duration: SimDuration::from_secs(600),
            light_failure: Some((SimTime::from_secs(120), SimTime::from_secs(480))),
            fallback,
            seed,
        }
    }

    #[test]
    fn healthy_infrastructure_light_is_conflict_free() {
        let config = IntersectionConfig { seed: 1, ..Default::default() };
        let result = run_intersection(&config);
        assert_eq!(result.conflicts, 0);
        assert!(result.crossed > 50, "crossed {}", result.crossed);
        assert_eq!(result.uncontrolled_fraction, 0.0);
        assert!(result.mean_wait < 60.0);
    }

    #[test]
    fn virtual_traffic_light_fallback_preserves_safety() {
        let result = run_intersection(&with_failure(FallbackMode::VirtualTrafficLight, 2));
        assert_eq!(result.conflicts, 0, "VTL must keep the intersection conflict-free");
        assert!(result.crossed > 50);
        // The VTL takes over almost immediately (only the detection timeout
        // is uncontrolled).
        assert!(result.uncontrolled_fraction < 0.05, "{}", result.uncontrolled_fraction);
    }

    #[test]
    fn uncoordinated_fallback_causes_conflicts() {
        let result = run_intersection(&with_failure(FallbackMode::Uncoordinated, 3));
        assert!(result.conflicts > 0, "uncoordinated crossing should produce conflicts");
        assert!(result.uncontrolled_fraction > 0.3);
    }

    #[test]
    fn vtl_throughput_is_not_worse_than_uncoordinated_safety() {
        let vtl = run_intersection(&with_failure(FallbackMode::VirtualTrafficLight, 4));
        let unc = run_intersection(&with_failure(FallbackMode::Uncoordinated, 4));
        // The paper's claim: the VTL provides the coordination the
        // infrastructure light provided, which the uncoordinated fallback
        // cannot match in safety.
        assert!(vtl.conflicts < unc.conflicts.max(1));
        assert!(vtl.crossed > 0 && unc.crossed > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_intersection(&with_failure(FallbackMode::VirtualTrafficLight, 9));
        let b = run_intersection(&with_failure(FallbackMode::VirtualTrafficLight, 9));
        assert_eq!(a, b);
    }
}

//! The ACC / platooning use case (paper §VI-A1) wired to the safety kernel.
//!
//! A platoon follows a leader that periodically brakes.  Every follower runs
//! the ACC/CACC controller of [`crate::control`] with a time margin chosen by
//! its Level of Service; the safety kernel selects the LoS from the health of
//! the V2V link, the freshness/validity of the cooperative data and the
//! validity of the local range sensor.  The scenario is the workhorse of
//! experiments E01 (performance–safety trade-off) and E10 (per-LoS time
//! margins and hazard rates).

use karyon_core::los::Asil;
use karyon_core::{
    Condition, DesignTimeSafetyInfo, Hazard, HazardAnalysis, LevelOfService, LosSpec, SafetyKernel,
    SafetyRule,
};
use karyon_sensors::faults::FaultSchedule;
use karyon_sensors::{
    AbstractSensor, RangeCheckDetector, RangeSensor, RateOfChangeDetector, SensorFault,
    StuckAtDetector, TimeoutDetector,
};
use karyon_sim::{Rng, SimDuration, SimTime};

use crate::control::{
    emergency_brake_needed, time_margin_for_los, AccController, AccInput, VehicleLimits,
    VehicleState,
};

/// How a follower chooses its time margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlMode {
    /// The KARYON safety kernel selects the LoS at run time.
    SafetyKernel,
    /// The follower always operates at the given LoS regardless of run-time
    /// conditions (the "always cooperative" / "always conservative"
    /// baselines, depending on the level).
    FixedLos(LevelOfService),
}

/// The V2V communication model seen by a follower.
#[derive(Debug, Clone)]
pub struct V2VModel {
    /// Per-message loss probability.
    pub loss: f64,
    /// Message latency.
    pub latency: SimDuration,
    /// Outage windows during which nothing is delivered (e.g. interference).
    pub outages: Vec<(SimTime, SimTime)>,
}

impl Default for V2VModel {
    fn default() -> Self {
        V2VModel { loss: 0.05, latency: SimDuration::from_millis(20), outages: Vec::new() }
    }
}

impl V2VModel {
    /// True when the link is inside an outage window at `now`.
    pub fn in_outage(&self, now: SimTime) -> bool {
        self.outages.iter().any(|(s, e)| now >= *s && now < *e)
    }
}

/// A sensor fault to inject into one follower's range sensor.
#[derive(Debug, Clone)]
pub struct InjectedSensorFault {
    /// Index of the follower (1 = first follower behind the leader).
    pub follower: usize,
    /// The fault to inject.
    pub fault: SensorFault,
    /// When the fault is active.
    pub from: SimTime,
    /// End of the fault window.
    pub until: SimTime,
}

/// Configuration of a platoon run.
#[derive(Debug, Clone)]
pub struct PlatoonConfig {
    /// Total number of vehicles including the leader (≥ 2).
    pub vehicles: usize,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Control period of every follower (and of the safety kernel).
    pub control_period: SimDuration,
    /// How followers choose their time margin.
    pub mode: ControlMode,
    /// The V2V link model.
    pub v2v: V2VModel,
    /// Optional range-sensor fault injection.
    pub sensor_fault: Option<InjectedSensorFault>,
    /// Leader cruise speed (m/s).
    pub lead_speed: f64,
    /// Leader braking strength during its periodic braking events (m/s²).
    pub lead_braking: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for PlatoonConfig {
    fn default() -> Self {
        PlatoonConfig {
            vehicles: 6,
            duration: SimDuration::from_secs(120),
            control_period: SimDuration::from_millis(100),
            mode: ControlMode::SafetyKernel,
            v2v: V2VModel::default(),
            sensor_fault: None,
            lead_speed: 28.0,
            lead_braking: 4.0,
            seed: 1,
        }
    }
}

/// Aggregate result of a platoon run.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatoonResult {
    /// Number of follower collisions (true gap reached zero).
    pub collisions: u64,
    /// Number of control steps in which some follower's true time gap fell
    /// below the hazard threshold (0.4 s) while moving.
    pub hazard_steps: u64,
    /// Smallest true time gap observed across followers (s).
    pub min_time_gap: f64,
    /// Mean true time gap across followers and time (s).
    pub mean_time_gap: f64,
    /// Mean follower speed (m/s).
    pub mean_speed: f64,
    /// Estimated lane throughput (vehicles/hour) from mean speed and spacing.
    pub throughput_veh_per_hour: f64,
    /// Fraction of follower-time spent at LoS 0, 1 and 2.
    pub los_time_fraction: [f64; 3],
    /// Total number of LoS switches across followers.
    pub los_switches: u64,
}

/// The per-LoS safety rules of the ACC functionality (design-time safety
/// information of use case A1).
pub fn acc_design_time_info() -> DesignTimeSafetyInfo {
    let mut hazards = HazardAnalysis::new();
    hazards.add(Hazard::new(
        "H1-rear-end",
        "rear-end collision with the preceding vehicle",
        Asil::C,
        SimDuration::from_millis(600),
    ));
    let level0 = LosSpec {
        level: LevelOfService(0),
        description: "autonomous sensing only, 1.8 s time margin".into(),
        rules: vec![],
        asil: Asil::QM,
        performance_index: 1.0 / time_margin_for_los(LevelOfService(0)),
    };
    let level1 = LosSpec {
        level: LevelOfService(1),
        description: "cooperative awareness, 1.2 s time margin".into(),
        rules: vec![SafetyRule::new(
            "R1-range-validity",
            Condition::MinValidity { item: "range".into(), threshold: 0.5 },
        )],
        asil: Asil::B,
        performance_index: 1.0 / time_margin_for_los(LevelOfService(1)),
    };
    let level2 = LosSpec {
        level: LevelOfService(2),
        description: "fully cooperative CACC, 0.6 s time margin".into(),
        rules: vec![
            SafetyRule::new(
                "R2-range-validity",
                Condition::MinValidity { item: "range".into(), threshold: 0.7 },
            ),
            SafetyRule::new(
                "R3-v2v-health",
                Condition::ComponentHealthy { component: "v2v".into() },
            ),
            SafetyRule::new(
                "R4-v2v-freshness",
                Condition::MaxAge {
                    item: "lead-state".into(),
                    bound: SimDuration::from_millis(300),
                },
            ),
        ],
        asil: Asil::C,
        performance_index: 1.0 / time_margin_for_los(LevelOfService(2)),
    };
    DesignTimeSafetyInfo::new(
        "adaptive-cruise-control",
        vec![level0, level1, level2],
        hazards,
        SimDuration::from_millis(50),
    )
}

struct Follower {
    state: VehicleState,
    controller: AccController,
    range_sensor: AbstractSensor,
    kernel: Option<SafetyKernel>,
    fixed_level: LevelOfService,
    /// Last cooperative state received from the predecessor: (speed, accel, timestamp).
    last_v2v: Option<(f64, f64, SimTime)>,
    previous_gap: Option<f64>,
    collided: bool,
}

/// Runs a platoon scenario and returns the aggregate metrics.
pub fn run_platoon(config: &PlatoonConfig) -> PlatoonResult {
    assert!(config.vehicles >= 2, "a platoon needs a leader and at least one follower");
    let limits = VehicleLimits::default();
    let dt = config.control_period.as_secs_f64();
    let mut rng = Rng::seed_from(config.seed);

    // Leader.
    let mut leader = VehicleState::new(1_000.0, config.lead_speed);

    // Followers, spaced at a comfortable initial gap.
    let mut followers: Vec<Follower> = (1..config.vehicles)
        .map(|i| {
            let mut sensor = AbstractSensor::new(
                "range",
                Box::new(RangeSensor {
                    noise_std: 0.3,
                    max_range: 250.0,
                    dropout_probability: 0.001,
                }),
                config.seed.wrapping_mul(31).wrapping_add(i as u64),
            );
            sensor.add_detector(Box::new(RangeCheckDetector::new(0.0, 250.0)));
            sensor.add_detector(Box::new(TimeoutDetector::new(SimDuration::from_millis(400))));
            sensor.add_detector(Box::new(RateOfChangeDetector::new(40.0)));
            sensor.add_detector(Box::new(StuckAtDetector::new(1e-6, 8)));
            if let Some(injected) = &config.sensor_fault {
                if injected.follower == i {
                    sensor.injector_mut().inject(
                        injected.fault,
                        FaultSchedule::window(injected.from, injected.until),
                    );
                }
            }
            let (kernel, fixed_level) = match config.mode {
                ControlMode::SafetyKernel => (
                    Some(SafetyKernel::new(acc_design_time_info(), config.control_period)),
                    LevelOfService(0),
                ),
                ControlMode::FixedLos(level) => (None, level),
            };
            Follower {
                state: VehicleState::new(1_000.0 - i as f64 * 45.0, config.lead_speed),
                controller: AccController {
                    cruise_speed: config.lead_speed + 4.0,
                    ..Default::default()
                },
                range_sensor: sensor,
                kernel,
                fixed_level,
                last_v2v: None,
                previous_gap: None,
                collided: false,
            }
        })
        .collect();

    let steps = (config.duration.as_secs_f64() / dt).round() as u64;
    let mut result = PlatoonResult {
        collisions: 0,
        hazard_steps: 0,
        min_time_gap: f64::INFINITY,
        mean_time_gap: 0.0,
        mean_speed: 0.0,
        throughput_veh_per_hour: 0.0,
        los_time_fraction: [0.0; 3],
        los_switches: 0,
    };
    let mut time_gap_samples = 0u64;
    let mut gap_sum = 0.0;
    let mut spacing_sum = 0.0;
    let mut speed_sum = 0.0;
    let mut los_steps = [0u64; 3];

    for step in 0..steps {
        let now = SimTime::from_secs_f64(step as f64 * dt);

        // Leader speed profile: cruise, with a braking event every 25 s
        // lasting 3 s, then recover.
        let cycle = now.as_secs_f64() % 25.0;
        let lead_acc = if (15.0..18.0).contains(&cycle) {
            -config.lead_braking
        } else if leader.speed < config.lead_speed {
            1.5
        } else {
            0.0
        };
        leader.step(lead_acc, dt, &limits);

        // Followers, front to back (each follows the vehicle ahead of it).
        let mut predecessor = leader;
        for follower in followers.iter_mut() {
            let true_gap = follower.state.gap_to(predecessor.position, limits.length);

            // --- Sensing -------------------------------------------------
            let reading = follower.range_sensor.acquire(true_gap.max(0.0), now);

            // --- V2V reception from the predecessor ----------------------
            let v2v_ok = !config.v2v.in_outage(now) && !rng.chance(config.v2v.loss);
            if v2v_ok {
                follower.last_v2v =
                    Some((predecessor.speed, predecessor.acceleration, now - config.v2v.latency));
            }

            // --- Level of Service selection -------------------------------
            let level = match &mut follower.kernel {
                Some(kernel) => {
                    let info = kernel.info_mut();
                    info.update_data("range", reading.measurement.value, reading.validity, now);
                    info.update_health(
                        "v2v",
                        !config.v2v.in_outage(now) && follower.last_v2v.is_some(),
                        now,
                    );
                    if let Some((speed, _, ts)) = follower.last_v2v {
                        info.update_data("lead-state", speed, karyon_sensors::Validity::FULL, ts);
                    }
                    kernel.run_cycle(now);
                    kernel.current_los()
                }
                None => follower.fixed_level,
            };
            los_steps[(level.0 as usize).min(2)] += 1;
            let time_margin = time_margin_for_los(level);

            // --- Control ---------------------------------------------------
            let measured_gap = if reading.is_invalid() {
                follower.previous_gap.unwrap_or(true_gap.max(0.0))
            } else {
                reading.measurement.value
            };
            let closing = follower
                .previous_gap
                .map(|prev| (prev - measured_gap) / dt)
                .unwrap_or(0.0)
                .clamp(-15.0, 15.0);
            follower.previous_gap = Some(measured_gap);
            let leader_acceleration = if level == LevelOfService(2) {
                follower.last_v2v.map(|(_, a, _)| a)
            } else {
                None
            };
            let input = AccInput {
                gap: Some(measured_gap),
                closing_speed: Some(closing),
                leader_acceleration,
            };
            let mut command =
                follower.controller.control(follower.state.speed, &input, time_margin);
            // Below-the-line emergency braking on the raw measurement.
            if emergency_brake_needed(measured_gap, closing, 0.9) {
                command = -limits.max_deceleration;
            }
            follower.state.step(command, dt, &limits);

            // --- Metrics ---------------------------------------------------
            let new_gap = follower.state.gap_to(predecessor.position, limits.length);
            if new_gap <= 0.0 && !follower.collided {
                follower.collided = true;
                result.collisions += 1;
                // Resolve the overlap so the simulation can continue.
                follower.state.position = predecessor.position - limits.length - 1.0;
                follower.state.speed = predecessor.speed;
            }
            let time_gap = follower.state.time_gap(new_gap.max(0.0));
            if time_gap.is_finite() {
                result.min_time_gap = result.min_time_gap.min(time_gap);
                if time_gap < 0.4 && follower.state.speed > 5.0 {
                    result.hazard_steps += 1;
                }
                gap_sum += time_gap.min(10.0);
                time_gap_samples += 1;
            }
            spacing_sum += (new_gap.max(0.0) + limits.length).min(200.0);
            speed_sum += follower.state.speed;

            predecessor = follower.state;
        }
    }

    let follower_steps = (steps as f64) * (config.vehicles - 1) as f64;
    result.mean_time_gap =
        if time_gap_samples > 0 { gap_sum / time_gap_samples as f64 } else { 0.0 };
    result.mean_speed = speed_sum / follower_steps;
    let mean_spacing = spacing_sum / follower_steps;
    result.throughput_veh_per_hour =
        if mean_spacing > 0.0 { 3_600.0 * result.mean_speed / mean_spacing } else { 0.0 };
    let total_los_steps: u64 = los_steps.iter().sum();
    for (i, count) in los_steps.iter().enumerate() {
        result.los_time_fraction[i] = *count as f64 / total_los_steps.max(1) as f64;
    }
    result.los_switches =
        followers.iter().filter_map(|f| f.kernel.as_ref()).map(|k| k.switches().len() as u64).sum();
    if result.min_time_gap.is_infinite() {
        result.min_time_gap = 0.0;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(mode: ControlMode, seed: u64) -> PlatoonConfig {
        PlatoonConfig {
            vehicles: 5,
            duration: SimDuration::from_secs(80),
            mode,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_cooperative_platoon_is_safe_and_dense() {
        let result = run_platoon(&base(ControlMode::SafetyKernel, 1));
        assert_eq!(result.collisions, 0);
        assert!(result.min_time_gap > 0.3, "min time gap {}", result.min_time_gap);
        // With a healthy V2V link the kernel spends most of the time at LoS 2.
        assert!(result.los_time_fraction[2] > 0.6, "LoS2 fraction {:?}", result.los_time_fraction);
        assert!(result.mean_speed > 20.0);
    }

    #[test]
    fn kernel_degrades_during_v2v_outage() {
        let mut config = base(ControlMode::SafetyKernel, 2);
        config.v2v.outages = vec![(SimTime::from_secs(30), SimTime::from_secs(60))];
        let result = run_platoon(&config);
        assert_eq!(result.collisions, 0);
        // A substantial fraction of the time must be spent below LoS 2.
        assert!(
            result.los_time_fraction[0] + result.los_time_fraction[1] > 0.2,
            "LoS fractions {:?}",
            result.los_time_fraction
        );
        assert!(result.los_switches > 0);
    }

    #[test]
    fn conservative_mode_has_larger_margins_than_cooperative() {
        let conservative = run_platoon(&base(ControlMode::FixedLos(LevelOfService(0)), 3));
        let cooperative = run_platoon(&base(ControlMode::FixedLos(LevelOfService(2)), 3));
        assert!(conservative.mean_time_gap > cooperative.mean_time_gap);
        assert!(conservative.throughput_veh_per_hour < cooperative.throughput_veh_per_hour);
        assert_eq!(conservative.los_time_fraction[0], 1.0);
        assert_eq!(cooperative.los_time_fraction[2], 1.0);
    }

    #[test]
    fn always_cooperative_under_outage_is_riskier_than_kernel() {
        let outage = vec![(SimTime::from_secs(20), SimTime::from_secs(70))];
        let mut coop = base(ControlMode::FixedLos(LevelOfService(2)), 4);
        coop.v2v.outages = outage.clone();
        coop.lead_braking = 5.0;
        let mut kernel = base(ControlMode::SafetyKernel, 4);
        kernel.v2v.outages = outage;
        kernel.lead_braking = 5.0;
        let coop_result = run_platoon(&coop);
        let kernel_result = run_platoon(&kernel);
        // The kernel-controlled platoon must not be more hazardous than the
        // blindly cooperative one, and must keep a larger worst-case margin.
        assert!(kernel_result.hazard_steps <= coop_result.hazard_steps);
        assert!(kernel_result.min_time_gap >= coop_result.min_time_gap - 1e-9);
        assert_eq!(kernel_result.collisions, 0);
    }

    #[test]
    fn stuck_range_sensor_forces_lower_los() {
        let mut config = base(ControlMode::SafetyKernel, 5);
        config.sensor_fault = Some(InjectedSensorFault {
            follower: 1,
            fault: SensorFault::StuckAt { stuck_value: None },
            from: SimTime::from_secs(20),
            until: SimTime::from_secs(50),
        });
        let result = run_platoon(&config);
        assert_eq!(result.collisions, 0);
        assert!(
            result.los_time_fraction[2] < 0.98,
            "faulty sensor should prevent permanent LoS2: {:?}",
            result.los_time_fraction
        );
    }

    #[test]
    #[should_panic(expected = "at least one follower")]
    fn rejects_single_vehicle() {
        let config = PlatoonConfig { vehicles: 1, ..Default::default() };
        let _ = run_platoon(&config);
    }

    #[test]
    fn deterministic_for_a_given_seed() {
        let a = run_platoon(&base(ControlMode::SafetyKernel, 7));
        let b = run_platoon(&base(ControlMode::SafetyKernel, 7));
        assert_eq!(a, b);
    }
}

//! # karyon-vehicles — the KARYON automotive and avionics use cases (§VI)
//!
//! The paper's proof-of-concept use cases, implemented as deterministic
//! simulations on top of the other crates of the workspace:
//!
//! * [`control`] — longitudinal vehicle dynamics and the ACC/CACC controller
//!   with LoS-dependent time margins,
//! * [`platoon`] — the ACC / platooning scenario (use case A1) wired to the
//!   safety kernel, the abstract range sensor and the V2V link model,
//! * [`intersection`] — intersection crossing with an infrastructure traffic
//!   light, its I-am-alive monitoring and the virtual-traffic-light fallback
//!   built on virtual stationary automata (use case A2),
//! * [`lane_change`] — coordinated lane-change manoeuvres with the
//!   bounded-round agreement protocol (use case A3),
//! * [`avionics`] — the three aerial scenarios with separation-minima
//!   accounting and collaborative vs. non-collaborative traffic (§VI-B).
//!
//! ## Quick tour
//!
//! The LoS-dependent time margin is how the safety kernel's level choice
//! reaches the controller: lower levels demand larger headways:
//!
//! ```
//! use karyon_core::LevelOfService;
//! use karyon_vehicles::{emergency_brake_needed, time_margin_for_los};
//!
//! let full_cooperation = time_margin_for_los(LevelOfService(3));
//! let non_cooperative = time_margin_for_los(LevelOfService::NON_COOPERATIVE);
//! assert!(non_cooperative > full_cooperation,
//!         "losing cooperation must widen the required headway");
//! // 30 m gap closing at 15 m/s = 2 s to contact: below a 2.5 s threshold.
//! assert!(emergency_brake_needed(30.0, 15.0, 2.5));
//! assert!(!emergency_brake_needed(60.0, 15.0, 2.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avionics;
pub mod control;
pub mod intersection;
pub mod lane_change;
pub mod platoon;

pub use avionics::run_encounter;
pub use avionics::{
    AerialScenario, AvionicsConfig, AvionicsResult, TrafficType, HORIZONTAL_MINIMUM,
    VERTICAL_MINIMUM,
};
pub use control::{
    emergency_brake_needed, time_margin_for_los, AccController, AccInput, VehicleLimits,
    VehicleState,
};
pub use intersection::run_intersection;
pub use intersection::{FallbackMode, IntersectionConfig, IntersectionResult, VtlState};
pub use lane_change::run_lane_changes;
pub use lane_change::{Coordination, LaneChangeConfig, LaneChangeResult};
pub use platoon::{
    acc_design_time_info, run_platoon, ControlMode, InjectedSensorFault, PlatoonConfig,
    PlatoonResult, V2VModel,
};

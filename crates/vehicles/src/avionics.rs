//! The avionics use cases (paper §VI-B, Figs. 6–7).
//!
//! "A 'safety state' for an aerial vehicle can be considered as a spatial
//! volume around the vehicle where the possibility of entrance of other
//! objects is minimal … Usually this spatial volume is described in terms of
//! a vertical and a lateral distance, called 'separation minima'."
//!
//! Three encounter scenarios are modelled, each with a collaborative (ADS-B
//! grade positioning, 1 Hz reports) or non-collaborative (coarse position,
//! sporadic voice reports) intruder:
//!
//! 1. common trajectory in the same direction (rear aircraft faster),
//! 2. leveled crossing trajectories,
//! 3. coordinated flight-level change through another aircraft's level.

use karyon_sim::{Rng, SimDuration, Vec3};

/// Horizontal separation minimum (metres) — 5 NM.
pub const HORIZONTAL_MINIMUM: f64 = 9_260.0;
/// Vertical separation minimum (metres) — 1000 ft.
pub const VERTICAL_MINIMUM: f64 = 300.0;

/// The three aerial traffic scenarios of §VI-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AerialScenario {
    /// Two aircraft on a common trajectory, the rear one faster (ACC analogue).
    SameDirection,
    /// Two aircraft on leveled crossing trajectories (intersection analogue).
    LeveledCrossing,
    /// An RPV changing flight level through another aircraft's altitude
    /// (lane-change analogue).
    FlightLevelChange,
}

/// How the intruder reports its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficType {
    /// Knows its position accurately and broadcasts it (ADS-B / satellite).
    Collaborative,
    /// Coarse position, relayed sporadically over a voice channel.
    NonCollaborative,
}

/// Configuration of an avionics encounter run.
#[derive(Debug, Clone)]
pub struct AvionicsConfig {
    /// The encounter geometry.
    pub scenario: AerialScenario,
    /// How the intruder reports its position.
    pub traffic: TrafficType,
    /// Whether the RPV applies conflict resolution at all (disabling it gives
    /// the uncontrolled baseline).
    pub resolution_enabled: bool,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Random seed.
    pub seed: u64,
}

impl Default for AvionicsConfig {
    fn default() -> Self {
        AvionicsConfig {
            scenario: AerialScenario::SameDirection,
            traffic: TrafficType::Collaborative,
            resolution_enabled: true,
            duration: SimDuration::from_secs(900),
            seed: 1,
        }
    }
}

/// Aggregate result of one encounter.
#[derive(Debug, Clone, PartialEq)]
pub struct AvionicsResult {
    /// Smallest horizontal separation observed while vertical separation was
    /// below the vertical minimum (m).
    pub min_horizontal_separation: f64,
    /// Smallest vertical separation observed while horizontal separation was
    /// below the horizontal minimum (m).
    pub min_vertical_separation: f64,
    /// Seconds during which both separation minima were simultaneously
    /// violated (an "air traffic conflict" per the paper's definition).
    pub violation_seconds: f64,
    /// When the conflict was first detected, if ever (s from start).
    pub detected_at: Option<f64>,
    /// Whether a resolution manoeuvre was applied.
    pub resolution_applied: bool,
}

#[derive(Debug, Clone, Copy)]
struct Aircraft {
    position: Vec3,
    velocity: Vec3,
}

impl Aircraft {
    fn step(&mut self, dt: f64) {
        self.position += self.velocity * dt;
    }
}

/// Runs one avionics encounter and returns the separation metrics.
pub fn run_encounter(config: &AvionicsConfig) -> AvionicsResult {
    let dt = 1.0;
    let steps = config.duration.as_secs_f64().round() as u64;
    let mut rng = Rng::seed_from(config.seed);

    // Encounter geometry.  The "ownship" is the RPV executing the mission;
    // the "intruder" is the other traffic.
    let (mut ownship, mut intruder, own_climb_rate) = match config.scenario {
        AerialScenario::SameDirection => (
            // Rear aircraft, 60 m/s faster, 40 km behind, same level.
            Aircraft {
                position: Vec3::new(-40_000.0, 0.0, 10_000.0),
                velocity: Vec3::new(260.0, 0.0, 0.0),
            },
            Aircraft {
                position: Vec3::new(0.0, 0.0, 10_000.0),
                velocity: Vec3::new(200.0, 0.0, 0.0),
            },
            0.0,
        ),
        AerialScenario::LeveledCrossing => (
            // Ownship heading east, intruder heading north; tracks cross at
            // the origin at roughly the same time.
            Aircraft {
                position: Vec3::new(-50_000.0, 0.0, 10_000.0),
                velocity: Vec3::new(230.0, 0.0, 0.0),
            },
            Aircraft {
                position: Vec3::new(0.0, -52_000.0, 10_000.0),
                velocity: Vec3::new(0.0, 235.0, 0.0),
            },
            0.0,
        ),
        AerialScenario::FlightLevelChange => (
            // Ownship climbs through the intruder's level; the intruder flies
            // a parallel track offset laterally by ~6 km (not a direct
            // collision course, but within the horizontal minimum).
            Aircraft {
                position: Vec3::new(-2_000.0, 0.0, 9_000.0),
                velocity: Vec3::new(200.0, 0.0, 0.0),
            },
            Aircraft {
                position: Vec3::new(0.0, 6_000.0, 10_000.0),
                velocity: Vec3::new(200.0, 0.0, 0.0),
            },
            8.0,
        ),
    };
    ownship.velocity.z = own_climb_rate;

    // Surveillance model.
    let (report_period, position_noise) = match config.traffic {
        TrafficType::Collaborative => (1.0, 30.0),
        TrafficType::NonCollaborative => (20.0, 1_500.0),
    };
    let mut last_report_at = -f64::INFINITY;
    let mut estimated_intruder: Option<(Vec3, f64)> = None; // (position, report time)
    let mut previous_estimate: Option<(Vec3, f64)> = None;

    let mut result = AvionicsResult {
        min_horizontal_separation: f64::INFINITY,
        min_vertical_separation: f64::INFINITY,
        violation_seconds: 0.0,
        detected_at: None,
        resolution_applied: false,
    };

    for step in 0..steps {
        let t = step as f64 * dt;

        // Surveillance update.
        if t - last_report_at >= report_period {
            last_report_at = t;
            previous_estimate = estimated_intruder;
            let noisy = Vec3::new(
                intruder.position.x + rng.normal(0.0, position_noise),
                intruder.position.y + rng.normal(0.0, position_noise),
                intruder.position.z + rng.normal(0.0, position_noise / 10.0),
            );
            estimated_intruder = Some((noisy, t));
        }

        // Conflict detection on the *estimated* geometry: predicted to come
        // within 1.6× the horizontal minimum and 1.5× the vertical minimum
        // within the look-ahead horizon.
        if result.detected_at.is_none() {
            if let (Some((est_pos, est_t)), Some((prev_pos, prev_t))) =
                (estimated_intruder, previous_estimate)
            {
                let dt_est = (est_t - prev_t).max(1.0);
                let est_velocity = (est_pos - prev_pos) / dt_est;
                let extrapolated = est_pos + est_velocity * (t - est_t);
                let lookahead = 180.0;
                let mut conflict_predicted = false;
                for tau in [0.0, 30.0, 60.0, 90.0, 120.0, 150.0, lookahead] {
                    let own_future = ownship.position + ownship.velocity * tau;
                    let intruder_future = extrapolated + est_velocity * tau;
                    let horizontal = own_future.horizontal_distance(intruder_future);
                    let vertical = own_future.vertical_distance(intruder_future);
                    if horizontal < HORIZONTAL_MINIMUM * 1.6 && vertical < VERTICAL_MINIMUM * 1.5 {
                        conflict_predicted = true;
                        break;
                    }
                }
                if conflict_predicted {
                    result.detected_at = Some(t);
                }
            }
        }

        // Resolution: once the conflict is detected, the give-way aircraft
        // (the ownship in all three scenarios) slows down / levels off until
        // the conflict is over.
        if config.resolution_enabled && result.detected_at.is_some() {
            result.resolution_applied = true;
            match config.scenario {
                AerialScenario::SameDirection => {
                    // Decelerate 0.6 m/s² down to the intruder's speed.
                    if ownship.velocity.x > intruder.velocity.x {
                        ownship.velocity.x =
                            (ownship.velocity.x - 0.6 * dt).max(intruder.velocity.x);
                    }
                }
                AerialScenario::LeveledCrossing => {
                    // Slow down to pass behind the crossing traffic.
                    ownship.velocity.x = (ownship.velocity.x - 0.8 * dt).max(160.0);
                }
                AerialScenario::FlightLevelChange => {
                    // Pause the climb below the intruder's level.
                    if (ownship.position.z - intruder.position.z).abs() < 2.0 * VERTICAL_MINIMUM
                        && ownship.position.z < intruder.position.z
                    {
                        ownship.velocity.z = 0.0;
                    } else {
                        ownship.velocity.z = own_climb_rate;
                    }
                }
            }
        }

        ownship.step(dt);
        intruder.step(dt);

        // Separation accounting on the true geometry.
        let horizontal = ownship.position.horizontal_distance(intruder.position);
        let vertical = ownship.position.vertical_distance(intruder.position);
        if vertical < VERTICAL_MINIMUM {
            result.min_horizontal_separation = result.min_horizontal_separation.min(horizontal);
        }
        if horizontal < HORIZONTAL_MINIMUM {
            result.min_vertical_separation = result.min_vertical_separation.min(vertical);
        }
        if horizontal < HORIZONTAL_MINIMUM && vertical < VERTICAL_MINIMUM {
            result.violation_seconds += dt;
        }
    }

    if result.min_horizontal_separation.is_infinite() {
        result.min_horizontal_separation = f64::MAX;
    }
    if result.min_vertical_separation.is_infinite() {
        result.min_vertical_separation = f64::MAX;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        scenario: AerialScenario,
        traffic: TrafficType,
        resolution: bool,
        seed: u64,
    ) -> AvionicsResult {
        run_encounter(&AvionicsConfig {
            scenario,
            traffic,
            resolution_enabled: resolution,
            seed,
            ..Default::default()
        })
    }

    #[test]
    fn unresolved_same_direction_encounter_violates_separation() {
        let result = run(AerialScenario::SameDirection, TrafficType::Collaborative, false, 1);
        assert!(result.violation_seconds > 0.0, "{result:?}");
        assert!(result.min_horizontal_separation < HORIZONTAL_MINIMUM);
        assert!(!result.resolution_applied);
    }

    #[test]
    fn collaborative_resolution_keeps_separation_in_all_scenarios() {
        for (i, scenario) in [
            AerialScenario::SameDirection,
            AerialScenario::LeveledCrossing,
            AerialScenario::FlightLevelChange,
        ]
        .iter()
        .enumerate()
        {
            let result = run(*scenario, TrafficType::Collaborative, true, 10 + i as u64);
            assert_eq!(result.violation_seconds, 0.0, "{scenario:?}: {result:?}");
            assert!(result.detected_at.is_some(), "{scenario:?} must detect the conflict");
            assert!(result.resolution_applied);
        }
    }

    #[test]
    fn non_collaborative_traffic_detects_later_and_gets_closer() {
        let collaborative = run(AerialScenario::SameDirection, TrafficType::Collaborative, true, 2);
        let non_collaborative =
            run(AerialScenario::SameDirection, TrafficType::NonCollaborative, true, 2);
        let t_collab = collaborative.detected_at.expect("collaborative detection");
        let t_non = non_collaborative.detected_at.unwrap_or(f64::MAX);
        assert!(t_non >= t_collab, "non-collaborative must not detect earlier");
        assert!(
            non_collaborative.min_horizontal_separation
                <= collaborative.min_horizontal_separation + 1.0,
            "collab {} vs non-collab {}",
            collaborative.min_horizontal_separation,
            non_collaborative.min_horizontal_separation
        );
    }

    #[test]
    fn flight_level_change_without_resolution_busts_the_level() {
        let result = run(AerialScenario::FlightLevelChange, TrafficType::Collaborative, false, 3);
        // The climb passes through the intruder's level within the lateral minimum.
        assert!(result.min_vertical_separation < VERTICAL_MINIMUM, "{result:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(AerialScenario::LeveledCrossing, TrafficType::NonCollaborative, true, 9);
        let b = run(AerialScenario::LeveledCrossing, TrafficType::NonCollaborative, true, 9);
        assert_eq!(a, b);
    }
}

//! Longitudinal vehicle dynamics and the ACC/CACC controllers.
//!
//! The automotive use case A1: "ACCs allow vehicles to slow when approaching
//! other vehicles and to accelerate to their cruising speed when possible …
//! The level of service for this use case is mainly the needed time margin
//! between vehicles for meeting the safety goals.  Higher level of service
//! means a lower time margin between vehicles."

use karyon_core::LevelOfService;
use karyon_sim::geometry::clamp;

/// Longitudinal state of a road vehicle in lane coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleState {
    /// Position along the lane (metres, increasing in the driving direction).
    pub position: f64,
    /// Speed (m/s, non-negative).
    pub speed: f64,
    /// Acceleration currently applied (m/s²).
    pub acceleration: f64,
    /// Lane index (0 = rightmost).
    pub lane: usize,
}

impl VehicleState {
    /// Creates a state at the given position and speed in lane 0.
    pub fn new(position: f64, speed: f64) -> Self {
        VehicleState { position, speed: speed.max(0.0), acceleration: 0.0, lane: 0 }
    }

    /// Advances the state by `dt` seconds with the given commanded
    /// acceleration, respecting actuator limits and never reversing.
    pub fn step(&mut self, commanded_acceleration: f64, dt: f64, limits: &VehicleLimits) {
        let a = clamp(commanded_acceleration, -limits.max_deceleration, limits.max_acceleration);
        self.acceleration = a;
        let new_speed = (self.speed + a * dt).clamp(0.0, limits.max_speed);
        // Trapezoidal position update.
        self.position += (self.speed + new_speed) * 0.5 * dt;
        self.speed = new_speed;
    }

    /// The bumper-to-bumper gap to a leading vehicle, given both positions
    /// and the vehicle length.
    pub fn gap_to(&self, leader_position: f64, vehicle_length: f64) -> f64 {
        leader_position - self.position - vehicle_length
    }

    /// The time gap (headway) to a leader at the given gap, in seconds;
    /// effectively infinite when stationary.
    pub fn time_gap(&self, gap: f64) -> f64 {
        if self.speed < 0.1 {
            f64::INFINITY
        } else {
            gap / self.speed
        }
    }
}

/// Actuation limits of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleLimits {
    /// Maximum acceleration (m/s²).
    pub max_acceleration: f64,
    /// Maximum (service) deceleration magnitude (m/s²).
    pub max_deceleration: f64,
    /// Maximum speed (m/s).
    pub max_speed: f64,
    /// Vehicle length (m).
    pub length: f64,
}

impl Default for VehicleLimits {
    fn default() -> Self {
        VehicleLimits { max_acceleration: 2.0, max_deceleration: 6.0, max_speed: 36.0, length: 4.5 }
    }
}

/// The time margin (desired time gap, seconds) the ACC keeps at each Level of
/// Service — the LoS-dependent performance/safety knob of use case A1.
/// Higher LoS ⇒ smaller time margin ⇒ higher road throughput.
pub fn time_margin_for_los(los: LevelOfService) -> f64 {
    match los.0 {
        0 => 1.8, // autonomous sensors only, conservative
        1 => 1.2, // cooperative awareness with degraded guarantees
        _ => 0.6, // fully cooperative (CACC-grade guarantees)
    }
}

/// Input the controller acts on each cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccInput {
    /// Measured gap to the leader (m); `None` when no leader is detected.
    pub gap: Option<f64>,
    /// Measured closing speed (own speed − leader speed, m/s), if known.
    pub closing_speed: Option<f64>,
    /// The leader's acceleration received over V2V, if available and trusted
    /// (this is what turns ACC into CACC).
    pub leader_acceleration: Option<f64>,
}

/// A constant-time-gap adaptive cruise controller with an optional
/// feed-forward term from cooperatively received leader acceleration.
#[derive(Debug, Clone)]
pub struct AccController {
    /// Desired cruising speed when unconstrained (m/s).
    pub cruise_speed: f64,
    /// Gap-error gain (1/s²).
    pub gap_gain: f64,
    /// Speed-error gain (1/s).
    pub speed_gain: f64,
    /// Feed-forward gain on the cooperative leader acceleration.
    pub feedforward_gain: f64,
    /// Minimum standstill spacing (m).
    pub standstill_gap: f64,
}

impl Default for AccController {
    fn default() -> Self {
        AccController {
            cruise_speed: 30.0,
            gap_gain: 0.25,
            speed_gain: 0.6,
            feedforward_gain: 0.8,
            standstill_gap: 3.0,
        }
    }
}

impl AccController {
    /// Computes the commanded acceleration for the current cycle.
    ///
    /// `time_margin` is the desired time gap (from [`time_margin_for_los`]).
    pub fn control(&self, own_speed: f64, input: &AccInput, time_margin: f64) -> f64 {
        match input.gap {
            None => {
                // Free driving: track the cruise speed.
                self.speed_gain * (self.cruise_speed - own_speed)
            }
            Some(gap) => {
                let desired_gap = self.standstill_gap + time_margin * own_speed;
                let gap_error = gap - desired_gap;
                let closing = input.closing_speed.unwrap_or(0.0);
                let mut a = self.gap_gain * gap_error - self.speed_gain * closing;
                if let Some(lead_acc) = input.leader_acceleration {
                    a += self.feedforward_gain * lead_acc;
                }
                // Never exceed what free driving would command.
                let free = self.speed_gain * (self.cruise_speed - own_speed);
                a.min(free)
            }
        }
    }
}

/// Emergency braking supervisor: a below-the-hybridization-line function that
/// overrides the ACC when the time-to-collision drops below a bound.  This is
/// the "ultimate safety provision" that exists at every LoS.
pub fn emergency_brake_needed(gap: f64, closing_speed: f64, ttc_threshold: f64) -> bool {
    if gap <= 0.0 {
        return true;
    }
    if closing_speed <= 0.0 {
        return false;
    }
    gap / closing_speed < ttc_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_integration_respects_limits() {
        let limits = VehicleLimits::default();
        let mut v = VehicleState::new(0.0, 30.0);
        v.step(10.0, 1.0, &limits); // command above the limit
        assert!((v.acceleration - 2.0).abs() < 1e-9);
        assert!((v.speed - 32.0).abs() < 1e-9);
        assert!((v.position - 31.0).abs() < 1e-9);
        // Hard braking cannot reverse.
        let mut s = VehicleState::new(0.0, 1.0);
        s.step(-6.0, 1.0, &limits);
        assert_eq!(s.speed, 0.0);
        assert!(s.position > 0.0);
        // Max speed cap.
        let mut f = VehicleState::new(0.0, 35.5);
        f.step(2.0, 1.0, &limits);
        assert_eq!(f.speed, 36.0);
    }

    #[test]
    fn gap_and_time_gap() {
        let v = VehicleState::new(100.0, 20.0);
        assert!((v.gap_to(150.0, 4.5) - 45.5).abs() < 1e-9);
        assert!((v.time_gap(40.0) - 2.0).abs() < 1e-9);
        let stopped = VehicleState::new(0.0, 0.0);
        assert!(stopped.time_gap(10.0).is_infinite());
    }

    #[test]
    fn time_margin_decreases_with_los() {
        let m0 = time_margin_for_los(LevelOfService(0));
        let m1 = time_margin_for_los(LevelOfService(1));
        let m2 = time_margin_for_los(LevelOfService(2));
        assert!(m0 > m1 && m1 > m2);
        assert_eq!(time_margin_for_los(LevelOfService(5)), m2);
    }

    #[test]
    fn free_driving_tracks_cruise_speed() {
        let acc = AccController::default();
        let a_slow = acc.control(
            20.0,
            &AccInput { gap: None, closing_speed: None, leader_acceleration: None },
            1.0,
        );
        assert!(a_slow > 0.0);
        let a_fast = acc.control(
            35.0,
            &AccInput { gap: None, closing_speed: None, leader_acceleration: None },
            1.0,
        );
        assert!(a_fast < 0.0);
    }

    #[test]
    fn following_regulates_towards_desired_gap() {
        let acc = AccController::default();
        let speed = 25.0;
        let margin = 1.0;
        // Desired gap = 3 + 25 = 28 m.
        let too_close = acc.control(
            speed,
            &AccInput { gap: Some(15.0), closing_speed: Some(0.0), leader_acceleration: None },
            margin,
        );
        assert!(too_close < 0.0);
        let too_far = acc.control(
            speed,
            &AccInput { gap: Some(60.0), closing_speed: Some(0.0), leader_acceleration: None },
            margin,
        );
        assert!(too_far > 0.0);
        // Closing fast on the leader demands braking even at the desired gap.
        let closing = acc.control(
            speed,
            &AccInput { gap: Some(28.0), closing_speed: Some(5.0), leader_acceleration: None },
            margin,
        );
        assert!(closing < 0.0);
    }

    #[test]
    fn cooperative_feedforward_reacts_before_the_gap_changes() {
        let acc = AccController::default();
        let base =
            AccInput { gap: Some(28.0), closing_speed: Some(0.0), leader_acceleration: None };
        let coop = AccInput { leader_acceleration: Some(-3.0), ..base };
        let a_base = acc.control(25.0, &base, 1.0);
        let a_coop = acc.control(25.0, &coop, 1.0);
        assert!(a_coop < a_base, "V2V-known braking must be anticipated");
    }

    #[test]
    fn emergency_brake_trigger() {
        assert!(emergency_brake_needed(5.0, 10.0, 1.0)); // 0.5 s TTC
        assert!(!emergency_brake_needed(50.0, 10.0, 1.0));
        assert!(!emergency_brake_needed(50.0, -2.0, 1.0)); // opening gap
        assert!(emergency_brake_needed(-1.0, 0.0, 1.0)); // already overlapping
    }
}

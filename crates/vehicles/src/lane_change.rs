//! Coordinated lane-change manoeuvres (paper §VI-A3).
//!
//! "The idea here is to provide a distributed mechanism for assuring that at
//! any time and any region there is at most one vehicle that is changing its
//! lane and that the nearby vehicles allow it to safely complete the
//! manoeuvre."  The coordination uses the bounded-round agreement protocol of
//! [`karyon_core::cooperation`]; the baseline starts the manoeuvre without
//! asking anyone.

use std::collections::BTreeMap;

use karyon_core::{AgreementMessage, AgreementProtocol, ProposalState};
use karyon_sim::{Rng, SimDuration, SimTime};

/// Whether lane changes are coordinated through the agreement protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coordination {
    /// KARYON coordination: agreement with all vehicles in the region first.
    Agreement,
    /// Baseline: start the manoeuvre immediately when desired.
    None,
}

/// Configuration of the lane-change scenario.
#[derive(Debug, Clone)]
pub struct LaneChangeConfig {
    /// Number of vehicles on the two-lane road segment.
    pub vehicles: usize,
    /// Length of the circular road segment (m).
    pub road_length: f64,
    /// Radius of the coordination region around a changing vehicle (m).
    pub region_radius: f64,
    /// Probability per vehicle per second of desiring a lane change.
    pub desire_rate: f64,
    /// Probability that a protocol message is lost.
    pub message_loss: f64,
    /// Duration of a lane-change manoeuvre.
    pub manoeuvre_duration: SimDuration,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Coordination mode.
    pub coordination: Coordination,
    /// Random seed.
    pub seed: u64,
}

impl Default for LaneChangeConfig {
    fn default() -> Self {
        LaneChangeConfig {
            vehicles: 16,
            road_length: 1_000.0,
            region_radius: 80.0,
            desire_rate: 0.05,
            message_loss: 0.02,
            manoeuvre_duration: SimDuration::from_secs(4),
            duration: SimDuration::from_secs(300),
            coordination: Coordination::Agreement,
            seed: 1,
        }
    }
}

/// Aggregate result of the lane-change scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneChangeResult {
    /// Lane changes the vehicles wanted to perform.
    pub desired: u64,
    /// Manoeuvres actually started.
    pub started: u64,
    /// Manoeuvres completed.
    pub completed: u64,
    /// Proposals aborted (rejected or timed out) before starting.
    pub aborted: u64,
    /// Steps in which two concurrent manoeuvres overlapped the same region —
    /// the safety invariant the coordination must keep at zero.
    pub invariant_violations: u64,
    /// Mean delay from desire to manoeuvre start, for started manoeuvres (s).
    pub mean_start_delay: f64,
}

#[derive(Debug, Clone, Copy)]
struct ActiveManoeuvre {
    ends_at: SimTime,
    proposal: Option<u64>,
}

/// Runs the lane-change scenario and returns the aggregate metrics.
pub fn run_lane_changes(config: &LaneChangeConfig) -> LaneChangeResult {
    let dt = 0.5;
    let steps = (config.duration.as_secs_f64() / dt).round() as u64;
    let mut rng = Rng::seed_from(config.seed);

    // Vehicle kinematics: constant speeds on a ring road, two lanes.
    let mut positions: Vec<f64> = (0..config.vehicles)
        .map(|i| i as f64 * config.road_length / config.vehicles as f64)
        .collect();
    let speeds: Vec<f64> = (0..config.vehicles).map(|i| 24.0 + (i % 5) as f64).collect();

    let mut protocols: Vec<AgreementProtocol> =
        (0..config.vehicles).map(|i| AgreementProtocol::new(i as u32)).collect();
    // Pending proposals awaiting agreement: initiator → (proposal id, desired-at time).
    let mut pending: BTreeMap<usize, (u64, SimTime)> = BTreeMap::new();
    // Active manoeuvres per vehicle.
    let mut active: BTreeMap<usize, ActiveManoeuvre> = BTreeMap::new();
    // In-flight protocol messages: (recipients, message), delivered next step.
    let mut in_flight: Vec<(Vec<usize>, AgreementMessage)> = Vec::new();
    // Outcome messages held back until the manoeuvre completes, so that the
    // region stays reserved for its whole duration.
    let mut held_outcomes: BTreeMap<usize, AgreementMessage> = BTreeMap::new();

    let mut result = LaneChangeResult {
        desired: 0,
        started: 0,
        completed: 0,
        aborted: 0,
        invariant_violations: 0,
        mean_start_delay: 0.0,
    };
    let mut start_delay_sum = 0.0;

    let ring_distance = |a: f64, b: f64| -> f64 {
        let d = (a - b).abs() % config.road_length;
        d.min(config.road_length - d)
    };

    for step in 0..steps {
        let now = SimTime::from_secs_f64(step as f64 * dt);

        // Kinematics.
        for (pos, speed) in positions.iter_mut().zip(&speeds) {
            *pos = (*pos + speed * dt) % config.road_length;
        }

        // Deliver in-flight protocol messages (one-step latency, with loss).
        let deliveries = std::mem::take(&mut in_flight);
        for (recipients, message) in deliveries {
            for recipient in recipients {
                if rng.chance(config.message_loss) {
                    continue;
                }
                // Vehicles busy with their own manoeuvre (active or proposed)
                // refuse new proposals — this is what resolves two vehicles
                // in the same region proposing simultaneously (both abort and
                // retry later).
                if let AgreementMessage::Propose { proposal, .. } = &message {
                    if active.contains_key(&recipient) || pending.contains_key(&recipient) {
                        in_flight.push((
                            vec![initiator_of(&message) as usize],
                            AgreementMessage::Reject {
                                proposal: *proposal,
                                participant: recipient as u32,
                            },
                        ));
                        continue;
                    }
                }
                let responses = protocols[recipient].on_message(&message, now);
                for response in responses {
                    let targets =
                        response_targets(&response, &message, config, &positions, recipient);
                    in_flight.push((targets, response));
                }
            }
        }

        // Timeouts of pending proposals.
        for (initiator, protocol) in protocols.iter_mut().enumerate() {
            for outcome in protocol.tick(now) {
                let region: Vec<usize> =
                    neighbours(&positions, initiator, config.region_radius, &ring_distance);
                in_flight.push((region, outcome));
            }
        }

        // Resolve pending proposals whose state settled.
        let mut resolved: Vec<usize> = Vec::new();
        for (&initiator, &(proposal, desired_at)) in &pending {
            match protocols[initiator].proposal_state(proposal) {
                Some(ProposalState::Agreed) => {
                    result.started += 1;
                    start_delay_sum += now.since(desired_at).as_secs_f64();
                    active.insert(
                        initiator,
                        ActiveManoeuvre {
                            ends_at: now + config.manoeuvre_duration,
                            proposal: Some(proposal),
                        },
                    );
                    // Hold the positive outcome back until completion so the
                    // participants stay committed for the manoeuvre duration.
                    held_outcomes
                        .insert(initiator, AgreementMessage::Outcome { proposal, agreed: true });
                    resolved.push(initiator);
                }
                Some(ProposalState::Aborted) => {
                    result.aborted += 1;
                    resolved.push(initiator);
                }
                _ => {}
            }
        }
        for initiator in resolved {
            pending.remove(&initiator);
        }

        // Complete manoeuvres.
        let finished: Vec<usize> =
            active.iter().filter(|(_, m)| m.ends_at <= now).map(|(v, _)| *v).collect();
        for vehicle in finished {
            let manoeuvre = active.remove(&vehicle).expect("active manoeuvre");
            result.completed += 1;
            if manoeuvre.proposal.is_some() {
                if let Some(outcome) = held_outcomes.remove(&vehicle) {
                    let region: Vec<usize> =
                        neighbours(&positions, vehicle, config.region_radius, &ring_distance);
                    in_flight.push((region, outcome));
                }
            }
        }

        // Safety invariant: at most one vehicle changing its lane in any
        // region.  The violation radius is smaller than the coordination
        // radius by a safety margin that absorbs the relative movement of
        // vehicles between the proposal and the end of the manoeuvre (≤ 5 m/s
        // relative speed over ≤ 6 s), so that the coordination region chosen
        // at design time actually covers every vehicle that could end up that
        // close while both manoeuvres are in progress.
        let violation_radius = (config.region_radius - 35.0).max(1.0);
        let changing: Vec<usize> = active.keys().copied().collect();
        for i in 0..changing.len() {
            for j in (i + 1)..changing.len() {
                if ring_distance(positions[changing[i]], positions[changing[j]]) <= violation_radius
                {
                    result.invariant_violations += 1;
                }
            }
        }

        // New lane-change desires.
        for (vehicle, protocol) in protocols.iter_mut().enumerate() {
            if active.contains_key(&vehicle) || pending.contains_key(&vehicle) {
                continue;
            }
            if !rng.chance(config.desire_rate * dt) {
                continue;
            }
            result.desired += 1;
            match config.coordination {
                Coordination::None => {
                    result.started += 1;
                    active.insert(
                        vehicle,
                        ActiveManoeuvre {
                            ends_at: now + config.manoeuvre_duration,
                            proposal: None,
                        },
                    );
                }
                Coordination::Agreement => {
                    let region: Vec<usize> =
                        neighbours(&positions, vehicle, config.region_radius, &ring_distance);
                    let participants: Vec<u32> = region.iter().map(|v| *v as u32).collect();
                    let (message, proposal) = protocol.propose(
                        "lane-change",
                        &participants,
                        now,
                        SimDuration::from_secs(2),
                    );
                    pending.insert(vehicle, (proposal, now));
                    in_flight.push((region, message));
                }
            }
        }
    }

    if result.started > 0 {
        result.mean_start_delay = start_delay_sum / result.started as f64;
    }
    result
}

fn initiator_of(message: &AgreementMessage) -> u32 {
    match message {
        AgreementMessage::Propose { initiator, .. } => *initiator,
        _ => 0,
    }
}

fn response_targets(
    response: &AgreementMessage,
    request: &AgreementMessage,
    config: &LaneChangeConfig,
    positions: &[f64],
    responder: usize,
) -> Vec<usize> {
    match response {
        AgreementMessage::Accept { .. } | AgreementMessage::Reject { .. } => {
            vec![initiator_of(request) as usize]
        }
        _ => {
            // Outcomes go to the responder's neighbourhood.
            let ring = |a: f64, b: f64| {
                let d = (a - b).abs() % config.road_length;
                d.min(config.road_length - d)
            };
            neighbours(positions, responder, config.region_radius, &ring)
        }
    }
}

fn neighbours(
    positions: &[f64],
    vehicle: usize,
    radius: f64,
    ring_distance: &impl Fn(f64, f64) -> f64,
) -> Vec<usize> {
    positions
        .iter()
        .enumerate()
        .filter(|(i, pos)| *i != vehicle && ring_distance(**pos, positions[vehicle]) <= radius)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(coordination: Coordination, seed: u64) -> LaneChangeConfig {
        LaneChangeConfig {
            coordination,
            seed,
            duration: SimDuration::from_secs(240),
            ..Default::default()
        }
    }

    #[test]
    fn coordinated_changes_keep_the_invariant() {
        let result = run_lane_changes(&config(Coordination::Agreement, 1));
        assert_eq!(result.invariant_violations, 0, "{result:?}");
        assert!(result.started > 5, "some manoeuvres must go through: {result:?}");
        assert!(result.completed > 0);
        assert!(result.completed <= result.started);
        assert!(result.mean_start_delay < 3.0, "agreement should settle quickly");
    }

    #[test]
    fn uncoordinated_changes_violate_the_invariant() {
        let result = run_lane_changes(&config(Coordination::None, 2));
        assert!(result.invariant_violations > 0, "{result:?}");
        assert_eq!(result.aborted, 0);
        assert_eq!(result.desired, result.started);
    }

    #[test]
    fn coordination_trades_some_throughput_for_safety() {
        let coordinated = run_lane_changes(&config(Coordination::Agreement, 3));
        let baseline = run_lane_changes(&config(Coordination::None, 3));
        assert!(coordinated.started <= baseline.started);
        assert!(coordinated.invariant_violations < baseline.invariant_violations);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_lane_changes(&config(Coordination::Agreement, 5));
        let b = run_lane_changes(&config(Coordination::Agreement, 5));
        assert_eq!(a, b);
    }
}

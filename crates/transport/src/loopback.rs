//! Production in-process transport: a zero-delay, loss-free FIFO.

use std::collections::VecDeque;

use karyon_sim::SimTime;

use crate::{Delivery, NetTransport, NodeId, TransportStats};

/// The in-process production fabric.
///
/// Messages are delivered instantly (send time == delivery time) in exact
/// submission order, with no loss, duplication or reordering.  The clock only
/// moves when [`NetTransport::advance_to`] is called with a later deadline,
/// which keeps loopback runs comparable with simulated ones that pump time
/// explicitly.
#[derive(Debug, Default)]
pub struct LoopbackTransport {
    now: SimTime,
    queue: VecDeque<Delivery>,
    stats: TransportStats,
}

impl LoopbackTransport {
    /// Creates an empty loopback fabric with the clock at zero.
    pub fn new() -> Self {
        Self::default()
    }
}

impl NetTransport for LoopbackTransport {
    fn send(&mut self, src: NodeId, dst: NodeId, payload: Vec<u8>) {
        self.stats.sent += 1;
        self.queue.push_back(Delivery {
            src,
            dst,
            sent_at: self.now,
            delivered_at: self.now,
            payload,
            duplicate: false,
        });
    }

    fn advance_to(&mut self, deadline: SimTime) -> Vec<Delivery> {
        if deadline > self.now {
            self.now = deadline;
        }
        self.drain()
    }

    fn drain(&mut self) -> Vec<Delivery> {
        let out: Vec<Delivery> = self.queue.drain(..).collect();
        self.stats.delivered += out.len() as u64;
        out
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn stats(&self) -> TransportStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_delivers_in_fifo_order_without_loss() {
        let mut net = LoopbackTransport::new();
        for i in 0u8..5 {
            net.send(NodeId(0), NodeId(1), vec![i]);
        }
        let out = net.drain();
        assert_eq!(out.len(), 5);
        for (i, d) in out.iter().enumerate() {
            assert_eq!(d.payload, vec![i as u8]);
            assert_eq!(d.sent_at, d.delivered_at);
            assert!(!d.duplicate);
        }
        let stats = net.stats();
        assert_eq!(stats.sent, 5);
        assert_eq!(stats.delivered, 5);
        assert_eq!(stats.lost(), 0);
    }

    #[test]
    fn advance_to_moves_the_clock_monotonically() {
        let mut net = LoopbackTransport::new();
        net.advance_to(SimTime::from_millis(10));
        assert_eq!(net.now(), SimTime::from_millis(10));
        // A stale deadline never rewinds the clock.
        net.advance_to(SimTime::from_millis(5));
        assert_eq!(net.now(), SimTime::from_millis(10));
        net.send(NodeId(2), NodeId(3), b"hello".to_vec());
        let out = net.advance_to(SimTime::from_millis(20));
        assert_eq!(out[0].sent_at, SimTime::from_millis(10));
        assert_eq!(out[0].delivered_at, SimTime::from_millis(10));
    }
}

#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Message transport abstraction for the KARYON campaign stack.
//!
//! ROADMAP item 1 wants campaign chunks sharded across real machines; ROADMAP
//! item 4 wants the failure modes of that protocol explored *before* any real
//! network code exists.  This crate provides the seam between the two:
//!
//! * [`NetTransport`] — the minimal message-passing surface coordinator/worker
//!   protocols are written against (send bytes, pump the fabric, drain
//!   deliveries).
//! * [`LoopbackTransport`] — the production in-process implementation: a
//!   zero-delay, loss-free FIFO.  What the sharding protocol will run over on
//!   a single machine.
//! * [`SimTransport`] — a deterministic simulated fabric driven by the
//!   virtual-clock [`karyon_sim::Engine`] plus seed-derived entropy.  Per-link
//!   delay/jitter distributions, drop, duplication, reordering and partition
//!   schedules are all functions of the construction seed, so any interleaving
//!   observed under faults is replayable bit-for-bit from that seed — the same
//!   contract campaign runs already honour.
//! * [`ShardCoordinator`] ([`coordinator`]) — the shard-handoff state machine
//!   written against [`NetTransport`]: workers claim shard windows, hold them
//!   under leases, and report completion; expired leases are reassigned and
//!   the first completion per shard wins, so the merge log lists every shard
//!   exactly once even under worker deaths and duplicated messages.
//!
//! # Determinism contract
//!
//! For a fixed seed, link configuration and send sequence, [`SimTransport`]
//! yields the identical delivery sequence (order, times, payloads, duplicate
//! flags) and identical [`TransportStats`] on every run.  This holds because
//! (a) each directed link's entropy stream is derived purely from
//! `(seed, src, dst)` — never from map insertion order or wall clock — and
//! (b) the engine's event queue breaks same-time ties by schedule order, so
//! simultaneous deliveries keep a stable order.

use std::fmt;

use karyon_sim::SimTime;

pub mod coordinator;
mod loopback;
mod sim;

pub use coordinator::{MergeRecord, ShardCoordinator, ShardMsg, ShardState};
pub use loopback::LoopbackTransport;
pub use sim::{LinkConfig, PartitionWindow, SimNetEvent, SimNetState, SimTransport};

/// Logical address of a node on a transport fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One message handed to its destination, annotated with fabric timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Fabric time at which the message was submitted.
    pub sent_at: SimTime,
    /// Fabric time at which it reached the destination.
    pub delivered_at: SimTime,
    /// Message bytes, unmodified.
    pub payload: Vec<u8>,
    /// `true` on the extra copy of a duplicated message.
    pub duplicate: bool,
}

/// Monotonic counters describing everything a transport did since
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages submitted via [`NetTransport::send`].
    pub sent: u64,
    /// Deliveries handed out (duplicates counted individually).
    pub delivered: u64,
    /// Messages dropped by per-link loss.
    pub dropped: u64,
    /// Extra copies injected by per-link duplication.
    pub duplicated: u64,
    /// Deliveries that arrived after a message sent later on the same link.
    pub reordered: u64,
    /// Messages severed by an active partition window.
    pub partition_dropped: u64,
}

impl TransportStats {
    /// Total messages that never reached their destination.
    pub fn lost(&self) -> u64 {
        self.dropped + self.partition_dropped
    }
}

/// Minimal message-passing surface the campaign stack programs against.
///
/// Implementations own their notion of time: the simulated fabric advances a
/// virtual clock, the loopback fabric delivers instantly at a frozen clock.
pub trait NetTransport {
    /// Submits `payload` from `src` to `dst` at the current fabric time.
    fn send(&mut self, src: NodeId, dst: NodeId, payload: Vec<u8>);

    /// Advances the fabric to `deadline` and returns everything delivered up
    /// to (and including) that instant, in delivery order.
    fn advance_to(&mut self, deadline: SimTime) -> Vec<Delivery>;

    /// Runs the fabric until nothing is in flight and returns the remaining
    /// deliveries in delivery order.
    fn drain(&mut self) -> Vec<Delivery>;

    /// Current fabric time.
    fn now(&self) -> SimTime;

    /// Counters accumulated since construction.
    fn stats(&self) -> TransportStats;
}

/// Directed link identifier used by per-link configuration and entropy.
pub(crate) type LinkKey = (u32, u32);

pub(crate) fn link_key(src: NodeId, dst: NodeId) -> LinkKey {
    (src.0, dst.0)
}

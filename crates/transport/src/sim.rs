//! The seed-deterministic simulated network fabric.

use std::collections::BTreeMap;

use karyon_sim::{splitmix64, Engine, Rng, SimDuration, SimTime};

use crate::{link_key, Delivery, LinkKey, NetTransport, NodeId, TransportStats};

/// Per-directed-link delay and fault configuration.
///
/// All probabilities are clamped to `[0, 1]` by the underlying sampler; all
/// extra delays are drawn uniformly from the configured windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Base one-way propagation delay.
    pub delay: SimDuration,
    /// Uniform extra delay in `[0, jitter]` added to every message.
    pub jitter: SimDuration,
    /// Probability that a message is silently dropped.
    pub drop_probability: f64,
    /// Probability that a message is delivered twice (the extra copy carries
    /// [`Delivery::duplicate`]).
    pub duplicate_probability: f64,
    /// Probability that a message is held back by an extra delay drawn from
    /// `[0, reorder_window]`, letting later sends overtake it.
    pub reorder_probability: f64,
    /// Maximum hold-back applied to reordered messages.
    pub reorder_window: SimDuration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            delay: SimDuration::from_millis(5),
            jitter: SimDuration::from_millis(2),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_window: SimDuration::from_millis(20),
        }
    }
}

/// A scheduled bidirectional partition between two node groups.
///
/// While the fabric clock is in `[from, until)`, any message between a member
/// of `group_a` and a member of `group_b` (either direction) is severed at
/// send time and counted in [`TransportStats::partition_dropped`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First instant at which the partition is active.
    pub from: SimTime,
    /// First instant at which the partition has healed.
    pub until: SimTime,
    /// One side of the cut.
    pub group_a: Vec<NodeId>,
    /// The other side of the cut.
    pub group_b: Vec<NodeId>,
}

impl PartitionWindow {
    fn severs(&self, now: SimTime, src: NodeId, dst: NodeId) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        let (a, b) = (&self.group_a, &self.group_b);
        (a.contains(&src) && b.contains(&dst)) || (a.contains(&dst) && b.contains(&src))
    }
}

/// Mailbox and delivery counters owned by the embedded engine.
///
/// Public only so [`SimTransport::engine`] can expose the engine for clamp
/// audits ([`karyon_sim::Engine::clamped_schedules`]); the fields are
/// internal.
#[derive(Debug, Default)]
pub struct SimNetState {
    inbox: Vec<Delivery>,
    delivered: u64,
    reordered: u64,
    /// Highest send sequence number delivered so far, per directed link.
    last_seq: BTreeMap<LinkKey, u64>,
}

/// One in-flight message inside the embedded engine.
///
/// `Clone` because the engine's run loop requires cloneable events (periodic
/// trains replicate their payload per tick); in-flight messages themselves
/// are never duplicated by the clone — each is scheduled and popped once.
#[derive(Debug, Clone)]
pub struct SimNetEvent {
    delivery: Delivery,
    send_seq: u64,
}

/// The deterministic simulated fabric.
///
/// Built over [`karyon_sim::Engine`]: every send schedules a delivery event at
/// `now + delay`, the engine's `(time, insertion)`-ordered queue fixes the
/// delivery order, and all randomness (jitter, drops, duplicates, reorder
/// hold-backs) comes from per-link [`Rng`] streams derived purely from
/// `(seed, src, dst)`.  Identical seeds and send sequences therefore replay
/// identical delivery histories — see the crate-level determinism contract.
#[derive(Debug)]
pub struct SimTransport {
    engine: Engine<SimNetState, SimNetEvent>,
    seed: u64,
    default_link: LinkConfig,
    links: BTreeMap<LinkKey, LinkConfig>,
    rngs: BTreeMap<LinkKey, Rng>,
    partitions: Vec<PartitionWindow>,
    send_seq: u64,
    sent: u64,
    dropped: u64,
    duplicated: u64,
    partition_dropped: u64,
}

impl SimTransport {
    /// Creates a fabric whose entire fault/delay behaviour derives from
    /// `seed`, with [`LinkConfig::default`] on every link.
    pub fn new(seed: u64) -> Self {
        SimTransport {
            engine: Engine::new(SimNetState::default()),
            seed,
            default_link: LinkConfig::default(),
            links: BTreeMap::new(),
            rngs: BTreeMap::new(),
            partitions: Vec::new(),
            send_seq: 0,
            sent: 0,
            dropped: 0,
            duplicated: 0,
            partition_dropped: 0,
        }
    }

    /// Replaces the configuration applied to links without an explicit
    /// [`set_link`](Self::set_link) entry.
    pub fn with_default_link(mut self, link: LinkConfig) -> Self {
        self.default_link = link;
        self
    }

    /// Configures one directed link `src → dst`.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, config: LinkConfig) {
        self.links.insert(link_key(src, dst), config);
    }

    /// Schedules a partition window.  Windows may overlap; a message is
    /// severed if any active window cuts its link.
    pub fn add_partition(&mut self, window: PartitionWindow) {
        self.partitions.push(window);
    }

    /// The embedded virtual-clock engine, exposed for clamp audits and
    /// observer attachment.
    pub fn engine(&self) -> &Engine<SimNetState, SimNetEvent> {
        &self.engine
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.engine.pending()
    }

    fn link_config(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.links.get(&link_key(src, dst)).copied().unwrap_or(self.default_link)
    }

    /// Per-link entropy stream, derived purely from `(seed, src, dst)` so the
    /// stream is independent of the order in which links are first used.
    fn link_rng(&mut self, src: NodeId, dst: NodeId) -> &mut Rng {
        let key = link_key(src, dst);
        let seed = self.seed;
        self.rngs.entry(key).or_insert_with(|| {
            let packed = ((key.0 as u64) << 32) | key.1 as u64;
            let mut state = seed ^ packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut state);
            Rng::seed_from(splitmix64(&mut state))
        })
    }

    fn pump(&mut self, deadline: Option<SimTime>) -> Vec<Delivery> {
        let handler = |state: &mut SimNetState,
                       _ctx: &mut karyon_sim::Context<'_, SimNetEvent>,
                       ev: SimNetEvent| {
            let key = link_key(ev.delivery.src, ev.delivery.dst);
            let last = state.last_seq.entry(key).or_insert(0);
            if ev.send_seq < *last {
                state.reordered += 1;
            } else {
                *last = ev.send_seq;
            }
            state.delivered += 1;
            state.inbox.push(ev.delivery);
        };
        match deadline {
            Some(t) => self.engine.run_until(t, handler),
            None => self.engine.run(handler),
        };
        std::mem::take(&mut self.engine.state_mut().inbox)
    }
}

impl NetTransport for SimTransport {
    fn send(&mut self, src: NodeId, dst: NodeId, payload: Vec<u8>) {
        let now = self.engine.now();
        self.sent += 1;
        if self.partitions.iter().any(|p| p.severs(now, src, dst)) {
            self.partition_dropped += 1;
            return;
        }
        let cfg = self.link_config(src, dst);
        let rng = self.link_rng(src, dst);
        if rng.chance(cfg.drop_probability) {
            self.dropped += 1;
            return;
        }
        let jitter_us = cfg.jitter.as_micros();
        let mut delay_us =
            cfg.delay.as_micros() + if jitter_us > 0 { rng.range_u64(0, jitter_us) } else { 0 };
        if rng.chance(cfg.reorder_probability) {
            let window_us = cfg.reorder_window.as_micros();
            if window_us > 0 {
                delay_us += rng.range_u64(0, window_us);
            }
        }
        let duplicate = rng.chance(cfg.duplicate_probability);
        // The extra copy trails the original by at least one microsecond so the
        // pair never collapses into one instant.
        let dup_delay_us =
            delay_us + 1 + if jitter_us > 0 { rng.range_u64(0, jitter_us) } else { 0 };

        self.send_seq += 1;
        let send_seq = self.send_seq;
        let deliver_at = now.saturating_add(SimDuration::from_micros(delay_us));
        self.engine.schedule_at(
            deliver_at,
            SimNetEvent {
                delivery: Delivery {
                    src,
                    dst,
                    sent_at: now,
                    delivered_at: deliver_at,
                    payload: payload.clone(),
                    duplicate: false,
                },
                send_seq,
            },
        );
        if duplicate {
            self.duplicated += 1;
            let dup_at = now.saturating_add(SimDuration::from_micros(dup_delay_us));
            self.engine.schedule_at(
                dup_at,
                SimNetEvent {
                    delivery: Delivery {
                        src,
                        dst,
                        sent_at: now,
                        delivered_at: dup_at,
                        payload,
                        duplicate: true,
                    },
                    send_seq,
                },
            );
        }
    }

    fn advance_to(&mut self, deadline: SimTime) -> Vec<Delivery> {
        self.pump(Some(deadline))
    }

    fn drain(&mut self) -> Vec<Delivery> {
        self.pump(None)
    }

    fn now(&self) -> SimTime {
        self.engine.now()
    }

    fn stats(&self) -> TransportStats {
        let state = self.engine.state();
        TransportStats {
            sent: self.sent,
            delivered: state.delivered,
            dropped: self.dropped,
            duplicated: self.duplicated,
            reordered: state.reordered,
            partition_dropped: self.partition_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossless_link(delay_ms: u64, jitter_ms: u64) -> LinkConfig {
        LinkConfig {
            delay: SimDuration::from_millis(delay_ms),
            jitter: SimDuration::from_millis(jitter_ms),
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            reorder_window: SimDuration::from_millis(20),
        }
    }

    #[test]
    fn deliveries_arrive_in_time_order_with_the_configured_delay() {
        let mut net = SimTransport::new(7).with_default_link(lossless_link(5, 0));
        net.send(NodeId(0), NodeId(1), b"a".to_vec());
        net.send(NodeId(0), NodeId(1), b"b".to_vec());
        let out = net.drain();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].payload, b"a");
        assert_eq!(out[1].payload, b"b");
        assert_eq!(out[0].delivered_at, SimTime::from_millis(5));
        assert_eq!(net.now(), SimTime::from_millis(5));
        assert_eq!(net.stats().reordered, 0);
    }

    #[test]
    fn same_seed_replays_the_identical_delivery_history() {
        let run = |seed: u64| {
            let mut net = SimTransport::new(seed).with_default_link(LinkConfig {
                drop_probability: 0.2,
                duplicate_probability: 0.15,
                reorder_probability: 0.3,
                ..lossless_link(5, 3)
            });
            for round in 0u8..20 {
                let t = SimTime::from_millis(round as u64 * 4);
                net.advance_to(t);
                for node in 0u32..3 {
                    net.send(NodeId(node), NodeId((node + 1) % 3), vec![round, node as u8]);
                }
            }
            let tail = net.drain();
            (tail, net.stats())
        };
        let (d1, s1) = run(42);
        let (d2, s2) = run(42);
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        let (d3, _) = run(43);
        assert_ne!(d1, d3, "different seeds should perturb the fabric");
    }

    #[test]
    fn partitions_sever_messages_only_inside_their_window() {
        let mut net = SimTransport::new(1).with_default_link(lossless_link(1, 0));
        net.add_partition(PartitionWindow {
            from: SimTime::from_millis(10),
            until: SimTime::from_millis(20),
            group_a: vec![NodeId(0)],
            group_b: vec![NodeId(1)],
        });
        let mut out = Vec::new();
        net.send(NodeId(0), NodeId(1), b"before".to_vec());
        out.extend(net.advance_to(SimTime::from_millis(15)));
        net.send(NodeId(0), NodeId(1), b"cut".to_vec());
        net.send(NodeId(1), NodeId(0), b"cut-back".to_vec());
        net.send(NodeId(0), NodeId(2), b"unrelated".to_vec());
        out.extend(net.advance_to(SimTime::from_millis(25)));
        net.send(NodeId(0), NodeId(1), b"healed".to_vec());
        out.extend(net.drain());
        let payloads: Vec<&[u8]> = out.iter().map(|d| d.payload.as_slice()).collect();
        assert_eq!(payloads, vec![b"before".as_slice(), b"unrelated", b"healed"]);
        assert_eq!(net.stats().partition_dropped, 2);
        assert_eq!(net.stats().lost(), 2);
    }

    #[test]
    fn duplicates_are_flagged_and_counted() {
        let mut net = SimTransport::new(3)
            .with_default_link(LinkConfig { duplicate_probability: 1.0, ..lossless_link(2, 0) });
        net.send(NodeId(0), NodeId(1), b"x".to_vec());
        let out = net.drain();
        assert_eq!(out.len(), 2);
        assert!(!out[0].duplicate);
        assert!(out[1].duplicate);
        assert!(out[1].delivered_at > out[0].delivered_at);
        assert_eq!(net.stats().duplicated, 1);
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn forced_reordering_is_detected() {
        let mut net = SimTransport::new(9).with_default_link(LinkConfig {
            reorder_probability: 0.5,
            reorder_window: SimDuration::from_millis(50),
            ..lossless_link(2, 0)
        });
        for i in 0u8..40 {
            net.send(NodeId(0), NodeId(1), vec![i]);
        }
        let out = net.drain();
        assert_eq!(out.len(), 40);
        assert!(net.stats().reordered > 0, "expected at least one overtake");
    }

    #[test]
    fn link_entropy_is_independent_of_first_use_order() {
        // Two fabrics, same seed; one touches link 0→1 first, the other 2→3.
        // The streams must match anyway because entropy derives from the link
        // key, not from first-use order.
        let mut a = SimTransport::new(77);
        let mut b = SimTransport::new(77);
        a.link_rng(NodeId(0), NodeId(1));
        b.link_rng(NodeId(2), NodeId(3));
        let x1 = a.link_rng(NodeId(2), NodeId(3)).next_u64();
        let y1 = b.link_rng(NodeId(0), NodeId(1)).next_u64();
        let x2 = b.link_rng(NodeId(2), NodeId(3)).next_u64();
        let y2 = a.link_rng(NodeId(0), NodeId(1)).next_u64();
        assert_eq!(x1, x2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn the_fabric_never_schedules_into_the_past() {
        let mut net = SimTransport::new(5).with_default_link(lossless_link(3, 2));
        for round in 0..10 {
            net.advance_to(SimTime::from_millis(round * 2));
            net.send(NodeId(0), NodeId(1), vec![round as u8]);
        }
        net.drain();
        assert_eq!(net.engine().clamped_schedules(), 0);
    }
}

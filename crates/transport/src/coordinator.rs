//! The shard-handoff coordinator: claim/lease/complete over [`NetTransport`].
//!
//! The file/dir shard protocol in `karyon-scenario` is coordination-free —
//! every machine derives the same `ShardPlan` and runs its slice.  This
//! module adds the *live* half for fleets where workers come and go: a
//! [`ShardCoordinator`] owns the plan's shard windows and leases them to
//! workers over any [`NetTransport`] implementation, so the handoff protocol
//! is drilled today over the deterministic [`SimTransport`](crate::SimTransport)
//! (partitions, worker deaths, duplicated messages) and runs unchanged over a
//! real fabric later.
//!
//! # Message taxonomy
//!
//! All messages are single-line ASCII, versioned with a `karyon-shard-v1`
//! prefix ([`ShardMsg`]):
//!
//! * `claim` (worker → coordinator) — "give me a shard".  Idempotent: a
//!   worker that already holds a live lease gets the **same** grant again,
//!   so duplicated or retried claims never spread one worker across two
//!   shards.
//! * `grant` (coordinator → worker) — a shard window `[start_chunk,
//!   end_chunk)` plus the lease deadline and the grant's attempt number.
//! * `idle` / `done` (coordinator → worker) — nothing to hand out right now
//!   (retry after a backoff) / the whole plan is complete (stop).
//! * `complete` (worker → coordinator) — the worker finished its window and
//!   persisted the shard artifacts.
//!
//! # Lease/merge discipline
//!
//! A granted shard is `Leased` until its deadline; [`ShardCoordinator::on_tick`]
//! returns expired leases to the pool, so a worker death (drilled with
//! `FaultPlan` worker-death faults) delays its shard by at most one lease
//! term before another worker is granted attempt `n+1`.  The first
//! `complete` for a shard — whatever its attempt, since shard execution is
//! deterministic and attempt results are byte-identical — moves it to `Done`
//! and appends the shard to the [merge log](ShardCoordinator::merge_log)
//! **exactly once**; every later `complete` (fabric duplicate, stale lease
//! holder that survived) is counted and ignored, which is what makes
//! double-merging structurally impossible.

use std::fmt::Write as _;

use karyon_sim::{SimDuration, SimTime};

use crate::{Delivery, NetTransport, NodeId};

/// Protocol tag every shard-handoff message leads with.
const WIRE_TAG: &str = "karyon-shard-v1";

/// One shard-handoff protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardMsg {
    /// Worker → coordinator: request a shard window.
    Claim {
        /// The claiming worker (redundant with the fabric's `src`, kept in
        /// the payload so the message is self-describing in logs).
        worker: NodeId,
    },
    /// Coordinator → worker: a leased shard window.
    Grant {
        /// Shard index in the plan.
        shard: usize,
        /// First canonical chunk of the window (inclusive).
        start_chunk: usize,
        /// End of the window (exclusive).
        end_chunk: usize,
        /// Grant attempt for this shard, starting at 1; a lease-timeout
        /// reassignment hands out attempt 2, and so on.
        attempt: u32,
        /// Fabric instant at which the lease expires.
        lease_until: SimTime,
    },
    /// Coordinator → worker: nothing to hand out right now — every remaining
    /// shard is leased; retry after a backoff.
    Idle,
    /// Coordinator → worker: the whole plan is complete; stop claiming.
    Done,
    /// Worker → coordinator: the worker finished the window of `shard` (and
    /// persisted its artifacts) under grant `attempt`.
    Complete {
        /// The reporting worker.
        worker: NodeId,
        /// Shard index in the plan.
        shard: usize,
        /// The grant attempt the worker executed under.
        attempt: u32,
    },
}

impl ShardMsg {
    /// Encodes the message as its single-line ASCII wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut line = String::from(WIRE_TAG);
        match self {
            ShardMsg::Claim { worker } => {
                let _ = write!(line, " claim worker={}", worker.0);
            }
            ShardMsg::Grant { shard, start_chunk, end_chunk, attempt, lease_until } => {
                let _ = write!(
                    line,
                    " grant shard={shard} start={start_chunk} end={end_chunk} \
                     attempt={attempt} lease_until={}",
                    lease_until.as_micros()
                );
            }
            ShardMsg::Idle => line.push_str(" idle"),
            ShardMsg::Done => line.push_str(" done"),
            ShardMsg::Complete { worker, shard, attempt } => {
                let _ =
                    write!(line, " complete worker={} shard={shard} attempt={attempt}", worker.0);
            }
        }
        line.into_bytes()
    }

    /// Decodes a wire payload, refusing anything that is not a well-formed
    /// `karyon-shard-v1` message.
    pub fn decode(payload: &[u8]) -> Result<ShardMsg, String> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| "shard message is not valid UTF-8".to_string())?;
        let mut words = text.split_ascii_whitespace();
        if words.next() != Some(WIRE_TAG) {
            return Err(format!("not a {WIRE_TAG} message: {text:?}"));
        }
        let verb = words.next().ok_or_else(|| format!("empty {WIRE_TAG} message"))?;
        let mut fields = std::collections::BTreeMap::new();
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("malformed field {word:?} in {verb:?} message"))?;
            fields.insert(key, value);
        }
        let field = |key: &str| {
            fields
                .get(key)
                .ok_or_else(|| format!("{verb:?} message is missing field {key:?}"))
                .and_then(|v| {
                    v.parse::<u64>()
                        .map_err(|_| format!("{verb:?} message field {key:?} is not an integer"))
                })
        };
        match verb {
            "claim" => Ok(ShardMsg::Claim { worker: NodeId(field("worker")? as u32) }),
            "grant" => Ok(ShardMsg::Grant {
                shard: field("shard")? as usize,
                start_chunk: field("start")? as usize,
                end_chunk: field("end")? as usize,
                attempt: field("attempt")? as u32,
                lease_until: SimTime::from_micros(field("lease_until")?),
            }),
            "idle" => Ok(ShardMsg::Idle),
            "done" => Ok(ShardMsg::Done),
            "complete" => Ok(ShardMsg::Complete {
                worker: NodeId(field("worker")? as u32),
                shard: field("shard")? as usize,
                attempt: field("attempt")? as u32,
            }),
            other => Err(format!("unknown {WIRE_TAG} verb {other:?}")),
        }
    }
}

/// Lifecycle of one shard window inside the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Not yet granted (or returned to the pool by a lease expiry).
    Unassigned,
    /// Granted and within its lease.
    Leased {
        /// The worker holding the lease.
        worker: NodeId,
        /// Fabric instant at which the lease expires.
        deadline: SimTime,
        /// The grant's attempt number.
        attempt: u32,
    },
    /// Completed; in the merge log.
    Done {
        /// The worker whose `complete` was accepted first.
        worker: NodeId,
        /// The attempt that completed.
        attempt: u32,
    },
}

/// One accepted completion, in acceptance order — the coordinator's record of
/// which worker's artifacts the merge will read for each shard.  Each shard
/// appears **exactly once**, which the drill tests assert under worker
/// deaths, duplicated messages and partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeRecord {
    /// Shard index in the plan.
    pub shard: usize,
    /// The worker whose completion was accepted.
    pub worker: NodeId,
    /// The grant attempt that completed.
    pub attempt: u32,
}

/// Per-shard bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Shard {
    start_chunk: usize,
    end_chunk: usize,
    state: ShardState,
    /// Grants handed out so far (the next grant is attempt `grants + 1`).
    grants: u32,
}

/// The shard-handoff state machine, written against [`NetTransport`].
///
/// Drive it with [`on_delivery`](Self::on_delivery) for every delivery
/// addressed to its node and [`on_tick`](Self::on_tick) whenever fabric time
/// advances; it sends its replies through the same transport.  The
/// coordinator is deliberately transport-agnostic and clock-agnostic — all
/// timing comes from [`NetTransport::now`] — so the deterministic
/// [`SimTransport`](crate::SimTransport) drills in `tests/shard.rs` exercise
/// exactly the code a production fabric would run.
#[derive(Debug)]
pub struct ShardCoordinator {
    node: NodeId,
    lease: SimDuration,
    shards: Vec<Shard>,
    merge_log: Vec<MergeRecord>,
    reassignments: u64,
    ignored_completes: u64,
}

impl ShardCoordinator {
    /// Creates a coordinator for the given shard windows (`[start_chunk,
    /// end_chunk)` per shard, in shard-index order — the shape
    /// `ShardPlan::slices()` in `karyon-scenario` produces), granting leases
    /// of length `lease`.
    ///
    /// # Panics
    /// Panics if `windows` is empty or `lease` is zero — a plan with nothing
    /// to hand out, or leases that expire instantly, can only be a bug.
    pub fn new(node: NodeId, windows: &[(usize, usize)], lease: SimDuration) -> Self {
        assert!(!windows.is_empty(), "a shard coordinator needs at least one shard window");
        assert!(!lease.is_zero(), "a zero-length lease would expire before any work happens");
        ShardCoordinator {
            node,
            lease,
            shards: windows
                .iter()
                .map(|&(start_chunk, end_chunk)| Shard {
                    start_chunk,
                    end_chunk,
                    state: ShardState::Unassigned,
                    grants: 0,
                })
                .collect(),
            merge_log: Vec::new(),
            reassignments: 0,
            ignored_completes: 0,
        }
    }

    /// The coordinator's fabric address.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current state of shard `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of range.
    pub fn shard_state(&self, index: usize) -> ShardState {
        self.shards[index].state
    }

    /// True when every shard is `Done`.
    pub fn is_complete(&self) -> bool {
        self.shards.iter().all(|s| matches!(s.state, ShardState::Done { .. }))
    }

    /// Accepted completions in acceptance order, one entry per shard ever.
    pub fn merge_log(&self) -> &[MergeRecord] {
        &self.merge_log
    }

    /// Leases returned to the pool by expiry so far.
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    /// `complete` messages ignored because their shard was already `Done`
    /// (fabric duplicates, stale lease holders).
    pub fn ignored_completes(&self) -> u64 {
        self.ignored_completes
    }

    /// Expires overdue leases against the fabric clock, returning each
    /// expired shard to the pool for reassignment.  Call whenever fabric
    /// time advances (the drills tick it once per scheduling round).
    pub fn on_tick(&mut self, transport: &mut dyn NetTransport) {
        let now = transport.now();
        for shard in &mut self.shards {
            if let ShardState::Leased { deadline, .. } = shard.state {
                if now >= deadline {
                    shard.state = ShardState::Unassigned;
                    self.reassignments += 1;
                }
            }
        }
    }

    /// Handles one delivery addressed to the coordinator, replying through
    /// `transport`.  Malformed payloads and misaddressed deliveries are
    /// ignored (a byzantine or foreign message must not wedge the handoff).
    pub fn on_delivery(&mut self, delivery: &Delivery, transport: &mut dyn NetTransport) {
        if delivery.dst != self.node {
            return;
        }
        let Ok(msg) = ShardMsg::decode(&delivery.payload) else { return };
        match msg {
            ShardMsg::Claim { worker } => {
                let reply = self.grant_for(worker, transport.now());
                transport.send(self.node, delivery.src, reply.encode());
            }
            ShardMsg::Complete { worker, shard, attempt } => {
                self.record_complete(worker, shard, attempt);
            }
            // Coordinator-originated verbs arriving here are foreign noise.
            ShardMsg::Grant { .. } | ShardMsg::Idle | ShardMsg::Done => {}
        }
    }

    /// Chooses the reply to a claim: the worker's existing live lease if it
    /// holds one (idempotent claims), else the lowest-index unassigned
    /// shard, else `Idle`/`Done`.
    fn grant_for(&mut self, worker: NodeId, now: SimTime) -> ShardMsg {
        // Re-send an existing live lease rather than spreading a duplicated
        // claim across two shards.
        for (index, shard) in self.shards.iter().enumerate() {
            if let ShardState::Leased { worker: holder, deadline, attempt } = shard.state {
                if holder == worker && now < deadline {
                    return ShardMsg::Grant {
                        shard: index,
                        start_chunk: shard.start_chunk,
                        end_chunk: shard.end_chunk,
                        attempt,
                        lease_until: deadline,
                    };
                }
            }
        }
        for (index, shard) in self.shards.iter_mut().enumerate() {
            if shard.state == ShardState::Unassigned {
                shard.grants += 1;
                let deadline = now.saturating_add(self.lease);
                shard.state = ShardState::Leased { worker, deadline, attempt: shard.grants };
                return ShardMsg::Grant {
                    shard: index,
                    start_chunk: shard.start_chunk,
                    end_chunk: shard.end_chunk,
                    attempt: shard.grants,
                    lease_until: deadline,
                };
            }
        }
        if self.is_complete() {
            ShardMsg::Done
        } else {
            ShardMsg::Idle
        }
    }

    /// Applies a `complete`: the first one per shard wins — shard execution
    /// is deterministic, so any attempt's artifacts are byte-identical and
    /// accepting the earliest minimizes latency.  Later completes (fabric
    /// duplicates, a stale holder racing its reassignment) are counted and
    /// dropped, never re-merged.
    fn record_complete(&mut self, worker: NodeId, shard: usize, attempt: u32) {
        let Some(entry) = self.shards.get_mut(shard) else {
            self.ignored_completes += 1;
            return;
        };
        match entry.state {
            ShardState::Done { .. } => self.ignored_completes += 1,
            ShardState::Unassigned | ShardState::Leased { .. } => {
                entry.state = ShardState::Done { worker, attempt };
                self.merge_log.push(MergeRecord { shard, worker, attempt });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LoopbackTransport;

    const COORD: NodeId = NodeId(0);
    const W1: NodeId = NodeId(1);
    const W2: NodeId = NodeId(2);

    fn lease() -> SimDuration {
        SimDuration::from_millis(100)
    }

    /// Drives one claim through a loopback fabric and decodes the reply.
    fn claim(
        coordinator: &mut ShardCoordinator,
        net: &mut LoopbackTransport,
        worker: NodeId,
    ) -> ShardMsg {
        net.send(worker, COORD, ShardMsg::Claim { worker }.encode());
        let deliveries = net.drain();
        for d in &deliveries {
            coordinator.on_delivery(d, net);
        }
        let reply = net.drain();
        assert_eq!(reply.len(), 1, "every claim gets exactly one reply");
        assert_eq!(reply[0].dst, worker);
        ShardMsg::decode(&reply[0].payload).unwrap()
    }

    fn complete(
        coordinator: &mut ShardCoordinator,
        net: &mut LoopbackTransport,
        worker: NodeId,
        shard: usize,
        attempt: u32,
    ) {
        net.send(worker, COORD, ShardMsg::Complete { worker, shard, attempt }.encode());
        for d in net.drain() {
            coordinator.on_delivery(&d, net);
        }
    }

    #[test]
    fn messages_round_trip_the_wire_codec() {
        let msgs = [
            ShardMsg::Claim { worker: W1 },
            ShardMsg::Grant {
                shard: 2,
                start_chunk: 10,
                end_chunk: 15,
                attempt: 3,
                lease_until: SimTime::from_micros(123_456),
            },
            ShardMsg::Idle,
            ShardMsg::Done,
            ShardMsg::Complete { worker: W2, shard: 1, attempt: 2 },
        ];
        for msg in msgs {
            assert_eq!(ShardMsg::decode(&msg.encode()).unwrap(), msg);
        }
        for junk in
            ["", "karyon-shard-v2 claim", "karyon-shard-v1 fly", "karyon-shard-v1 claim worker=x"]
        {
            assert!(ShardMsg::decode(junk.as_bytes()).is_err(), "{junk:?}");
        }
        assert!(ShardMsg::decode(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn shards_are_granted_in_order_and_completed_exactly_once() {
        let mut net = LoopbackTransport::new();
        let mut coordinator = ShardCoordinator::new(COORD, &[(0, 3), (3, 5)], lease());

        let g1 = claim(&mut coordinator, &mut net, W1);
        let ShardMsg::Grant { shard: 0, start_chunk: 0, end_chunk: 3, attempt: 1, .. } = g1 else {
            panic!("expected the first window, got {g1:?}");
        };
        let g2 = claim(&mut coordinator, &mut net, W2);
        assert!(matches!(g2, ShardMsg::Grant { shard: 1, attempt: 1, .. }), "{g2:?}");

        // Both shards leased: a third worker idles.
        assert_eq!(claim(&mut coordinator, &mut net, NodeId(9)), ShardMsg::Idle);

        complete(&mut coordinator, &mut net, W1, 0, 1);
        complete(&mut coordinator, &mut net, W2, 1, 1);
        assert!(coordinator.is_complete());
        assert_eq!(
            coordinator.merge_log(),
            &[
                MergeRecord { shard: 0, worker: W1, attempt: 1 },
                MergeRecord { shard: 1, worker: W2, attempt: 1 },
            ]
        );

        // Everything done: further claims are told to stop, duplicate
        // completes are ignored, the merge log never grows.
        assert_eq!(claim(&mut coordinator, &mut net, W1), ShardMsg::Done);
        complete(&mut coordinator, &mut net, W2, 1, 1);
        assert_eq!(coordinator.ignored_completes(), 1);
        assert_eq!(coordinator.merge_log().len(), 2);
    }

    #[test]
    fn duplicate_claims_resend_the_same_lease() {
        let mut net = LoopbackTransport::new();
        let mut coordinator = ShardCoordinator::new(COORD, &[(0, 4), (4, 8)], lease());
        let first = claim(&mut coordinator, &mut net, W1);
        // The same worker claiming again (a retry or a fabric duplicate)
        // gets the identical grant, not a second shard.
        let again = claim(&mut coordinator, &mut net, W1);
        assert_eq!(first, again);
        assert!(matches!(coordinator.shard_state(1), ShardState::Unassigned));
    }

    #[test]
    fn an_expired_lease_is_reassigned_exactly_once_and_never_double_merged() {
        let mut net = LoopbackTransport::new();
        let mut coordinator = ShardCoordinator::new(COORD, &[(0, 5)], lease());

        // W1 takes the lease and dies (never completes).
        let g = claim(&mut coordinator, &mut net, W1);
        let ShardMsg::Grant { shard: 0, attempt: 1, lease_until, .. } = g else {
            panic!("{g:?}");
        };

        // Before the deadline nothing expires and other workers idle.
        net.advance_to(SimTime::from_micros(lease_until.as_micros() - 1));
        coordinator.on_tick(&mut net);
        assert_eq!(coordinator.reassignments(), 0);
        assert_eq!(claim(&mut coordinator, &mut net, W2), ShardMsg::Idle);

        // At the deadline the lease returns to the pool; W2 gets attempt 2.
        net.advance_to(lease_until);
        coordinator.on_tick(&mut net);
        assert_eq!(coordinator.reassignments(), 1);
        let g = claim(&mut coordinator, &mut net, W2);
        assert!(matches!(g, ShardMsg::Grant { shard: 0, attempt: 2, .. }), "{g:?}");

        // W2 completes; a late complete from the ghost of W1 is ignored.
        complete(&mut coordinator, &mut net, W2, 0, 2);
        complete(&mut coordinator, &mut net, W1, 0, 1);
        assert_eq!(coordinator.merge_log(), &[MergeRecord { shard: 0, worker: W2, attempt: 2 }]);
        assert_eq!(coordinator.ignored_completes(), 1);
        assert!(coordinator.is_complete());
        assert_eq!(coordinator.reassignments(), 1, "reassigned exactly once");
    }

    #[test]
    fn a_slow_but_alive_worker_may_still_win_its_reassigned_shard() {
        // The lease expires, the shard is reassigned — and then the original
        // holder's complete arrives first.  Deterministic execution makes
        // either attempt's artifacts byte-identical, so first-wins is safe;
        // what must never happen is a second merge-log entry.
        let mut net = LoopbackTransport::new();
        let mut coordinator = ShardCoordinator::new(COORD, &[(0, 2)], lease());
        let ShardMsg::Grant { lease_until, .. } = claim(&mut coordinator, &mut net, W1) else {
            panic!();
        };
        net.advance_to(lease_until);
        coordinator.on_tick(&mut net);
        let g = claim(&mut coordinator, &mut net, W2);
        assert!(matches!(g, ShardMsg::Grant { shard: 0, attempt: 2, .. }), "{g:?}");

        complete(&mut coordinator, &mut net, W1, 0, 1); // the straggler wins
        complete(&mut coordinator, &mut net, W2, 0, 2); // ignored
        assert_eq!(coordinator.merge_log(), &[MergeRecord { shard: 0, worker: W1, attempt: 1 }]);
        assert_eq!(coordinator.ignored_completes(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard window")]
    fn empty_plans_are_rejected() {
        let _ = ShardCoordinator::new(COORD, &[], lease());
    }

    #[test]
    #[should_panic(expected = "zero-length lease")]
    fn zero_leases_are_rejected() {
        let _ = ShardCoordinator::new(COORD, &[(0, 1)], SimDuration::ZERO);
    }
}

//! # karyon-net — communication predictability and resilience (KARYON §V-A)
//!
//! The paper devotes "particular attention to the problems caused by
//! communication uncertainty".  This crate provides the simulated wireless
//! substrate and every communication mechanism the project proposes on top
//! of it:
//!
//! * [`medium`] — a slot-synchronous shared wireless medium with radio range,
//!   collisions, residual loss, multiple channels and external disturbances
//!   (the cause of *network inaccessibility*),
//! * [`inaccessibility`] — accounting of inaccessibility periods (§V-A1),
//! * [`mac`] — the MAC abstraction and concrete protocols: a CSMA baseline,
//!   fixed TDMA and **self-stabilizing TDMA** slot allocation without
//!   external time sources (§V-A2),
//! * [`r2tmac`] — the **R2T-MAC** mediator + channel-control architecture
//!   that surrounds a standard MAC and bounds inaccessibility (Fig. 4),
//! * [`pulse`] — self-stabilizing pulse/slot alignment under clock drift,
//! * [`end_to_end`] — self-stabilizing end-to-end FIFO delivery over an
//!   omitting, duplicating, reordering, bounded-capacity channel,
//! * [`topology`] — topology discovery and the 2f+1 vertex-disjoint-path
//!   analysis needed for Byzantine-resilient dissemination (§V-C).
//!
//! ## Quick tour
//!
//! *Network inaccessibility* — periods in which the network gives no service
//! although it is not considered failed — is the paper's central
//! communication hazard; the tracker turns per-slot observations into the
//! period statistics the experiments report:
//!
//! ```
//! use karyon_net::InaccessibilityTracker;
//! use karyon_sim::SimTime;
//!
//! let mut tracker = InaccessibilityTracker::new();
//! for ms in 0u64..10 {
//!     // Jammed from t = 2 ms to t = 6 ms.
//!     tracker.observe((2..6).contains(&ms), SimTime::from_millis(ms));
//! }
//! tracker.finish(SimTime::from_millis(10));
//! assert_eq!(tracker.count(), 1, "one contiguous inaccessibility period");
//! assert_eq!(tracker.total().as_millis(), 4);
//! assert_eq!(tracker.longest().as_millis(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod end_to_end;
pub mod inaccessibility;
pub mod mac;
pub mod medium;
pub mod packet;
pub mod pulse;
pub mod r2tmac;
pub mod topology;

pub use end_to_end::{
    eventually_fifo, E2EConfig, EndToEndSession, SelfStabReceiver, SelfStabSender,
};
pub use inaccessibility::{InaccessibilityPeriod, InaccessibilityTracker};
pub use mac::csma::{CsmaConfig, CsmaMac};
pub use mac::selfstab_tdma::{SelfStabTdmaMac, SlotStatus};
pub use mac::tdma_fixed::FixedTdmaMac;
pub use mac::{MacContext, MacMetrics, MacProtocol, MacSimConfig, MacSimulation, SlotObservation};
pub use medium::{Disturbance, MediumConfig, Reception, Transmission, WirelessMedium};
pub use packet::{ports, Destination, Frame, NodeId};
pub use pulse::{PulseSyncConfig, PulseSyncSim};
pub use r2tmac::{R2TMac, R2TMacConfig};
pub use topology::{Graph, TopologyDiscovery};

//! R2T-MAC: the extensible component architecture surrounding a standard MAC
//! (paper §V-A1, Fig. 4).
//!
//! The architecture adds two layers around an unmodified ("COTS") MAC:
//!
//! * the **Mediator Layer (MLA)** — error isolation between the MAC and the
//!   higher layers: reliable/real-time frame transmission (temporal
//!   redundancy with duplicate suppression), node failure detection and
//!   membership (heartbeats), and control of temporary network partitions
//!   (inaccessibility detection and bounding);
//! * the **Channel Control Layer** — monitors the channel state and exploits
//!   radio-channel diversity, retuning the node away from a disturbed
//!   channel after a bounded number of jammed slots.
//!
//! Because the wrapper works purely through the [`MacProtocol`] interface it
//! "can be incorporated in COTS components without fundamental modifications
//! in the standard MAC level protocol".

use std::collections::{HashMap, VecDeque};

use karyon_sim::{SimDuration, SimTime};

use crate::inaccessibility::InaccessibilityTracker;
use crate::mac::{MacContext, MacProtocol, SlotObservation};
use crate::packet::{ports, Destination, Frame, NodeId};

/// Configuration of the R2T-MAC layers.
#[derive(Debug, Clone)]
pub struct R2TMacConfig {
    /// Number of copies of every application frame transmitted (≥ 1);
    /// duplicates are suppressed at the receiver.
    pub copies: u32,
    /// Heartbeat period in slots (0 disables heartbeats / membership).
    pub heartbeat_period: u64,
    /// A neighbour not heard for this many slots is considered failed.
    pub neighbor_timeout: u64,
    /// Consecutive jammed slots after which the Channel Control Layer
    /// switches to the next radio channel (0 disables switching).
    pub channel_switch_threshold: u32,
    /// Number of radio channels available for diversity.
    pub channels: u8,
}

impl Default for R2TMacConfig {
    fn default() -> Self {
        R2TMacConfig {
            copies: 2,
            heartbeat_period: 50,
            neighbor_timeout: 200,
            channel_switch_threshold: 10,
            channels: 2,
        }
    }
}

const HEARTBEAT_MAGIC: u8 = 0x48;

/// R2T-MAC wrapper around an inner MAC protocol.
#[derive(Debug)]
pub struct R2TMac<M> {
    inner: M,
    config: R2TMacConfig,
    consecutive_disturbed: u32,
    channel_switches: u64,
    inaccessibility: InaccessibilityTracker,
    /// Neighbour → slot index at which it was last heard.
    last_heard: HashMap<u32, u64>,
    /// Recently seen (src, seq) pairs for duplicate suppression.
    seen: VecDeque<(u32, u64)>,
    /// (src, seq) pairs already expanded into redundant copies.
    replicated: VecDeque<(u32, u64)>,
    duplicates_suppressed: u64,
}

impl<M: MacProtocol> R2TMac<M> {
    /// Wraps `inner` with the R2T-MAC mediator and channel-control layers.
    pub fn new(inner: M, config: R2TMacConfig) -> Self {
        R2TMac {
            inner,
            config,
            consecutive_disturbed: 0,
            channel_switches: 0,
            inaccessibility: InaccessibilityTracker::new(),
            last_heard: HashMap::new(),
            seen: VecDeque::new(),
            replicated: VecDeque::new(),
            duplicates_suppressed: 0,
        }
    }

    /// The wrapped MAC.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The inaccessibility periods observed by this node.
    pub fn inaccessibility(&self) -> &InaccessibilityTracker {
        &self.inaccessibility
    }

    /// Number of channel switches performed by the Channel Control Layer.
    pub fn channel_switches(&self) -> u64 {
        self.channel_switches
    }

    /// Number of duplicate frames suppressed by the Mediator Layer.
    pub fn duplicates_suppressed(&self) -> u64 {
        self.duplicates_suppressed
    }

    /// The neighbours currently considered alive by the membership service.
    pub fn alive_neighbors(&self, current_slot: u64) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .last_heard
            .iter()
            .filter(|(_, last)| current_slot.saturating_sub(**last) <= self.config.neighbor_timeout)
            .map(|(id, _)| NodeId(*id))
            .collect();
        v.sort();
        v
    }

    /// Closes any open inaccessibility period (call at the end of a run).
    pub fn finish(&mut self, now: SimTime) {
        self.inaccessibility.finish(now);
    }

    /// The design-time bound on the duration of any inaccessibility period a
    /// node can experience before the channel-control layer reacts:
    /// `channel_switch_threshold × slot_duration` (plus one slot of latency).
    pub fn inaccessibility_bound(&self, slot_duration: SimDuration) -> SimDuration {
        slot_duration.saturating_mul(self.config.channel_switch_threshold as u64 + 1)
    }

    fn remember(buffer: &mut VecDeque<(u32, u64)>, key: (u32, u64)) {
        buffer.push_back(key);
        if buffer.len() > 2_048 {
            buffer.pop_front();
        }
    }
}

impl<M: MacProtocol> MacProtocol for R2TMac<M> {
    fn name(&self) -> &'static str {
        "r2t-mac"
    }

    fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame> {
        // --- Channel Control Layer ---------------------------------------
        if ctx.channel_disturbed {
            self.consecutive_disturbed += 1;
            if self.config.channel_switch_threshold > 0
                && self.config.channels > 1
                && self.consecutive_disturbed >= self.config.channel_switch_threshold
            {
                *ctx.channel = (*ctx.channel + 1) % self.config.channels;
                self.channel_switches += 1;
                self.consecutive_disturbed = 0;
            }
        } else {
            self.consecutive_disturbed = 0;
        }

        // --- Mediator Layer: inaccessibility accounting -------------------
        self.inaccessibility.observe(ctx.channel_disturbed, ctx.now);

        // --- Mediator Layer: temporal redundancy --------------------------
        if self.config.copies > 1 {
            let mut extra: Vec<Frame> = Vec::new();
            for frame in ctx.queue.iter() {
                if frame.port == ports::DATA && !self.replicated.contains(&(frame.src.0, frame.seq))
                {
                    Self::remember(&mut self.replicated, (frame.src.0, frame.seq));
                    for _ in 1..self.config.copies {
                        extra.push(frame.clone());
                    }
                }
            }
            for frame in extra {
                ctx.queue.push_back(frame);
            }
        }

        // --- Mediator Layer: membership heartbeats ------------------------
        if self.config.heartbeat_period > 0 {
            let phase = ctx.node.0 as u64 % self.config.heartbeat_period;
            let already_queued = ctx
                .queue
                .iter()
                .any(|f| f.port == ports::BEACON && f.payload.first() == Some(&HEARTBEAT_MAGIC));
            if ctx.slot % self.config.heartbeat_period == phase && !already_queued {
                ctx.queue.push_back(Frame {
                    src: ctx.node,
                    dst: Destination::Broadcast,
                    seq: u64::MAX - ctx.slot, // heartbeats use a disjoint sequence space
                    created: ctx.now,
                    port: ports::BEACON,
                    payload: vec![HEARTBEAT_MAGIC],
                });
            }
        }

        self.inner.on_slot(ctx)
    }

    fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>) {
        // Membership: any frame from a neighbour refreshes its liveness.
        self.last_heard.insert(frame.src.0, ctx.slot);
        if frame.port == ports::BEACON && frame.payload.first() == Some(&HEARTBEAT_MAGIC) {
            return; // heartbeats carry no payload for the upper layers
        }
        // Duplicate suppression for the redundant copies.
        let key = (frame.src.0, frame.seq);
        if frame.port == ports::DATA {
            if self.seen.contains(&key) {
                self.duplicates_suppressed += 1;
                return;
            }
            Self::remember(&mut self.seen, key);
        }
        self.inner.on_receive(frame, ctx);
    }

    fn on_slot_end(&mut self, observation: SlotObservation, ctx: &mut MacContext<'_>) {
        self.inner.on_slot_end(observation, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::csma::{CsmaConfig, CsmaMac};
    use crate::mac::{MacSimConfig, MacSimulation};
    use crate::medium::{Disturbance, MediumConfig, WirelessMedium};
    use karyon_sim::{SimTime, Vec2};

    type Wrapped = R2TMac<CsmaMac>;

    fn r2t(config: R2TMacConfig) -> Wrapped {
        R2TMac::new(CsmaMac::new(CsmaConfig::default()), config)
    }

    fn sim(nodes: u32, channels: u8, config: R2TMacConfig, seed: u64) -> MacSimulation<Wrapped> {
        let medium =
            WirelessMedium::new(MediumConfig { range: 1_000.0, loss_probability: 0.0, channels });
        let mut s = MacSimulation::new(medium, MacSimConfig::default(), seed);
        for i in 0..nodes {
            s.add_node(NodeId(i), r2t(config.clone()), Vec2::new(i as f64 * 5.0, 0.0));
        }
        s
    }

    #[test]
    fn duplicate_copies_are_suppressed_at_receivers() {
        let config = R2TMacConfig { copies: 3, heartbeat_period: 0, ..Default::default() };
        let mut s = sim(2, 1, config, 1);
        s.send_broadcast(NodeId(0), vec![5]);
        s.run_slots(100);
        // Exactly one delivery despite three transmitted copies.
        assert_eq!(s.metrics().delivered, 1);
        let receiver = s.mac(NodeId(1)).unwrap();
        assert!(receiver.duplicates_suppressed() >= 1);
    }

    #[test]
    fn channel_control_escapes_a_jammed_channel() {
        let config = R2TMacConfig {
            copies: 1,
            heartbeat_period: 0,
            channel_switch_threshold: 5,
            channels: 2,
            ..Default::default()
        };
        let mut s = sim(2, 2, config, 2);
        // Channel 0 jammed for 2 seconds — far longer than the switch threshold.
        s.medium_mut().add_disturbance(Disturbance {
            channel: Some(0),
            start: SimTime::ZERO,
            end: SimTime::from_secs(2),
        });
        s.send_broadcast(NodeId(0), vec![1]);
        s.run_slots(100);
        // Both nodes must have escaped to channel 1 and the frame delivered.
        assert_eq!(s.node_channel(NodeId(0)), Some(1));
        assert_eq!(s.node_channel(NodeId(1)), Some(1));
        assert_eq!(s.metrics().delivered, 1);
        assert!(s.mac(NodeId(0)).unwrap().channel_switches() >= 1);
        // The observed inaccessibility period is bounded by the switch threshold.
        let bound = s.mac(NodeId(0)).unwrap().inaccessibility_bound(SimDuration::from_millis(1));
        for id in s.node_ids() {
            let longest = s.mac(id).unwrap().inaccessibility().longest();
            assert!(longest <= bound, "inaccessibility {longest} exceeds bound {bound}");
        }
    }

    #[test]
    fn membership_tracks_alive_and_failed_neighbors() {
        let config = R2TMacConfig {
            copies: 1,
            heartbeat_period: 10,
            neighbor_timeout: 60,
            channel_switch_threshold: 0,
            channels: 1,
        };
        let mut s = sim(3, 1, config, 3);
        s.run_slots(100);
        let slot = s.slot();
        let members = s.mac(NodeId(0)).unwrap().alive_neighbors(slot);
        assert_eq!(members, vec![NodeId(1), NodeId(2)]);
        // Node 2 disappears; after the timeout it is removed from membership.
        s.remove_node(NodeId(2));
        s.run_slots(200);
        let slot = s.slot();
        let members = s.mac(NodeId(0)).unwrap().alive_neighbors(slot);
        assert_eq!(members, vec![NodeId(1)]);
    }

    #[test]
    fn wrapper_reports_its_own_name_and_inner() {
        let mac = r2t(R2TMacConfig::default());
        assert_eq!(mac.name(), "r2t-mac");
        assert_eq!(mac.inner().name(), "csma");
        assert_eq!(mac.channel_switches(), 0);
    }

    #[test]
    fn finish_closes_open_inaccessibility() {
        let config = R2TMacConfig {
            copies: 1,
            heartbeat_period: 0,
            channel_switch_threshold: 0,
            channels: 1,
            ..Default::default()
        };
        let mut s = sim(1, 1, config, 4);
        s.medium_mut().add_disturbance(Disturbance {
            channel: Some(0),
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
        });
        s.run_slots(50);
        // Period still open; close it explicitly.
        let now = s.now();
        let ids = s.node_ids();
        // Access through the simulation is read-only; emulate end-of-run bookkeeping.
        let mac = s.mac(ids[0]).unwrap();
        assert!(mac.inaccessibility().is_inaccessible());
        let mut standalone = r2t(R2TMacConfig::default());
        standalone.inaccessibility.observe(true, SimTime::ZERO);
        standalone.finish(now);
        assert_eq!(standalone.inaccessibility().count(), 1);
    }
}

//! Self-stabilizing pulse (slot-timing) synchronization without external time
//! sources (paper §V-A2, after Mustafa, Papatriantafilou, Schiller, Tohidi
//! and Tsigas, "Autonomous TDMA alignment for VANETs").
//!
//! "Local pulse synchronization mechanisms let neighboring nodes align the
//! timing of their packet transmissions, and by that avoid transmission
//! interferences between consecutive timeslots.  Existing implementations for
//! VANETs assume the availability of common (external) sources of time, such
//! as base-stations or GPS …  We are the first to consider autonomic design
//! criteria."
//!
//! The model: every node owns a local oscillator with an individual drift and
//! an arbitrary initial phase.  Once per period the node emits a pulse;
//! neighbours that hear it (pulses can be lost) note the signed phase error
//! and, at their own next pulse, correct their phase by a fraction of the
//! averaged error.  The experiment measures the worst pairwise phase error
//! before and after convergence.

use karyon_sim::Rng;

/// Configuration of the pulse-synchronization simulation.
#[derive(Debug, Clone)]
pub struct PulseSyncConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Pulse period in seconds (one TDMA frame).
    pub period: f64,
    /// Correction gain in `(0, 1]` applied to the averaged phase error.
    pub gain: f64,
    /// Magnitude of the oscillator drift: each node's clock rate is drawn
    /// uniformly from `[1 - drift, 1 + drift]` (e.g. `40e-6` for ±40 ppm,
    /// typical of the inexpensive crystals on the MicaZ platform).
    pub drift: f64,
    /// Probability that a pulse is *not* heard by a given neighbour.
    pub loss_probability: f64,
    /// Simulation step in seconds.
    pub dt: f64,
}

impl Default for PulseSyncConfig {
    fn default() -> Self {
        PulseSyncConfig {
            nodes: 10,
            period: 0.1,
            gain: 0.5,
            drift: 40e-6,
            loss_probability: 0.05,
            dt: 0.001,
        }
    }
}

#[derive(Debug, Clone)]
struct PulseNode {
    phase: f64,
    rate: f64,
    pending_errors: Vec<f64>,
}

/// The pulse-synchronization simulation (single-hop neighbourhood).
#[derive(Debug)]
pub struct PulseSyncSim {
    config: PulseSyncConfig,
    nodes: Vec<PulseNode>,
    rng: Rng,
    time: f64,
}

impl PulseSyncSim {
    /// Creates a simulation with random initial phases and drifts.
    ///
    /// # Panics
    /// Panics if the configuration has fewer than 2 nodes or a non-positive
    /// period / dt.
    pub fn new(config: PulseSyncConfig, seed: u64) -> Self {
        assert!(config.nodes >= 2, "pulse sync needs at least two nodes");
        assert!(config.period > 0.0 && config.dt > 0.0, "period and dt must be positive");
        let mut rng = Rng::seed_from(seed);
        let nodes = (0..config.nodes)
            .map(|_| PulseNode {
                phase: rng.range_f64(0.0, config.period),
                rate: 1.0 + rng.range_f64(-config.drift, config.drift),
                pending_errors: Vec::new(),
            })
            .collect();
        PulseSyncSim { config, nodes, rng, time: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// The worst pairwise circular phase difference, in seconds.
    pub fn max_phase_error(&self) -> f64 {
        let period = self.config.period;
        let mut worst = 0.0f64;
        for i in 0..self.nodes.len() {
            for j in (i + 1)..self.nodes.len() {
                let d = (self.nodes[i].phase - self.nodes[j].phase).abs();
                let circ = d.min(period - d);
                worst = worst.max(circ);
            }
        }
        worst
    }

    /// The worst pairwise phase error as a fraction of the period.
    pub fn max_phase_error_fraction(&self) -> f64 {
        self.max_phase_error() / self.config.period
    }

    /// Advances the simulation by one step.
    pub fn step(&mut self) {
        let period = self.config.period;
        let dt = self.config.dt;
        self.time += dt;

        // Advance local clocks and collect this step's pulse emitters.
        let mut fired: Vec<usize> = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.phase += dt * node.rate;
            if node.phase >= period {
                // Apply the accumulated correction at the firing instant.
                let correction = if node.pending_errors.is_empty() {
                    0.0
                } else {
                    let mean: f64 =
                        node.pending_errors.iter().sum::<f64>() / node.pending_errors.len() as f64;
                    self.config.gain * mean
                };
                node.pending_errors.clear();
                node.phase = (node.phase - period + correction).rem_euclid(period);
                fired.push(i);
            }
        }

        // Deliver pulses to the other nodes (single-hop broadcast with loss).
        for &emitter in &fired {
            for j in 0..self.nodes.len() {
                if j == emitter || self.rng.chance(self.config.loss_probability) {
                    continue;
                }
                let p = self.nodes[j].phase;
                // Signed distance from the receiver's phase to the pulse
                // (phase 0), wrapped into (-period/2, period/2]:
                // positive ⇒ the receiver lags and should advance.
                let error = if p <= period / 2.0 { -p } else { period - p };
                self.nodes[j].pending_errors.push(error);
            }
        }
    }

    /// Runs the simulation for `seconds` of simulated time.
    pub fn run(&mut self, seconds: f64) {
        let steps = (seconds / self.config.dt).ceil() as u64;
        for _ in 0..steps {
            self.step();
        }
    }

    /// Runs until the worst pairwise error drops below `threshold_fraction`
    /// of the period (or `max_seconds` elapse).  Returns the convergence time
    /// in seconds, or `None` if the threshold was never reached.
    pub fn run_until_converged(
        &mut self,
        threshold_fraction: f64,
        max_seconds: f64,
    ) -> Option<f64> {
        let start = self.time;
        while self.time - start < max_seconds {
            // Check once per period to avoid flagging transient alignment.
            self.run(self.config.period);
            if self.max_phase_error_fraction() <= threshold_fraction {
                return Some(self.time - start);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_from_random_phases() {
        let mut sim = PulseSyncSim::new(
            PulseSyncConfig { nodes: 8, loss_probability: 0.05, ..Default::default() },
            1,
        );
        let initial = sim.max_phase_error_fraction();
        let converged = sim.run_until_converged(0.05, 60.0);
        assert!(converged.is_some(), "did not converge (initial error {initial:.3})");
        assert!(sim.max_phase_error_fraction() <= 0.05);
    }

    #[test]
    fn stays_converged_despite_drift_and_loss() {
        let mut sim = PulseSyncSim::new(
            PulseSyncConfig {
                nodes: 6,
                drift: 100e-6,
                loss_probability: 0.2,
                ..Default::default()
            },
            2,
        );
        sim.run_until_converged(0.05, 60.0).expect("must converge");
        sim.run(20.0);
        assert!(
            sim.max_phase_error_fraction() < 0.10,
            "alignment lost: {:.3}",
            sim.max_phase_error_fraction()
        );
    }

    #[test]
    fn without_correction_clocks_stay_misaligned() {
        let mut sim = PulseSyncSim::new(
            PulseSyncConfig { nodes: 8, gain: 0.0, loss_probability: 0.0, ..Default::default() },
            3,
        );
        let initial = sim.max_phase_error_fraction();
        sim.run(30.0);
        // With zero gain nothing pulls the phases together.
        assert!(sim.max_phase_error_fraction() > initial * 0.5);
        assert!(sim.max_phase_error_fraction() > 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PulseSyncConfig::default();
        let mut a = PulseSyncSim::new(cfg.clone(), 7);
        let mut b = PulseSyncSim::new(cfg, 7);
        a.run(5.0);
        b.run(5.0);
        assert!((a.max_phase_error() - b.max_phase_error()).abs() < 1e-12);
        assert!((a.time() - b.time()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_node() {
        let _ = PulseSyncSim::new(PulseSyncConfig { nodes: 1, ..Default::default() }, 1);
    }
}

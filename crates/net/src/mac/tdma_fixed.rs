//! Statically assigned TDMA.
//!
//! Every node owns the slot `node_id % slots_per_frame` and transmits only
//! there.  This models the conventional TDMA approach that "assumes the
//! availability of common (external) sources of time, such as base-stations
//! or GPS time sources" — the assumption the self-stabilizing algorithms of
//! §V-A2 remove.  It is collision-free by construction as long as no two
//! nodes within range share a slot.

use crate::packet::Frame;

use super::{deliver_if_data, MacContext, MacProtocol};

/// Fixed-assignment TDMA: transmit only in the statically owned slot.
#[derive(Debug, Clone, Default)]
pub struct FixedTdmaMac {
    /// Optional explicit slot assignment; `None` uses `node_id % slots_per_frame`.
    pub assigned_slot: Option<u16>,
}

impl FixedTdmaMac {
    /// Creates a TDMA MAC using the default `node_id % slots_per_frame` rule.
    pub fn new() -> Self {
        FixedTdmaMac { assigned_slot: None }
    }

    /// Creates a TDMA MAC with an explicit slot assignment.
    pub fn with_slot(slot: u16) -> Self {
        FixedTdmaMac { assigned_slot: Some(slot) }
    }

    /// The slot this node transmits in, given the frame length.
    pub fn slot_for(&self, node_id: u32, slots_per_frame: u16) -> u16 {
        self.assigned_slot.unwrap_or((node_id % slots_per_frame as u32) as u16)
    }
}

impl MacProtocol for FixedTdmaMac {
    fn name(&self) -> &'static str {
        "tdma-fixed"
    }

    fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame> {
        let my_slot = self.slot_for(ctx.node.0, ctx.slots_per_frame);
        if ctx.slot_in_frame == my_slot {
            ctx.queue.pop_front()
        } else {
            None
        }
    }

    fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>) {
        deliver_if_data(frame, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{MacSimConfig, MacSimulation};
    use crate::medium::{MediumConfig, WirelessMedium};
    use crate::packet::NodeId;
    use karyon_sim::Vec2;

    fn sim(nodes: u32, slots: u16) -> MacSimulation<FixedTdmaMac> {
        let medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.0,
            channels: 1,
        });
        let mut s = MacSimulation::new(
            medium,
            MacSimConfig { slots_per_frame: slots, ..MacSimConfig::default() },
            11,
        );
        for i in 0..nodes {
            s.add_node(NodeId(i), FixedTdmaMac::new(), Vec2::new(i as f64 * 5.0, 0.0));
        }
        s
    }

    #[test]
    fn unique_slots_mean_no_collisions() {
        let mut s = sim(8, 16);
        for n in 0..8 {
            s.send_broadcast(NodeId(n), vec![n as u8]);
        }
        s.run_slots(32);
        assert_eq!(s.metrics().collisions, 0);
        assert_eq!(s.metrics().delivered, 8 * 7);
    }

    #[test]
    fn shared_slot_collides() {
        // 8 nodes but only 4 slots: ids 0 and 4 share slot 0, etc.
        let mut s = sim(8, 4);
        for n in 0..8 {
            s.send_broadcast(NodeId(n), vec![n as u8]);
        }
        s.run_slots(8);
        assert!(s.metrics().collisions > 0);
        assert_eq!(s.metrics().delivered, 0);
    }

    #[test]
    fn explicit_assignment_overrides_id_rule() {
        let mac = FixedTdmaMac::with_slot(3);
        assert_eq!(mac.slot_for(10, 16), 3);
        let default_mac = FixedTdmaMac::new();
        assert_eq!(default_mac.slot_for(10, 16), 10);
        assert_eq!(default_mac.slot_for(18, 16), 2);
        assert_eq!(default_mac.name(), "tdma-fixed");
    }
}

//! Medium-access control: the protocol abstraction, the slot-synchronous
//! simulation driver and the concrete MAC protocols used in the experiments.
//!
//! * [`csma`] — a p-persistent CSMA baseline (802.11p-like contention),
//! * [`tdma_fixed`] — statically assigned TDMA (requires an external common
//!   time source such as GPS, the baseline the self-stabilizing algorithms
//!   remove),
//! * [`selfstab_tdma`] — self-stabilizing TDMA slot allocation without any
//!   external time source (paper §V-A2).

pub mod csma;
pub mod selfstab_tdma;
pub mod tdma_fixed;

use std::collections::VecDeque;

use karyon_sim::{Histogram, Rng, SimDuration, SimTime, Vec2};

use crate::medium::{Reception, Transmission, WirelessMedium};
use crate::packet::{ports, Frame, NodeId};

/// Per-slot context handed to a MAC protocol instance.
#[derive(Debug)]
pub struct MacContext<'a> {
    /// This node's identifier.
    pub node: NodeId,
    /// Global slot index since simulation start.
    pub slot: u64,
    /// Slot index within the TDMA frame (`slot % slots_per_frame`).
    pub slot_in_frame: u16,
    /// Number of slots per TDMA frame.
    pub slots_per_frame: u16,
    /// Current simulation time (start of the slot).
    pub now: SimTime,
    /// Carrier-sense result on the node's current channel: `true` when an
    /// external disturbance is jamming it.
    pub channel_disturbed: bool,
    /// The node's current radio channel (the MAC may retune it).
    pub channel: &'a mut u8,
    /// Outgoing application frames (front = oldest).
    pub queue: &'a mut VecDeque<Frame>,
    /// Frames delivered to the application this slot.
    pub delivered: &'a mut Vec<Frame>,
    /// The node's private random stream.
    pub rng: &'a mut Rng,
}

/// What a node observed at the end of a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotObservation {
    /// The node transmitted and no in-range node transmitted concurrently.
    TransmittedClear,
    /// The node transmitted but an in-range node transmitted on the same
    /// channel (its frame was lost at common listeners).
    TransmittedCollided,
    /// The node listened and received a frame.
    ReceivedFrame,
    /// The node listened and heard a collision.
    HeardCollision,
    /// The node listened and the channel was jammed.
    Disturbed,
    /// The node listened and heard nothing.
    Idle,
}

/// A medium-access protocol instance (one per node).
pub trait MacProtocol {
    /// A short name for experiment tables.
    fn name(&self) -> &'static str;

    /// Called at the start of every slot; return a frame to transmit it.
    fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame>;

    /// Called when a frame is received in the current slot.
    fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>);

    /// Called at the end of every slot with the node's observation.
    fn on_slot_end(&mut self, observation: SlotObservation, ctx: &mut MacContext<'_>) {
        let _ = (observation, ctx);
    }
}

/// Default behaviour shared by the concrete MACs: application data frames are
/// handed up, everything else is ignored.
pub(crate) fn deliver_if_data(frame: Frame, ctx: &mut MacContext<'_>) {
    if frame.port == ports::DATA && frame.dst.accepts(ctx.node) {
        ctx.delivered.push(frame);
    }
}

/// Configuration of the slot-synchronous MAC simulation.
#[derive(Debug, Clone)]
pub struct MacSimConfig {
    /// Duration of one slot.
    pub slot_duration: SimDuration,
    /// Number of slots per TDMA frame.
    pub slots_per_frame: u16,
}

impl Default for MacSimConfig {
    fn default() -> Self {
        MacSimConfig { slot_duration: SimDuration::from_millis(1), slots_per_frame: 16 }
    }
}

/// Aggregate metrics of a MAC simulation run.
#[derive(Debug, Default)]
pub struct MacMetrics {
    /// Application frames enqueued.
    pub generated: u64,
    /// Application frames delivered (per receiving node).
    pub delivered: u64,
    /// Transmissions that collided with another in-range transmission.
    pub collisions: u64,
    /// Transmission attempts.
    pub transmissions: u64,
    /// Listener-slots spent jammed by disturbances.
    pub disturbed_slots: u64,
    /// Delivery delays in milliseconds.
    pub delays_ms: Histogram,
}

impl MacMetrics {
    /// Delivery ratio = delivered / (generated × potential receivers is not
    /// known here), reported as delivered per generated frame.
    pub fn delivery_per_generated(&self) -> f64 {
        if self.generated == 0 {
            0.0
        } else {
            self.delivered as f64 / self.generated as f64
        }
    }

    /// Fraction of transmission attempts that collided.
    pub fn collision_rate(&self) -> f64 {
        if self.transmissions == 0 {
            0.0
        } else {
            self.collisions as f64 / self.transmissions as f64
        }
    }
}

struct NodeState<M> {
    id: NodeId,
    mac: M,
    channel: u8,
    queue: VecDeque<Frame>,
    delivered: Vec<Frame>,
    rng: Rng,
    seq: u64,
}

/// Slot-synchronous simulation of a set of nodes running the same MAC
/// protocol over a shared [`WirelessMedium`].
pub struct MacSimulation<M: MacProtocol> {
    medium: WirelessMedium,
    nodes: Vec<NodeState<M>>,
    config: MacSimConfig,
    slot: u64,
    now: SimTime,
    metrics: MacMetrics,
    rng: Rng,
}

impl<M: MacProtocol> MacSimulation<M> {
    /// Creates a simulation over the given medium.
    pub fn new(medium: WirelessMedium, config: MacSimConfig, seed: u64) -> Self {
        MacSimulation {
            medium,
            nodes: Vec::new(),
            config,
            slot: 0,
            now: SimTime::ZERO,
            metrics: MacMetrics::default(),
            rng: Rng::seed_from(seed),
        }
    }

    /// Adds a node running `mac` at `position`.
    pub fn add_node(&mut self, id: NodeId, mac: M, position: Vec2) {
        self.medium.set_position(id, position);
        let rng = self.rng.fork(id.0 as u64 + 1);
        self.nodes.push(NodeState {
            id,
            mac,
            channel: 0,
            queue: VecDeque::new(),
            delivered: Vec::new(),
            rng,
            seq: 0,
        });
    }

    /// Removes a node (simulating churn); returns true if it existed.
    pub fn remove_node(&mut self, id: NodeId) -> bool {
        self.medium.remove_node(id);
        let before = self.nodes.len();
        self.nodes.retain(|n| n.id != id);
        before != self.nodes.len()
    }

    /// Moves a node.
    pub fn set_position(&mut self, id: NodeId, position: Vec2) {
        self.medium.set_position(id, position);
    }

    /// The shared medium (e.g. to add disturbances).
    pub fn medium_mut(&mut self) -> &mut WirelessMedium {
        &mut self.medium
    }

    /// Shared access to the medium.
    pub fn medium(&self) -> &WirelessMedium {
        &self.medium
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Current global slot index.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Duration of one slot, as configured.
    pub fn slot_duration(&self) -> SimDuration {
        self.config.slot_duration
    }

    /// Node identifiers currently in the simulation.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// Access to a node's MAC instance.
    pub fn mac(&self, id: NodeId) -> Option<&M> {
        self.nodes.iter().find(|n| n.id == id).map(|n| &n.mac)
    }

    /// The node's current radio channel.
    pub fn node_channel(&self, id: NodeId) -> Option<u8> {
        self.nodes.iter().find(|n| n.id == id).map(|n| n.channel)
    }

    /// Enqueues an application broadcast frame at `node` with the given payload.
    pub fn send_broadcast(&mut self, node: NodeId, payload: Vec<u8>) {
        let now = self.now;
        if let Some(n) = self.nodes.iter_mut().find(|n| n.id == node) {
            let frame = Frame::broadcast(node, n.seq, now, payload);
            n.seq += 1;
            n.queue.push_back(frame);
            self.metrics.generated += 1;
        }
    }

    /// Enqueues an application unicast frame.
    pub fn send_unicast(&mut self, src: NodeId, dst: NodeId, payload: Vec<u8>) {
        let now = self.now;
        if let Some(n) = self.nodes.iter_mut().find(|n| n.id == src) {
            let frame = Frame::unicast(src, dst, n.seq, now, payload);
            n.seq += 1;
            n.queue.push_back(frame);
            self.metrics.generated += 1;
        }
    }

    /// Takes the frames delivered to `node` since the last call.
    pub fn take_delivered(&mut self, node: NodeId) -> Vec<Frame> {
        self.nodes
            .iter_mut()
            .find(|n| n.id == node)
            .map(|n| std::mem::take(&mut n.delivered))
            .unwrap_or_default()
    }

    /// Aggregate metrics so far.
    pub fn metrics(&self) -> &MacMetrics {
        &self.metrics
    }

    /// Runs one slot.
    pub fn step(&mut self) {
        let slot_in_frame = (self.slot % self.config.slots_per_frame as u64) as u16;
        let now = self.now;

        // Phase 1: every node decides whether to transmit.
        let mut transmissions: Vec<Transmission> = Vec::new();
        for node in &mut self.nodes {
            let disturbed = self.medium.is_disturbed(node.channel, now);
            let mut ctx = MacContext {
                node: node.id,
                slot: self.slot,
                slot_in_frame,
                slots_per_frame: self.config.slots_per_frame,
                now,
                channel_disturbed: disturbed,
                channel: &mut node.channel,
                queue: &mut node.queue,
                delivered: &mut node.delivered,
                rng: &mut node.rng,
            };
            if let Some(frame) = node.mac.on_slot(&mut ctx) {
                let channel = *ctx.channel;
                transmissions.push(Transmission { src: node.id, channel, frame });
                self.metrics.transmissions += 1;
            }
        }

        // Phase 2: resolve receptions per listener on its own channel.
        let transmitter_ids: Vec<NodeId> = transmissions.iter().map(|t| t.src).collect();
        let collided: Vec<NodeId> = transmissions
            .iter()
            .filter(|tx| {
                transmissions.iter().any(|other| {
                    other.src != tx.src
                        && other.channel == tx.channel
                        && self.medium.in_range(tx.src, other.src)
                })
            })
            .map(|tx| tx.src)
            .collect();

        for node in &mut self.nodes {
            let is_transmitter = transmitter_ids.contains(&node.id);
            let outcome = if is_transmitter {
                None
            } else {
                Some(self.medium.outcome_for(
                    node.id,
                    node.channel,
                    &transmissions,
                    now,
                    &mut self.rng,
                ))
            };

            let delivered_before = node.delivered.len();
            let disturbed = self.medium.is_disturbed(node.channel, now);
            let mut ctx = MacContext {
                node: node.id,
                slot: self.slot,
                slot_in_frame,
                slots_per_frame: self.config.slots_per_frame,
                now,
                channel_disturbed: disturbed,
                channel: &mut node.channel,
                queue: &mut node.queue,
                delivered: &mut node.delivered,
                rng: &mut node.rng,
            };

            let observation = match (&outcome, is_transmitter) {
                (None, true) => {
                    if collided.contains(&node.id) {
                        SlotObservation::TransmittedCollided
                    } else {
                        SlotObservation::TransmittedClear
                    }
                }
                (Some(Reception::Frame(frame)), _) => {
                    node.mac.on_receive(frame.clone(), &mut ctx);
                    SlotObservation::ReceivedFrame
                }
                (Some(Reception::Collision), _) => SlotObservation::HeardCollision,
                (Some(Reception::Disturbed), _) => {
                    self.metrics.disturbed_slots += 1;
                    SlotObservation::Disturbed
                }
                (Some(Reception::Idle), _) | (None, false) => SlotObservation::Idle,
            };
            node.mac.on_slot_end(observation, &mut ctx);

            // Account for frames the MAC handed to the application this slot.
            for frame in &node.delivered[delivered_before..] {
                self.metrics.delivered += 1;
                self.metrics.delays_ms.record(frame.delay_at(now).as_secs_f64() * 1e3);
            }
        }

        self.metrics.collisions += collided.len() as u64;

        self.slot += 1;
        self.now += self.config.slot_duration;
    }

    /// Runs `n` consecutive slots.
    pub fn run_slots(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::MediumConfig;

    /// A trivially simple MAC used to exercise the driver: transmit the head
    /// of the queue whenever the slot index matches the node id.
    struct RoundRobinMac;

    impl MacProtocol for RoundRobinMac {
        fn name(&self) -> &'static str {
            "round-robin"
        }
        fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame> {
            if ctx.slot_in_frame as u32 == ctx.node.0 {
                ctx.queue.pop_front()
            } else {
                None
            }
        }
        fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>) {
            deliver_if_data(frame, ctx);
        }
    }

    fn sim(nodes: u32) -> MacSimulation<RoundRobinMac> {
        let medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.0,
            channels: 2,
        });
        let mut s = MacSimulation::new(medium, MacSimConfig::default(), 42);
        for i in 0..nodes {
            s.add_node(NodeId(i), RoundRobinMac, Vec2::new(i as f64 * 10.0, 0.0));
        }
        s
    }

    #[test]
    fn frames_are_delivered_without_collisions() {
        let mut s = sim(4);
        s.send_broadcast(NodeId(0), vec![1]);
        s.send_broadcast(NodeId(1), vec![2]);
        s.run_slots(16);
        // Each broadcast reaches the 3 other nodes.
        assert_eq!(s.metrics().delivered, 6);
        assert_eq!(s.metrics().collisions, 0);
        assert_eq!(s.metrics().generated, 2);
        assert!(s.metrics().delivery_per_generated() > 2.9);
        let got = s.take_delivered(NodeId(2));
        assert_eq!(got.len(), 2);
        assert!(s.take_delivered(NodeId(2)).is_empty(), "delivered frames are drained");
    }

    #[test]
    fn unicast_only_reaches_target() {
        let mut s = sim(3);
        s.send_unicast(NodeId(0), NodeId(2), vec![9]);
        s.run_slots(16);
        assert!(s.take_delivered(NodeId(1)).is_empty());
        assert_eq!(s.take_delivered(NodeId(2)).len(), 1);
        assert_eq!(s.metrics().delivered, 1);
    }

    #[test]
    fn simultaneous_transmissions_collide() {
        /// A MAC that always transmits when it has something queued.
        struct GreedyMac;
        impl MacProtocol for GreedyMac {
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame> {
                ctx.queue.pop_front()
            }
            fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>) {
                deliver_if_data(frame, ctx);
            }
        }
        let medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.0,
            channels: 1,
        });
        let mut s = MacSimulation::new(medium, MacSimConfig::default(), 7);
        for i in 0..3 {
            s.add_node(NodeId(i), GreedyMac, Vec2::new(i as f64, 0.0));
        }
        s.send_broadcast(NodeId(0), vec![0]);
        s.send_broadcast(NodeId(1), vec![1]);
        s.run_slots(1);
        assert_eq!(s.metrics().collisions, 2);
        assert_eq!(s.metrics().delivered, 0);
        assert!((s.metrics().collision_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disturbed_slots_are_counted() {
        let mut s = sim(2);
        s.medium_mut().add_disturbance(crate::medium::Disturbance {
            channel: Some(0),
            start: SimTime::ZERO,
            end: SimTime::from_millis(8),
        });
        s.send_broadcast(NodeId(0), vec![1]);
        s.run_slots(16);
        assert!(s.metrics().disturbed_slots > 0);
        // The single transmission (slot 0, while jammed) is lost.
        assert_eq!(s.metrics().delivered, 0);
    }

    #[test]
    fn node_management() {
        let mut s = sim(3);
        assert_eq!(s.node_ids().len(), 3);
        assert!(s.remove_node(NodeId(1)));
        assert!(!s.remove_node(NodeId(1)));
        assert_eq!(s.node_ids().len(), 2);
        assert_eq!(s.node_channel(NodeId(0)), Some(0));
        assert!(s.mac(NodeId(0)).is_some());
        assert!(s.mac(NodeId(9)).is_none());
        s.set_position(NodeId(0), Vec2::new(5.0, 5.0));
        assert_eq!(s.medium().position(NodeId(0)), Some(Vec2::new(5.0, 5.0)));
    }

    #[test]
    fn metrics_defaults() {
        let m = MacMetrics::default();
        assert_eq!(m.delivery_per_generated(), 0.0);
        assert_eq!(m.collision_rate(), 0.0);
    }
}

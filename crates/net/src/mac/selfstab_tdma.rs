//! Self-stabilizing TDMA slot allocation (paper §V-A2, after Leone & Schiller).
//!
//! Nodes allocate TDMA slots *without any external time source* (no GPS, no
//! base station): each node claims a slot, beacons its claim together with
//! the slot occupancy it observed during the previous TDMA frame, and
//! re-selects a slot whenever a neighbour's report shows that its own slot
//! collided or is owned by someone else.  Starting from an arbitrary (even
//! adversarial) initial claim configuration, the allocation converges to a
//! collision-free schedule — the self-stabilization property evaluated in
//! experiment E05.

use crate::packet::{ports, Destination, Frame, NodeId};

use super::{MacContext, MacProtocol, SlotObservation};

/// What a node observed in one slot of the previous frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotStatus {
    /// Nothing was heard.
    Free,
    /// Exactly one transmission, from the given node.
    Owned(u32),
    /// Two or more interfering transmissions.
    Collision,
}

const MAGIC: u8 = 0xB5;
const SLOT_NONE: u16 = 0xFFFF;
const STATUS_FREE: u16 = 0xFFFF;
const STATUS_COLLISION: u16 = 0xFFFE;

fn encode_beacon(claimed: Option<u16>, report: &[SlotStatus]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + report.len() * 2);
    out.push(MAGIC);
    let c = claimed.unwrap_or(SLOT_NONE);
    out.extend_from_slice(&c.to_le_bytes());
    out.push(report.len() as u8);
    for status in report {
        let v: u16 = match status {
            SlotStatus::Free => STATUS_FREE,
            SlotStatus::Collision => STATUS_COLLISION,
            SlotStatus::Owned(id) => (*id as u16).min(STATUS_COLLISION - 1),
        };
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_beacon(payload: &[u8]) -> Option<(Option<u16>, Vec<SlotStatus>)> {
    if payload.len() < 4 || payload[0] != MAGIC {
        return None;
    }
    let claimed_raw = u16::from_le_bytes([payload[1], payload[2]]);
    let claimed = if claimed_raw == SLOT_NONE { None } else { Some(claimed_raw) };
    let count = payload[3] as usize;
    if payload.len() < 4 + count * 2 {
        return None;
    }
    let mut report = Vec::with_capacity(count);
    for i in 0..count {
        let v = u16::from_le_bytes([payload[4 + 2 * i], payload[5 + 2 * i]]);
        report.push(match v {
            STATUS_FREE => SlotStatus::Free,
            STATUS_COLLISION => SlotStatus::Collision,
            id => SlotStatus::Owned(id as u32),
        });
    }
    Some((claimed, report))
}

/// Self-stabilizing TDMA MAC instance.
#[derive(Debug, Clone)]
pub struct SelfStabTdmaMac {
    claimed_slot: Option<u16>,
    /// Observations accumulated during the current frame.
    observed: Vec<SlotStatus>,
    /// The previous frame's observations (beaconed to neighbours).
    last_report: Vec<SlotStatus>,
    conflict: bool,
    stable_frames: u64,
    reselections: u64,
    /// Probability of *listening* instead of transmitting in the claimed slot
    /// during a frame.  Listening occasionally is what lets a node detect
    /// that its own slot is being used by others even when every claimant of
    /// the slot would otherwise be transmitting (and, being half-duplex,
    /// hearing nothing).
    listen_probability: f64,
    /// True when this frame's own slot is spent listening.
    listening_this_frame: bool,
}

impl Default for SelfStabTdmaMac {
    fn default() -> Self {
        Self::new()
    }
}

impl SelfStabTdmaMac {
    /// Creates a node with no claimed slot (it will self-allocate).
    pub fn new() -> Self {
        SelfStabTdmaMac {
            claimed_slot: None,
            observed: Vec::new(),
            last_report: Vec::new(),
            conflict: false,
            stable_frames: 0,
            reselections: 0,
            listen_probability: 0.15,
            listening_this_frame: false,
        }
    }

    /// Creates a node with an arbitrary (possibly conflicting) initial claim,
    /// used to demonstrate stabilization from a corrupted configuration.
    pub fn with_initial_claim(slot: u16) -> Self {
        let mut mac = Self::new();
        mac.claimed_slot = Some(slot);
        mac
    }

    /// The currently claimed slot, if any.
    pub fn claimed_slot(&self) -> Option<u16> {
        self.claimed_slot
    }

    /// Number of consecutive frames without a detected conflict.
    pub fn stable_frames(&self) -> u64 {
        self.stable_frames
    }

    /// Number of times the node had to re-select its slot.
    pub fn reselections(&self) -> u64 {
        self.reselections
    }

    fn ensure_capacity(&mut self, slots: u16) {
        if self.observed.len() != slots as usize {
            self.observed = vec![SlotStatus::Free; slots as usize];
        }
        if self.last_report.len() != slots as usize {
            self.last_report = vec![SlotStatus::Free; slots as usize];
        }
    }

    fn frame_boundary(&mut self, ctx: &mut MacContext<'_>) {
        // Decide based on what was observed during the previous frame.
        let needs_new_slot = self.claimed_slot.is_none()
            || self.conflict
            || self.claimed_slot.map(|s| s >= ctx.slots_per_frame).unwrap_or(false);
        if needs_new_slot {
            let mut free_slots: Vec<u16> = (0..ctx.slots_per_frame)
                .filter(|s| {
                    matches!(self.observed.get(*s as usize), Some(SlotStatus::Free) | None)
                        && Some(*s) != self.claimed_slot
                })
                .collect();
            if free_slots.is_empty() {
                free_slots = (0..ctx.slots_per_frame).collect();
            }
            let pick = free_slots[ctx.rng.range_usize(0, free_slots.len() - 1)];
            if self.claimed_slot.is_some() {
                self.reselections += 1;
            }
            self.claimed_slot = Some(pick);
            self.stable_frames = 0;
        } else {
            self.stable_frames += 1;
        }
        self.conflict = false;
        self.last_report = std::mem::replace(
            &mut self.observed,
            vec![SlotStatus::Free; ctx.slots_per_frame as usize],
        );
    }
}

impl MacProtocol for SelfStabTdmaMac {
    fn name(&self) -> &'static str {
        "selfstab-tdma"
    }

    fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame> {
        self.ensure_capacity(ctx.slots_per_frame);
        if ctx.slot_in_frame == 0 {
            self.frame_boundary(ctx);
            // Occasionally spend the whole frame listening in the own slot so
            // that concurrent claimants of the same slot can be detected.
            self.listening_this_frame = ctx.rng.chance(self.listen_probability);
        }
        if Some(ctx.slot_in_frame) == self.claimed_slot && !self.listening_this_frame {
            let payload = encode_beacon(self.claimed_slot, &self.last_report);
            Some(Frame {
                src: ctx.node,
                dst: Destination::Broadcast,
                seq: ctx.slot,
                created: ctx.now,
                port: ports::BEACON,
                payload,
            })
        } else {
            None
        }
    }

    fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>) {
        if frame.port != ports::BEACON {
            return;
        }
        self.ensure_capacity(ctx.slots_per_frame);
        // Record the occupancy of the slot in which the frame was heard.
        if let Some(entry) = self.observed.get_mut(ctx.slot_in_frame as usize) {
            *entry = SlotStatus::Owned(frame.src.0);
        }
        let Some((neighbor_claim, neighbor_report)) = decode_beacon(&frame.payload) else {
            return;
        };
        let Some(my_slot) = self.claimed_slot else {
            return;
        };
        // Somebody transmitted in my slot while I was listening.
        if ctx.slot_in_frame == my_slot && frame.src != ctx.node {
            self.conflict = true;
        }
        // Another node claims my slot.
        if neighbor_claim == Some(my_slot) && frame.src != ctx.node {
            self.conflict = true;
        }
        // A neighbour observed my slot colliding, or owned by someone else.
        match neighbor_report.get(my_slot as usize) {
            Some(SlotStatus::Collision) => self.conflict = true,
            Some(SlotStatus::Owned(owner)) if *owner != ctx.node.0 => self.conflict = true,
            _ => {}
        }
    }

    fn on_slot_end(&mut self, observation: SlotObservation, ctx: &mut MacContext<'_>) {
        self.ensure_capacity(ctx.slots_per_frame);
        if observation == SlotObservation::HeardCollision {
            if let Some(entry) = self.observed.get_mut(ctx.slot_in_frame as usize) {
                *entry = SlotStatus::Collision;
            }
            // A collision heard in the own slot while listening means other
            // nodes are using it.
            if Some(ctx.slot_in_frame) == self.claimed_slot {
                self.conflict = true;
            }
        }
    }
}

/// Checks whether the slot allocation of a set of nodes is collision-free:
/// no two nodes that are in range of each other (or share a common neighbour,
/// i.e. hidden terminals) claim the same slot.
pub fn allocation_is_collision_free(
    claims: &[(NodeId, Option<u16>)],
    in_range: impl Fn(NodeId, NodeId) -> bool,
) -> bool {
    if claims.iter().any(|(_, slot)| slot.is_none()) {
        return false;
    }
    for (i, (a, slot_a)) in claims.iter().enumerate() {
        for (b, slot_b) in claims.iter().skip(i + 1) {
            if slot_a == slot_b {
                let direct = in_range(*a, *b);
                let common_neighbor = claims
                    .iter()
                    .any(|(c, _)| *c != *a && *c != *b && in_range(*a, *c) && in_range(*b, *c));
                if direct || common_neighbor {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{MacSimConfig, MacSimulation};
    use crate::medium::{MediumConfig, WirelessMedium};
    use karyon_sim::{SimDuration, Vec2};

    fn build_sim(
        nodes: u32,
        slots: u16,
        seed: u64,
        corrupt: bool,
    ) -> MacSimulation<SelfStabTdmaMac> {
        let medium = WirelessMedium::new(MediumConfig {
            range: 1_000.0,
            loss_probability: 0.0,
            channels: 1,
        });
        let mut sim = MacSimulation::new(
            medium,
            MacSimConfig { slot_duration: SimDuration::from_millis(1), slots_per_frame: slots },
            seed,
        );
        for i in 0..nodes {
            let mac = if corrupt {
                // Adversarial start: everyone claims slot 0.
                SelfStabTdmaMac::with_initial_claim(0)
            } else {
                SelfStabTdmaMac::new()
            };
            sim.add_node(NodeId(i), mac, Vec2::new(i as f64 * 10.0, 0.0));
        }
        sim
    }

    fn converged(sim: &MacSimulation<SelfStabTdmaMac>) -> bool {
        let claims: Vec<(NodeId, Option<u16>)> =
            sim.node_ids().iter().map(|id| (*id, sim.mac(*id).unwrap().claimed_slot())).collect();
        allocation_is_collision_free(&claims, |a, b| sim.medium().in_range(a, b))
    }

    #[test]
    fn beacon_round_trip() {
        let report =
            vec![SlotStatus::Free, SlotStatus::Owned(7), SlotStatus::Collision, SlotStatus::Free];
        let bytes = encode_beacon(Some(2), &report);
        let (claim, decoded) = decode_beacon(&bytes).unwrap();
        assert_eq!(claim, Some(2));
        assert_eq!(decoded, report);
        let bytes_none = encode_beacon(None, &report);
        assert_eq!(decode_beacon(&bytes_none).unwrap().0, None);
        assert!(decode_beacon(&[1, 2, 3]).is_none());
        assert!(decode_beacon(&[]).is_none());
    }

    #[test]
    fn converges_from_empty_claims() {
        let mut sim = build_sim(8, 16, 1, false);
        sim.run_slots(16 * 40);
        assert!(converged(&sim), "allocation did not converge");
        // After convergence the last frames are collision-free.
        let before = sim.metrics().collisions;
        sim.run_slots(16 * 10);
        assert_eq!(sim.metrics().collisions, before, "post-convergence collisions");
    }

    #[test]
    fn converges_from_adversarial_claims() {
        let mut sim = build_sim(8, 16, 2, true);
        sim.run_slots(16 * 60);
        assert!(converged(&sim), "allocation did not stabilize from corrupted state");
        let reselections: u64 =
            sim.node_ids().iter().map(|id| sim.mac(*id).unwrap().reselections()).sum();
        assert!(reselections > 0, "stabilization requires at least some reselections");
    }

    #[test]
    fn tolerates_churn() {
        let mut sim = build_sim(6, 16, 3, false);
        sim.run_slots(16 * 30);
        assert!(converged(&sim));
        // A new node joins and must obtain a conflict-free slot.
        sim.add_node(NodeId(100), SelfStabTdmaMac::new(), Vec2::new(25.0, 0.0));
        sim.run_slots(16 * 40);
        assert!(converged(&sim), "allocation did not re-converge after join");
        assert!(sim.mac(NodeId(100)).unwrap().claimed_slot().is_some());
    }

    #[test]
    fn stable_frames_grow_after_convergence() {
        let mut sim = build_sim(4, 8, 4, false);
        sim.run_slots(8 * 50);
        for id in sim.node_ids() {
            assert!(sim.mac(id).unwrap().stable_frames() >= 5, "node {id} never became stable");
        }
    }

    #[test]
    fn allocation_checker_detects_conflicts() {
        let claims = vec![(NodeId(1), Some(3)), (NodeId(2), Some(3)), (NodeId(3), Some(5))];
        assert!(!allocation_is_collision_free(&claims, |_, _| true));
        let ok = vec![(NodeId(1), Some(3)), (NodeId(2), Some(4))];
        assert!(allocation_is_collision_free(&ok, |_, _| true));
        let unclaimed = vec![(NodeId(1), None)];
        assert!(!allocation_is_collision_free(&unclaimed, |_, _| true));
        // Same slot but neither in range nor sharing a neighbour: acceptable (spatial reuse).
        let reuse = vec![(NodeId(1), Some(3)), (NodeId(2), Some(3))];
        assert!(allocation_is_collision_free(&reuse, |_, _| false));
    }
}

//! A p-persistent CSMA baseline MAC (802.11p-style contention).
//!
//! This is the "standard MAC level" that R2T-MAC surrounds (paper Fig. 4):
//! contention-based, no guarantees under load or disturbance, used as the
//! baseline in the inaccessibility experiments.

use karyon_sim::SimDuration;

use crate::packet::Frame;

use super::{deliver_if_data, MacContext, MacProtocol, SlotObservation};

/// Configuration of the CSMA baseline.
#[derive(Debug, Clone)]
pub struct CsmaConfig {
    /// Probability of transmitting in a slot when the medium appears free
    /// and no backoff is pending.
    pub persistence: f64,
    /// Initial contention-window size (slots) after a collision.
    pub min_contention_window: u32,
    /// Maximum contention-window size (slots).
    pub max_contention_window: u32,
    /// Frames older than this are dropped instead of transmitted (they would
    /// be useless to a real-time consumer).
    pub frame_lifetime: SimDuration,
}

impl Default for CsmaConfig {
    fn default() -> Self {
        CsmaConfig {
            persistence: 0.6,
            min_contention_window: 2,
            max_contention_window: 64,
            frame_lifetime: SimDuration::from_secs(2),
        }
    }
}

/// p-persistent CSMA with binary exponential backoff.
#[derive(Debug, Clone)]
pub struct CsmaMac {
    config: CsmaConfig,
    backoff: u32,
    contention_window: u32,
    dropped_expired: u64,
}

impl CsmaMac {
    /// Creates a CSMA instance with the given configuration.
    pub fn new(config: CsmaConfig) -> Self {
        let cw = config.min_contention_window.max(1);
        CsmaMac { config, backoff: 0, contention_window: cw, dropped_expired: 0 }
    }

    /// Creates a CSMA instance with default parameters.
    pub fn default_mac() -> Self {
        CsmaMac::new(CsmaConfig::default())
    }

    /// Number of frames dropped because they exceeded their lifetime.
    pub fn dropped_expired(&self) -> u64 {
        self.dropped_expired
    }
}

impl MacProtocol for CsmaMac {
    fn name(&self) -> &'static str {
        "csma"
    }

    fn on_slot(&mut self, ctx: &mut MacContext<'_>) -> Option<Frame> {
        // Purge frames that exceeded their lifetime.
        while let Some(front) = ctx.queue.front() {
            if front.delay_at(ctx.now) > self.config.frame_lifetime {
                ctx.queue.pop_front();
                self.dropped_expired += 1;
            } else {
                break;
            }
        }
        if ctx.queue.is_empty() {
            return None;
        }
        // Carrier sense: defer while the channel is jammed.
        if ctx.channel_disturbed {
            return None;
        }
        if self.backoff > 0 {
            self.backoff -= 1;
            return None;
        }
        if ctx.rng.chance(self.config.persistence) {
            ctx.queue.pop_front()
        } else {
            None
        }
    }

    fn on_receive(&mut self, frame: Frame, ctx: &mut MacContext<'_>) {
        deliver_if_data(frame, ctx);
    }

    fn on_slot_end(&mut self, observation: SlotObservation, ctx: &mut MacContext<'_>) {
        match observation {
            SlotObservation::TransmittedCollided => {
                self.contention_window =
                    (self.contention_window * 2).min(self.config.max_contention_window.max(1));
                self.backoff = ctx.rng.range_u64(1, self.contention_window as u64) as u32;
            }
            SlotObservation::TransmittedClear => {
                self.contention_window = self.config.min_contention_window.max(1);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{MacSimConfig, MacSimulation};
    use crate::medium::{Disturbance, MediumConfig, WirelessMedium};
    use crate::packet::NodeId;
    use karyon_sim::{SimTime, Vec2};

    fn csma_sim(nodes: u32, channels: u8, seed: u64) -> MacSimulation<CsmaMac> {
        let medium =
            WirelessMedium::new(MediumConfig { range: 1_000.0, loss_probability: 0.0, channels });
        let mut s = MacSimulation::new(medium, MacSimConfig::default(), seed);
        for i in 0..nodes {
            s.add_node(NodeId(i), CsmaMac::default_mac(), Vec2::new(i as f64 * 5.0, 0.0));
        }
        s
    }

    #[test]
    fn lone_sender_delivers_everything() {
        let mut s = csma_sim(3, 1, 1);
        for _ in 0..20 {
            s.send_broadcast(NodeId(0), vec![1]);
            s.run_slots(5);
        }
        s.run_slots(200);
        // 20 frames × 2 receivers.
        assert_eq!(s.metrics().delivered, 40);
        assert_eq!(s.metrics().collisions, 0);
    }

    #[test]
    fn contention_causes_some_collisions_but_progress() {
        let mut s = csma_sim(6, 1, 2);
        for round in 0..50u64 {
            for n in 0..6 {
                if round % 3 == n as u64 % 3 {
                    s.send_broadcast(NodeId(n), vec![n as u8]);
                }
            }
            s.run_slots(4);
        }
        s.run_slots(600);
        let m = s.metrics();
        assert!(m.collisions > 0, "expected contention collisions");
        assert!(m.delivered > m.generated, "broadcasts reach multiple receivers");
        assert!(m.delivery_per_generated() > 2.0, "most frames should get through eventually");
    }

    #[test]
    fn defers_while_disturbed_and_recovers() {
        let mut s = csma_sim(2, 1, 3);
        s.medium_mut().add_disturbance(Disturbance {
            channel: Some(0),
            start: SimTime::ZERO,
            end: SimTime::from_millis(50),
        });
        s.send_broadcast(NodeId(0), vec![7]);
        s.run_slots(40); // still jammed: nothing delivered
        assert_eq!(s.metrics().delivered, 0);
        s.run_slots(100); // jam over: frame goes out
        assert_eq!(s.metrics().delivered, 1);
        let mac = s.mac(NodeId(0)).unwrap();
        assert_eq!(mac.dropped_expired(), 0);
        assert_eq!(mac.name(), "csma");
    }

    #[test]
    fn stale_frames_are_dropped() {
        let mut s = csma_sim(2, 1, 4);
        // Jam for longer than the frame lifetime (2 s = 2000 slots).
        s.medium_mut().add_disturbance(Disturbance {
            channel: Some(0),
            start: SimTime::ZERO,
            end: SimTime::from_secs(3),
        });
        s.send_broadcast(NodeId(0), vec![1]);
        s.run_slots(3_500);
        assert_eq!(s.metrics().delivered, 0);
        assert_eq!(s.mac(NodeId(0)).unwrap().dropped_expired(), 1);
    }
}

//! Topology discovery and vertex-disjoint path analysis (paper §V-C).
//!
//! "Traditional Byzantine resilient (agreement) algorithms use 2f+1
//! vertex-disjoint paths to ensure message delivery in the presence of up to
//! f Byzantine nodes.  The question of how these paths are identified is
//! related to the fundamental problem of topology discovery."  This module
//! provides (a) a round-based flooding topology-discovery protocol whose
//! convergence time is measured in experiment E09, and (b) a Menger-style
//! vertex-disjoint path counter used to decide whether Byzantine-resilient
//! dissemination between two nodes is possible for a given `f`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::packet::NodeId;

/// An undirected communication graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    adjacency: BTreeMap<u32, BTreeSet<u32>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// A line topology: `n` nodes, node `i` linked to node `i + 1`.
    ///
    /// # Panics
    /// Panics when `n < 2` (no edge could exist).
    pub fn line(n: u32) -> Graph {
        assert!(n >= 2, "a line topology needs at least 2 nodes");
        let mut g = Graph::new();
        for i in 0..n - 1 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    /// A ring of `n` nodes with distance-2 chords — the representative
    /// vehicular convoy topology of the cooperation-state experiments
    /// (every node reaches its two neighbours on each side).
    ///
    /// # Panics
    /// Panics when `n < 3` (a ring needs at least 3 nodes).
    pub fn ring_with_chords(n: u32) -> Graph {
        assert!(n >= 3, "a chorded ring needs at least 3 nodes");
        let mut g = Graph::new();
        for i in 0..n {
            g.add_edge(NodeId(i), NodeId((i + 1) % n));
            g.add_edge(NodeId(i), NodeId((i + 2) % n));
        }
        g
    }

    /// The complete graph on `n` nodes.
    ///
    /// # Panics
    /// Panics when `n < 2`.
    pub fn complete(n: u32) -> Graph {
        assert!(n >= 2, "a complete graph needs at least 2 nodes");
        let mut g = Graph::new();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    /// Adds a node with no edges (no-op if it already exists).
    pub fn add_node(&mut self, node: NodeId) {
        self.adjacency.entry(node.0).or_default();
    }

    /// Adds an undirected edge (and both endpoints).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.adjacency.entry(a.0).or_default().insert(b.0);
        self.adjacency.entry(b.0).or_default().insert(a.0);
    }

    /// All nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.adjacency.keys().map(|k| NodeId(*k)).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.values().map(|s| s.len()).sum::<usize>() / 2
    }

    /// Neighbours of a node.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.adjacency
            .get(&node.0)
            .map(|s| s.iter().map(|n| NodeId(*n)).collect())
            .unwrap_or_default()
    }

    /// True when the edge exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency.get(&a.0).map(|s| s.contains(&b.0)).unwrap_or(false)
    }

    /// Merges another graph's edges into this one.
    pub fn merge(&mut self, other: &Graph) {
        for (node, neighbors) in &other.adjacency {
            self.adjacency.entry(*node).or_default().extend(neighbors.iter().copied());
        }
    }

    /// Builds a graph from a neighbour oracle over a node set (e.g. a
    /// [`crate::medium::WirelessMedium`] range predicate).
    pub fn from_neighborhoods(
        nodes: &[NodeId],
        in_range: impl Fn(NodeId, NodeId) -> bool,
    ) -> Graph {
        let mut g = Graph::new();
        for &n in nodes {
            g.add_node(n);
        }
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                if in_range(a, b) {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }

    /// The maximum number of internally vertex-disjoint paths between `s`
    /// and `t` (Menger's theorem, computed by unit-capacity max-flow on the
    /// node-split graph).  Adjacent nodes get `usize::MAX`-free handling:
    /// the direct edge contributes one path.
    pub fn vertex_disjoint_paths(&self, s: NodeId, t: NodeId) -> usize {
        if s == t || !self.adjacency.contains_key(&s.0) || !self.adjacency.contains_key(&t.0) {
            return 0;
        }
        // Node splitting: every node v (except s, t) becomes v_in -> v_out
        // with capacity 1.  Edges have capacity 1 in each direction.
        // Node encoding: (id, 0) = in, (id, 1) = out.
        type Key = (u32, u8);
        let mut capacity: BTreeMap<(Key, Key), i64> = BTreeMap::new();
        let mut add = |from: Key, to: Key, cap: i64| {
            *capacity.entry((from, to)).or_insert(0) += cap;
            capacity.entry((to, from)).or_insert(0);
        };
        for (&v, neighbors) in &self.adjacency {
            let internal_cap = if v == s.0 || v == t.0 { i64::MAX / 4 } else { 1 };
            add((v, 0), (v, 1), internal_cap);
            for &u in neighbors {
                add((v, 1), (u, 0), 1);
            }
        }
        let source = (s.0, 1);
        let sink = (t.0, 0);
        let mut flow = 0usize;
        loop {
            // BFS for an augmenting path.
            let mut parent: BTreeMap<Key, Key> = BTreeMap::new();
            let mut queue = VecDeque::new();
            queue.push_back(source);
            let mut found = false;
            while let Some(u) = queue.pop_front() {
                if u == sink {
                    found = true;
                    break;
                }
                let next: Vec<Key> = capacity
                    .iter()
                    .filter(|((from, _), cap)| *from == u && **cap > 0)
                    .map(|((_, to), _)| *to)
                    .collect();
                for v in next {
                    if v != source && !parent.contains_key(&v) {
                        parent.insert(v, u);
                        queue.push_back(v);
                    }
                }
            }
            if !found {
                break;
            }
            // Augment by 1 (unit capacities on the paths that matter).
            let mut v = sink;
            while v != source {
                let u = parent[&v];
                *capacity.get_mut(&(u, v)).unwrap() -= 1;
                *capacity.get_mut(&(v, u)).unwrap() += 1;
                v = u;
            }
            flow += 1;
            if flow > self.node_count() {
                break; // safety guard
            }
        }
        flow
    }

    /// True when Byzantine-resilient delivery from `s` to `t` is possible in
    /// the presence of up to `f` Byzantine nodes, i.e. there are at least
    /// `2f + 1` vertex-disjoint paths.
    pub fn byzantine_resilient(&self, s: NodeId, t: NodeId, f: usize) -> bool {
        self.vertex_disjoint_paths(s, t) > 2 * f
    }
}

/// Round-based flooding topology discovery: every node repeatedly broadcasts
/// its current view of the topology to its physical neighbours and merges the
/// views it hears.  Converges to the full topology in (at most) diameter
/// rounds; the experiment measures how many rounds were needed.
#[derive(Debug, Clone)]
pub struct TopologyDiscovery {
    physical: Graph,
    views: BTreeMap<u32, Graph>,
    rounds: u64,
}

impl TopologyDiscovery {
    /// Creates the protocol over a fixed physical topology: each node starts
    /// knowing only its own adjacency.
    pub fn new(physical: Graph) -> Self {
        let mut views = BTreeMap::new();
        for node in physical.nodes() {
            let mut local = Graph::new();
            local.add_node(node);
            for neighbor in physical.neighbors(node) {
                local.add_edge(node, neighbor);
            }
            views.insert(node.0, local);
        }
        TopologyDiscovery { physical, views, rounds: 0 }
    }

    /// Number of exchange rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// A node's current view of the topology.
    pub fn view(&self, node: NodeId) -> Option<&Graph> {
        self.views.get(&node.0)
    }

    /// True when every node's view equals the physical topology.
    pub fn converged(&self) -> bool {
        self.views.values().all(|v| v.edge_count() == self.physical.edge_count())
    }

    /// Executes one synchronous exchange round.
    pub fn step(&mut self) {
        self.rounds += 1;
        let snapshot = self.views.clone();
        for node in self.physical.nodes() {
            let mut merged = snapshot[&node.0].clone();
            for neighbor in self.physical.neighbors(node) {
                merged.merge(&snapshot[&neighbor.0]);
            }
            self.views.insert(node.0, merged);
        }
    }

    /// Runs until convergence or `max_rounds`; returns the number of rounds
    /// used, or `None` if convergence was not reached.
    pub fn run_to_convergence(&mut self, max_rounds: u64) -> Option<u64> {
        let start = self.rounds;
        while !self.converged() {
            if self.rounds - start >= max_rounds {
                return None;
            }
            self.step();
        }
        Some(self.rounds - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    fn complete(n: u32) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g
    }

    #[test]
    fn graph_basics() {
        let mut g = Graph::new();
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(1), NodeId(1)); // self loops ignored
        g.add_node(NodeId(9));
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(3)));
        assert_eq!(g.neighbors(NodeId(2)), vec![NodeId(1), NodeId(3)]);
        assert!(g.neighbors(NodeId(99)).is_empty());
    }

    #[test]
    fn from_neighborhoods_builds_expected_edges() {
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        // Nodes adjacent when ids differ by 1.
        let g = Graph::from_neighborhoods(&nodes, |a, b| a.0.abs_diff(b.0) == 1);
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn disjoint_paths_on_line_and_complete_graphs() {
        let g = line(5);
        assert_eq!(g.vertex_disjoint_paths(NodeId(0), NodeId(4)), 1);
        let k5 = complete(5);
        // Between two nodes of K5: the direct edge plus 3 paths through the others.
        assert_eq!(k5.vertex_disjoint_paths(NodeId(0), NodeId(4)), 4);
        assert_eq!(k5.vertex_disjoint_paths(NodeId(0), NodeId(0)), 0);
        assert_eq!(g.vertex_disjoint_paths(NodeId(0), NodeId(42)), 0);
    }

    #[test]
    fn disjoint_paths_respect_cut_vertices() {
        // Two triangles joined at a single cut vertex 2:
        // 0-1-2 triangle and 2-3-4 triangle.
        let mut g = Graph::new();
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(3), NodeId(4));
        g.add_edge(NodeId(2), NodeId(4));
        // Everything from the first triangle to the second must pass node 2.
        assert_eq!(g.vertex_disjoint_paths(NodeId(0), NodeId(4)), 1);
        assert_eq!(g.vertex_disjoint_paths(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn byzantine_resilience_threshold() {
        let k5 = complete(5);
        // 4 disjoint paths: tolerates f=1 (needs 3) but not f=2 (needs 5).
        assert!(k5.byzantine_resilient(NodeId(0), NodeId(1), 1));
        assert!(!k5.byzantine_resilient(NodeId(0), NodeId(1), 2));
        let l = line(3);
        assert!(!l.byzantine_resilient(NodeId(0), NodeId(2), 1));
        assert!(l.byzantine_resilient(NodeId(0), NodeId(2), 0));
    }

    #[test]
    fn topology_discovery_converges_in_diameter_rounds() {
        let g = line(6); // diameter 5
        let mut disc = TopologyDiscovery::new(g);
        assert!(!disc.converged());
        let rounds = disc.run_to_convergence(20).expect("must converge");
        assert!(rounds <= 5, "took {rounds} rounds");
        assert!(disc.converged());
        // Every node's view now has all 5 edges.
        for node in disc.physical.nodes() {
            assert_eq!(disc.view(node).unwrap().edge_count(), 5);
        }
    }

    #[test]
    fn topology_discovery_on_complete_graph_is_one_round() {
        let g = complete(6);
        let mut disc = TopologyDiscovery::new(g);
        let rounds = disc.run_to_convergence(10).unwrap();
        assert_eq!(rounds, 1);
        assert_eq!(disc.rounds(), 1);
    }

    #[test]
    fn topology_discovery_disconnected_never_converges() {
        let mut g = line(3);
        g.add_edge(NodeId(10), NodeId(11)); // disconnected component
        let mut disc = TopologyDiscovery::new(g);
        assert_eq!(disc.run_to_convergence(10), None);
    }

    #[test]
    fn graph_merge_unions_edges() {
        let mut a = line(3);
        let b = complete(3);
        a.merge(&b);
        assert_eq!(a.edge_count(), 3);
    }
}

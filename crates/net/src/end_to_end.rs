//! Self-stabilizing end-to-end FIFO delivery over an unreliable, bounded
//! capacity channel (paper §V-A2, after Dolev, Hanemann, Schiller and Sharma,
//! "Self-stabilizing end-to-end communication in (bounded capacity, omitting,
//! duplicating and non-FIFO) dynamic networks").
//!
//! The channel may omit, duplicate and reorder packets and can hold at most a
//! bounded number of packets in flight; moreover, its *initial* content is
//! arbitrary (stale packets from before a crash or an adversarial state).
//! The protocol guarantees that, after a finite stabilization prefix,
//! messages are delivered in FIFO order without omission or duplication.
//!
//! The implementation follows the alternating-index idea over a bounded label
//! alphabet sized by the channel capacity:
//!
//! * the **sender** labels every message with the next index of the alphabet
//!   and keeps retransmitting it until it has collected **more than twice the
//!   channel capacity** acknowledgements carrying that label — since the
//!   channel holds at most `capacity` stale packets and each packet can be
//!   duplicated at most once, at least one of those acknowledgements must be
//!   fresh, which proves the receiver has *delivered* the message (the
//!   receiver acknowledges with its last delivered label, not the received
//!   one);
//! * the **receiver** delivers a message when its label is the successor of
//!   the last delivered label; if its own label state was corrupted it
//!   re-adopts the sender's label after seeing it persistently (more than
//!   `2 × capacity` times), which no combination of stale packets can fake.

use std::collections::VecDeque;

use karyon_sim::Rng;

/// Configuration of the end-to-end session and its channel error model.
#[derive(Debug, Clone)]
pub struct E2EConfig {
    /// Maximum number of packets the channel can hold in each direction.
    pub capacity: usize,
    /// Probability that a delivery attempt omits (drops) the packet.
    pub omission: f64,
    /// Probability that a delivered packet is also left in the channel once
    /// (bounded duplication).
    pub duplication: f64,
    /// Whether the channel delivers packets in random order.
    pub reorder: bool,
}

impl Default for E2EConfig {
    fn default() -> Self {
        E2EConfig { capacity: 8, omission: 0.1, duplication: 0.1, reorder: true }
    }
}

impl E2EConfig {
    /// Size of the alternating-index alphabet used for this capacity.
    pub fn alphabet(&self) -> u16 {
        (2 * self.capacity as u16).saturating_add(3)
    }

    /// Number of matching acknowledgements (at the sender) or persistent
    /// observations (at the receiver) needed to trust a label: strictly more
    /// than the maximum number of deliveries stale packets can produce.
    pub fn freshness_threshold(&self) -> usize {
        2 * self.capacity + 1
    }
}

/// A protocol packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Packet {
    /// A data packet carrying the alternating index and the message payload.
    Data {
        /// Alternating index label.
        label: u16,
        /// Message payload.
        payload: u64,
    },
    /// An acknowledgement for the given label.
    Ack {
        /// Alternating index label being acknowledged.
        label: u16,
    },
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    packet: Packet,
    duplicated: bool,
}

/// A bounded-capacity channel that omits, duplicates (at most once per
/// packet) and reorders packets.
#[derive(Debug, Clone)]
pub struct UnreliableChannel {
    in_flight: Vec<InFlight>,
    capacity: usize,
    omission: f64,
    duplication: f64,
    reorder: bool,
}

impl UnreliableChannel {
    /// Creates an empty channel with the given error model.
    pub fn new(config: &E2EConfig) -> Self {
        UnreliableChannel {
            in_flight: Vec::new(),
            capacity: config.capacity.max(1),
            omission: config.omission,
            duplication: config.duplication,
            reorder: config.reorder,
        }
    }

    /// Number of packets currently in flight.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Injects an arbitrary packet (used to model a corrupted initial state).
    pub fn inject(&mut self, packet: Packet) {
        if self.in_flight.len() < self.capacity {
            self.in_flight.push(InFlight { packet, duplicated: false });
        }
    }

    /// Sends a packet; if the channel is full the oldest packet is displaced
    /// (bounded capacity).
    pub fn send(&mut self, packet: Packet) {
        if self.in_flight.len() >= self.capacity {
            self.in_flight.remove(0);
        }
        self.in_flight.push(InFlight { packet, duplicated: false });
    }

    /// Attempts to deliver one packet, honouring omission, duplication and
    /// reordering.
    pub fn deliver(&mut self, rng: &mut Rng) -> Option<Packet> {
        if self.in_flight.is_empty() {
            return None;
        }
        let idx = if self.reorder { rng.range_usize(0, self.in_flight.len() - 1) } else { 0 };
        let entry = self.in_flight[idx];
        let duplicate = !entry.duplicated && rng.chance(self.duplication);
        if duplicate {
            self.in_flight[idx].duplicated = true;
        } else {
            self.in_flight.remove(idx);
        }
        if rng.chance(self.omission) {
            return None;
        }
        Some(entry.packet)
    }
}

/// The sending endpoint.
#[derive(Debug, Clone)]
pub struct SelfStabSender {
    label: u16,
    alphabet: u16,
    outbox: VecDeque<u64>,
    current: Option<u64>,
    acks_for_current: usize,
    ack_threshold: usize,
    messages_completed: u64,
}

impl SelfStabSender {
    /// Creates a sender for a channel with the given configuration.
    pub fn new(config: &E2EConfig) -> Self {
        SelfStabSender {
            label: 0,
            alphabet: config.alphabet(),
            outbox: VecDeque::new(),
            current: None,
            acks_for_current: 0,
            ack_threshold: config.freshness_threshold(),
            messages_completed: 0,
        }
    }

    /// Queues a message for transmission.
    pub fn enqueue(&mut self, payload: u64) {
        self.outbox.push_back(payload);
    }

    /// Number of messages fully acknowledged.
    pub fn completed(&self) -> u64 {
        self.messages_completed
    }

    /// Number of messages still waiting (including the in-flight one).
    pub fn backlog(&self) -> usize {
        self.outbox.len() + usize::from(self.current.is_some())
    }

    /// The current label (exposed for tests and diagnostics).
    pub fn label(&self) -> u16 {
        self.label
    }

    /// The packet to (re)transmit this round, if any.
    pub fn next_packet(&mut self) -> Option<Packet> {
        if self.current.is_none() {
            if let Some(next) = self.outbox.pop_front() {
                self.label = (self.label + 1) % self.alphabet;
                self.current = Some(next);
                self.acks_for_current = 0;
            }
        }
        self.current.map(|payload| Packet::Data { label: self.label, payload })
    }

    /// Processes an incoming acknowledgement.
    pub fn on_ack(&mut self, label: u16) {
        if self.current.is_some() && label == self.label {
            self.acks_for_current += 1;
            if self.acks_for_current >= self.ack_threshold {
                self.current = None;
                self.messages_completed += 1;
            }
        }
    }
}

/// The receiving endpoint.
#[derive(Debug, Clone)]
pub struct SelfStabReceiver {
    last_label: u16,
    alphabet: u16,
    adoption_threshold: usize,
    /// Count of receptions per unexpected label since the last delivery.
    adoption_counts: Vec<usize>,
    delivered: Vec<u64>,
}

impl SelfStabReceiver {
    /// Creates a receiver for a channel with the given configuration.
    pub fn new(config: &E2EConfig) -> Self {
        let alphabet = config.alphabet();
        SelfStabReceiver {
            last_label: 0,
            alphabet,
            adoption_threshold: config.freshness_threshold(),
            adoption_counts: vec![0; alphabet as usize],
            delivered: Vec::new(),
        }
    }

    /// Creates a receiver with a corrupted initial label state.
    pub fn with_corrupted_state(config: &E2EConfig, label: u16) -> Self {
        let mut r = Self::new(config);
        r.last_label = label % r.alphabet;
        r
    }

    /// All payloads delivered so far, in delivery order.
    pub fn delivered(&self) -> &[u64] {
        &self.delivered
    }

    /// The last delivered label (exposed for tests and diagnostics).
    pub fn last_label(&self) -> u16 {
        self.last_label
    }

    fn deliver(&mut self, label: u16, payload: u64) {
        self.last_label = label;
        self.delivered.push(payload);
        for c in &mut self.adoption_counts {
            *c = 0;
        }
    }

    /// Processes a data packet and returns the acknowledgement to send.
    ///
    /// The acknowledgement always carries the receiver's *last delivered*
    /// label; the sender therefore only counts acknowledgements that prove
    /// delivery, never mere reception.
    pub fn on_data(&mut self, label: u16, payload: u64) -> Packet {
        let label = label % self.alphabet;
        let expected = (self.last_label + 1) % self.alphabet;
        if label == expected {
            self.deliver(label, payload);
        } else if label != self.last_label {
            // Unexpected label: only adopt it after seeing it more often than
            // any collection of stale packets could produce (corrupted-state
            // recovery).
            let count = &mut self.adoption_counts[label as usize];
            *count += 1;
            if *count >= self.adoption_threshold {
                self.deliver(label, payload);
            }
        }
        Packet::Ack { label: self.last_label }
    }
}

/// A complete sender/receiver session over a pair of unreliable channels.
#[derive(Debug)]
pub struct EndToEndSession {
    /// The sending endpoint.
    pub sender: SelfStabSender,
    /// The receiving endpoint.
    pub receiver: SelfStabReceiver,
    forward: UnreliableChannel,
    backward: UnreliableChannel,
    config: E2EConfig,
    rng: Rng,
    rounds: u64,
}

impl EndToEndSession {
    /// Creates a session with clean (empty) channels.
    pub fn new(config: &E2EConfig, seed: u64) -> Self {
        EndToEndSession {
            sender: SelfStabSender::new(config),
            receiver: SelfStabReceiver::new(config),
            forward: UnreliableChannel::new(config),
            backward: UnreliableChannel::new(config),
            config: config.clone(),
            rng: Rng::seed_from(seed),
            rounds: 0,
        }
    }

    /// Fills both channels with arbitrary stale packets and corrupts the
    /// receiver's label state, modelling an arbitrary initial configuration.
    pub fn corrupt_initial_state(&mut self, garbage_base: u64) {
        let alphabet = self.config.alphabet();
        for i in 0..self.config.capacity {
            self.forward.inject(Packet::Data {
                label: (i as u16) % alphabet,
                payload: garbage_base + i as u64,
            });
            self.backward.inject(Packet::Ack { label: (i as u16 + 1) % alphabet });
        }
        self.receiver = SelfStabReceiver::with_corrupted_state(&self.config, alphabet / 2);
    }

    /// Number of protocol rounds executed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Executes one protocol round: the sender (re)transmits, each channel
    /// attempts one delivery, the receiver acknowledges.
    pub fn step(&mut self) {
        self.rounds += 1;
        if let Some(packet) = self.sender.next_packet() {
            self.forward.send(packet);
        }
        if let Some(Packet::Data { label, payload }) = self.forward.deliver(&mut self.rng) {
            let ack = self.receiver.on_data(label, payload);
            self.backward.send(ack);
        }
        if let Some(Packet::Ack { label }) = self.backward.deliver(&mut self.rng) {
            self.sender.on_ack(label);
        }
    }

    /// Runs `n` rounds.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Runs until the sender has no backlog or `max_rounds` is reached.
    /// Returns the number of rounds executed by this call.
    pub fn run_until_drained(&mut self, max_rounds: u64) -> u64 {
        let start = self.rounds;
        while self.sender.backlog() > 0 && self.rounds - start < max_rounds {
            self.step();
        }
        self.rounds - start
    }
}

/// Checks eventual FIFO delivery without omission or duplication: the
/// delivered sequence, restricted to application payloads (`sent`), must be a
/// contiguous suffix of `sent` whose missing prefix is at most
/// `allowed_prefix_loss` messages (the stabilization prefix); garbage values
/// not in `sent` are ignored.
pub fn eventually_fifo(sent: &[u64], delivered: &[u64], allowed_prefix_loss: usize) -> bool {
    let filtered: Vec<u64> = delivered.iter().copied().filter(|p| sent.contains(p)).collect();
    // Find the suffix of `sent` that matches.
    let skipped = sent.len().saturating_sub(filtered.len());
    if skipped > allowed_prefix_loss {
        return false;
    }
    filtered == sent[skipped..]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(config: E2EConfig, seed: u64, corrupt: bool, messages: u64) -> (Vec<u64>, Vec<u64>) {
        let mut session = EndToEndSession::new(&config, seed);
        if corrupt {
            session.corrupt_initial_state(1_000_000);
        }
        let sent: Vec<u64> = (1..=messages).collect();
        for &m in &sent {
            session.sender.enqueue(m);
        }
        session.run_until_drained(5_000_000);
        (sent, session.receiver.delivered().to_vec())
    }

    #[test]
    fn reliable_channel_delivers_everything_in_order() {
        let config = E2EConfig { capacity: 4, omission: 0.0, duplication: 0.0, reorder: false };
        let (sent, delivered) = drive(config, 1, false, 50);
        assert_eq!(delivered, sent);
    }

    #[test]
    fn lossy_duplicating_reordering_channel_still_fifo() {
        let config = E2EConfig { capacity: 8, omission: 0.25, duplication: 0.25, reorder: true };
        let (sent, delivered) = drive(config, 2, false, 100);
        assert!(eventually_fifo(&sent, &delivered, 0), "delivered {delivered:?}");
        assert_eq!(delivered.len(), sent.len());
    }

    #[test]
    fn stabilizes_from_corrupted_channel_state() {
        let config = E2EConfig { capacity: 8, omission: 0.2, duplication: 0.2, reorder: true };
        let (sent, delivered) = drive(config, 3, true, 100);
        // After a bounded stabilization prefix (here: at most 2 application
        // messages), delivery is FIFO without omission or duplication; only a
        // bounded amount of garbage from the corrupted state may appear.
        assert!(eventually_fifo(&sent, &delivered, 2), "delivered {delivered:?}");
        let garbage: Vec<u64> = delivered.iter().copied().filter(|p| !sent.contains(p)).collect();
        assert!(garbage.len() <= 8, "too much garbage delivered: {garbage:?}");
    }

    #[test]
    fn many_seeds_remain_fifo() {
        for seed in 10..20 {
            let config = E2EConfig { capacity: 4, omission: 0.3, duplication: 0.3, reorder: true };
            let (sent, delivered) = drive(config, seed, seed % 2 == 0, 40);
            assert!(eventually_fifo(&sent, &delivered, 2), "seed {seed}: {delivered:?}");
        }
    }

    #[test]
    fn sender_waits_for_more_acks_than_stale_packets_can_produce() {
        let config = E2EConfig { capacity: 4, ..Default::default() };
        let mut sender = SelfStabSender::new(&config);
        sender.enqueue(42);
        let Some(Packet::Data { label, .. }) = sender.next_packet() else { unreachable!() };
        for _ in 0..config.freshness_threshold() - 1 {
            sender.on_ack(label);
        }
        assert_eq!(sender.completed(), 0, "must not complete below the freshness threshold");
        sender.on_ack(label);
        assert_eq!(sender.completed(), 1);
        assert_eq!(sender.backlog(), 0);
    }

    #[test]
    fn acks_with_wrong_label_are_ignored() {
        let config = E2EConfig { capacity: 2, ..Default::default() };
        let mut sender = SelfStabSender::new(&config);
        sender.enqueue(1);
        let Some(Packet::Data { label, .. }) = sender.next_packet() else { unreachable!() };
        let wrong = (label + 1) % config.alphabet();
        for _ in 0..100 {
            sender.on_ack(wrong);
        }
        assert_eq!(sender.completed(), 0);
        assert_eq!(sender.label(), label);
    }

    #[test]
    fn receiver_delivers_expected_label_exactly_once() {
        let config = E2EConfig { capacity: 4, ..Default::default() };
        let mut receiver = SelfStabReceiver::new(&config);
        // expected = 1
        receiver.on_data(1, 10);
        receiver.on_data(1, 10);
        receiver.on_data(1, 10);
        receiver.on_data(2, 20);
        receiver.on_data(2, 20);
        assert_eq!(receiver.delivered(), &[10, 20]);
        assert_eq!(receiver.last_label(), 2);
    }

    #[test]
    fn receiver_ignores_stale_labels_but_adopts_persistent_ones() {
        let config = E2EConfig { capacity: 4, ..Default::default() };
        let mut receiver = SelfStabReceiver::new(&config);
        receiver.on_data(1, 10);
        assert_eq!(receiver.delivered(), &[10]);
        // A stale label (e.g. 5) delivered fewer times than the threshold is ignored.
        for _ in 0..config.freshness_threshold() - 1 {
            receiver.on_data(5, 99);
        }
        assert_eq!(receiver.delivered(), &[10]);
        // Persistently seeing it (as after label-state corruption) adopts it.
        receiver.on_data(5, 99);
        assert_eq!(receiver.delivered(), &[10, 99]);
        assert_eq!(receiver.last_label(), 5);
    }

    #[test]
    fn channel_respects_capacity_and_bounded_duplication() {
        let config = E2EConfig { capacity: 3, omission: 0.0, duplication: 0.0, reorder: false };
        let mut ch = UnreliableChannel::new(&config);
        assert!(ch.is_empty());
        for i in 0..5u16 {
            ch.send(Packet::Ack { label: i });
        }
        assert_eq!(ch.len(), 3);
        let mut rng = Rng::seed_from(1);
        // FIFO (no reorder): the oldest *surviving* packet is the one sent third.
        assert_eq!(ch.deliver(&mut rng), Some(Packet::Ack { label: 2 }));
        // Bounded duplication: with duplication probability 1 a packet is
        // delivered at most twice.
        let dup_config = E2EConfig { capacity: 3, omission: 0.0, duplication: 1.0, reorder: false };
        let mut dup = UnreliableChannel::new(&dup_config);
        dup.send(Packet::Ack { label: 7 });
        assert_eq!(dup.deliver(&mut rng), Some(Packet::Ack { label: 7 }));
        assert_eq!(dup.len(), 1, "first delivery leaves the duplicate");
        assert_eq!(dup.deliver(&mut rng), Some(Packet::Ack { label: 7 }));
        assert!(dup.is_empty(), "second delivery consumes the duplicate");
    }

    #[test]
    fn alphabet_and_threshold_scale_with_capacity() {
        let config = E2EConfig { capacity: 8, ..Default::default() };
        assert_eq!(config.alphabet(), 19);
        assert_eq!(config.freshness_threshold(), 17);
        let small = E2EConfig { capacity: 1, ..Default::default() };
        assert_eq!(small.alphabet(), 5);
        assert_eq!(small.freshness_threshold(), 3);
    }

    #[test]
    fn fifo_checker_detects_violations() {
        assert!(eventually_fifo(&[1, 2, 3], &[1, 2, 3], 0));
        assert!(eventually_fifo(&[1, 2, 3], &[99, 1, 2, 3], 0));
        assert!(eventually_fifo(&[1, 2, 3], &[2, 3], 1));
        assert!(!eventually_fifo(&[1, 2, 3], &[2, 3], 0));
        assert!(!eventually_fifo(&[1, 2, 3], &[1, 3, 2], 0));
        assert!(!eventually_fifo(&[1, 2, 3], &[1, 1, 2, 3], 0));
        assert!(!eventually_fifo(&[1, 2, 3], &[3], 1));
    }
}

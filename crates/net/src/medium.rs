//! The simulated shared wireless medium.
//!
//! The medium is slot-synchronous: in every slot each node either transmits
//! one frame on one radio channel or listens.  Reception follows the usual
//! broadcast-interference rules — a listener receives a frame iff exactly one
//! in-range node transmitted on the listener's channel, the channel is not
//! being disturbed (jammed), and the frame survives the residual loss
//! probability.  Disturbances are what creates the *network inaccessibility*
//! periods studied in §V-A1.

use std::collections::HashMap;

use karyon_sim::{Rng, SimTime, Vec2};

use crate::packet::{Frame, NodeId};

/// Static configuration of the medium.
#[derive(Debug, Clone)]
pub struct MediumConfig {
    /// Radio range in metres (nodes farther apart never hear each other).
    pub range: f64,
    /// Residual probability that an otherwise successful reception is lost.
    pub loss_probability: f64,
    /// Number of orthogonal radio channels available (≥ 1).
    pub channels: u8,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig { range: 300.0, loss_probability: 0.0, channels: 2 }
    }
}

/// An external disturbance (interference / jamming burst) on one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disturbance {
    /// Channel affected (`None` ⇒ all channels).
    pub channel: Option<u8>,
    /// Start of the disturbance.
    pub start: SimTime,
    /// End of the disturbance (exclusive).
    pub end: SimTime,
}

impl Disturbance {
    /// True when the disturbance affects `channel` at `now`.
    pub fn affects(&self, channel: u8, now: SimTime) -> bool {
        (self.channel.is_none() || self.channel == Some(channel))
            && now >= self.start
            && now < self.end
    }
}

/// A transmission attempt in the current slot.
#[derive(Debug, Clone)]
pub struct Transmission {
    /// The transmitting node.
    pub src: NodeId,
    /// The radio channel used.
    pub channel: u8,
    /// The frame being sent.
    pub frame: Frame,
}

/// The outcome of one slot at one listening node.
#[derive(Debug, Clone, PartialEq)]
pub enum Reception {
    /// Exactly one in-range transmission and it was received.
    Frame(Frame),
    /// Two or more in-range transmissions interfered.
    Collision,
    /// The channel was jammed by an external disturbance.
    Disturbed,
    /// Nothing audible this slot.
    Idle,
}

/// The result of resolving one slot over the whole medium.
#[derive(Debug, Clone, Default)]
pub struct SlotResult {
    /// Per-listener outcome (nodes that transmitted are not listed: half-duplex).
    pub outcomes: HashMap<NodeId, Reception>,
    /// Transmitters whose frame collided at at least one in-range listener.
    pub collided_transmitters: Vec<NodeId>,
}

impl SlotResult {
    /// The frames successfully received by `node` this slot (0 or 1).
    pub fn received_by(&self, node: NodeId) -> Option<&Frame> {
        match self.outcomes.get(&node) {
            Some(Reception::Frame(f)) => Some(f),
            _ => None,
        }
    }
}

/// The shared wireless medium.
#[derive(Debug, Clone)]
pub struct WirelessMedium {
    config: MediumConfig,
    positions: HashMap<NodeId, Vec2>,
    disturbances: Vec<Disturbance>,
}

impl WirelessMedium {
    /// Creates a medium with the given configuration.
    pub fn new(config: MediumConfig) -> Self {
        assert!(config.channels >= 1, "medium needs at least one channel");
        WirelessMedium { config, positions: HashMap::new(), disturbances: Vec::new() }
    }

    /// The medium configuration.
    pub fn config(&self) -> &MediumConfig {
        &self.config
    }

    /// Registers or moves a node.
    pub fn set_position(&mut self, node: NodeId, position: Vec2) {
        self.positions.insert(node, position);
    }

    /// The current position of a node, if registered.
    pub fn position(&self, node: NodeId) -> Option<Vec2> {
        self.positions.get(&node).copied()
    }

    /// Removes a node (e.g. churn in the self-stabilizing TDMA experiments).
    pub fn remove_node(&mut self, node: NodeId) {
        self.positions.remove(&node);
    }

    /// All registered nodes.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.positions.keys().copied().collect();
        v.sort();
        v
    }

    /// Adds a jamming disturbance.
    pub fn add_disturbance(&mut self, disturbance: Disturbance) {
        self.disturbances.push(disturbance);
    }

    /// Generates a random sequence of disturbance bursts on `channel` over
    /// `[0, horizon)`: bursts arrive as a Poisson process with the given mean
    /// inter-arrival time and have exponentially distributed durations.
    pub fn add_random_disturbances(
        &mut self,
        channel: Option<u8>,
        horizon: SimTime,
        mean_interarrival: karyon_sim::SimDuration,
        mean_duration: karyon_sim::SimDuration,
        rng: &mut Rng,
    ) -> usize {
        let mut t = 0.0;
        let mut count = 0;
        loop {
            t += rng.exponential(mean_interarrival.as_secs_f64());
            if t >= horizon.as_secs_f64() {
                break;
            }
            let d = rng.exponential(mean_duration.as_secs_f64()).max(1e-4);
            self.add_disturbance(Disturbance {
                channel,
                start: SimTime::from_secs_f64(t),
                end: SimTime::from_secs_f64(t + d),
            });
            count += 1;
        }
        count
    }

    /// True when `channel` is affected by a disturbance at `now`
    /// (what a carrier-sensing node observes as a persistently busy medium).
    pub fn is_disturbed(&self, channel: u8, now: SimTime) -> bool {
        self.disturbances.iter().any(|d| d.affects(channel, now))
    }

    /// True when `a` and `b` are within radio range of each other.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        match (self.positions.get(&a), self.positions.get(&b)) {
            (Some(pa), Some(pb)) => pa.distance(*pb) <= self.config.range,
            _ => false,
        }
    }

    /// The registered nodes within range of `node` (excluding itself).
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .positions
            .keys()
            .copied()
            .filter(|n| *n != node && self.in_range(node, *n))
            .collect();
        v.sort();
        v
    }

    /// Resolves one slot: given all transmission attempts, computes what each
    /// listening node hears.
    pub fn resolve_slot(
        &self,
        transmissions: &[Transmission],
        now: SimTime,
        rng: &mut Rng,
    ) -> SlotResult {
        let mut result = SlotResult::default();
        let transmitters: Vec<NodeId> = transmissions.iter().map(|t| t.src).collect();

        for &listener in self.positions.keys() {
            if transmitters.contains(&listener) {
                continue; // half-duplex: a transmitting node hears nothing
            }
            // Determine the listener's channel: a listener hears its own
            // configured channel; we resolve per channel and report the
            // strongest condition.  The MAC simulation passes the listener's
            // channel through `listen_channels`; here we compute outcomes for
            // every channel and let the caller pick — to keep the API simple
            // we instead record the outcome on each channel where something
            // happened, preferring the lowest channel with activity.
            // In practice the MAC simulation queries `outcome_for` below.
            let outcome = self.outcome_for(listener, 0, transmissions, now, rng);
            result.outcomes.insert(listener, outcome);
        }

        // A transmitter "collided" when another in-range node transmitted on
        // the same channel in the same slot (its frame is lost at common
        // listeners).
        for tx in transmissions {
            let clashed = transmissions.iter().any(|other| {
                other.src != tx.src
                    && other.channel == tx.channel
                    && self.in_range(tx.src, other.src)
            });
            if clashed {
                result.collided_transmitters.push(tx.src);
            }
        }
        result
    }

    /// Computes what `listener`, tuned to `channel`, hears in a slot with the
    /// given transmissions.
    pub fn outcome_for(
        &self,
        listener: NodeId,
        channel: u8,
        transmissions: &[Transmission],
        now: SimTime,
        rng: &mut Rng,
    ) -> Reception {
        if self.is_disturbed(channel, now) {
            return Reception::Disturbed;
        }
        let audible: Vec<&Transmission> = transmissions
            .iter()
            .filter(|t| t.channel == channel && t.src != listener && self.in_range(listener, t.src))
            .collect();
        match audible.len() {
            0 => Reception::Idle,
            1 => {
                if rng.chance(self.config.loss_probability) {
                    Reception::Idle
                } else {
                    Reception::Frame(audible[0].frame.clone())
                }
            }
            _ => Reception::Collision,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon_sim::SimDuration;

    fn medium_with(nodes: &[(u32, f64, f64)], range: f64) -> WirelessMedium {
        let mut m = WirelessMedium::new(MediumConfig { range, loss_probability: 0.0, channels: 2 });
        for (id, x, y) in nodes {
            m.set_position(NodeId(*id), Vec2::new(*x, *y));
        }
        m
    }

    fn tx(src: u32, channel: u8) -> Transmission {
        Transmission {
            src: NodeId(src),
            channel,
            frame: Frame::broadcast(NodeId(src), 0, SimTime::ZERO, vec![src as u8]),
        }
    }

    #[test]
    fn range_and_neighbors() {
        let m = medium_with(&[(1, 0.0, 0.0), (2, 100.0, 0.0), (3, 500.0, 0.0)], 200.0);
        assert!(m.in_range(NodeId(1), NodeId(2)));
        assert!(!m.in_range(NodeId(1), NodeId(3)));
        assert_eq!(m.neighbors(NodeId(1)), vec![NodeId(2)]);
        assert_eq!(m.neighbors(NodeId(3)), Vec::<NodeId>::new());
        assert_eq!(m.nodes().len(), 3);
        assert!(m.position(NodeId(1)).is_some());
        assert!(!m.in_range(NodeId(1), NodeId(99)));
    }

    #[test]
    fn single_transmission_is_received() {
        let m = medium_with(&[(1, 0.0, 0.0), (2, 50.0, 0.0)], 200.0);
        let mut rng = Rng::seed_from(1);
        let out = m.outcome_for(NodeId(2), 0, &[tx(1, 0)], SimTime::ZERO, &mut rng);
        assert!(matches!(out, Reception::Frame(f) if f.src == NodeId(1)));
    }

    #[test]
    fn two_transmissions_collide() {
        let m = medium_with(&[(1, 0.0, 0.0), (2, 50.0, 0.0), (3, 100.0, 0.0)], 200.0);
        let mut rng = Rng::seed_from(2);
        let txs = [tx(1, 0), tx(3, 0)];
        assert_eq!(
            m.outcome_for(NodeId(2), 0, &txs, SimTime::ZERO, &mut rng),
            Reception::Collision
        );
        let slot = m.resolve_slot(&txs, SimTime::ZERO, &mut rng);
        assert!(slot.collided_transmitters.contains(&NodeId(1)));
        assert!(slot.collided_transmitters.contains(&NodeId(3)));
        assert!(slot.received_by(NodeId(2)).is_none());
    }

    #[test]
    fn different_channels_do_not_collide() {
        let m = medium_with(&[(1, 0.0, 0.0), (2, 50.0, 0.0), (3, 100.0, 0.0)], 200.0);
        let mut rng = Rng::seed_from(3);
        let txs = [tx(1, 0), tx(3, 1)];
        assert!(matches!(
            m.outcome_for(NodeId(2), 0, &txs, SimTime::ZERO, &mut rng),
            Reception::Frame(_)
        ));
        assert!(matches!(
            m.outcome_for(NodeId(2), 1, &txs, SimTime::ZERO, &mut rng),
            Reception::Frame(_)
        ));
        let slot = m.resolve_slot(&txs, SimTime::ZERO, &mut rng);
        assert!(slot.collided_transmitters.is_empty());
    }

    #[test]
    fn out_of_range_transmitter_is_not_heard() {
        let m = medium_with(&[(1, 0.0, 0.0), (2, 1_000.0, 0.0)], 200.0);
        let mut rng = Rng::seed_from(4);
        assert_eq!(
            m.outcome_for(NodeId(2), 0, &[tx(1, 0)], SimTime::ZERO, &mut rng),
            Reception::Idle
        );
    }

    #[test]
    fn disturbance_jams_channel() {
        let mut m = medium_with(&[(1, 0.0, 0.0), (2, 50.0, 0.0)], 200.0);
        m.add_disturbance(Disturbance {
            channel: Some(0),
            start: SimTime::from_secs(1),
            end: SimTime::from_secs(2),
        });
        let mut rng = Rng::seed_from(5);
        assert!(m.is_disturbed(0, SimTime::from_millis(1_500)));
        assert!(!m.is_disturbed(1, SimTime::from_millis(1_500)));
        assert!(!m.is_disturbed(0, SimTime::from_millis(500)));
        let out = m.outcome_for(NodeId(2), 0, &[tx(1, 0)], SimTime::from_millis(1_500), &mut rng);
        assert_eq!(out, Reception::Disturbed);
        // Other channel still works.
        let out = m.outcome_for(NodeId(2), 1, &[tx(1, 1)], SimTime::from_millis(1_500), &mut rng);
        assert!(matches!(out, Reception::Frame(_)));
    }

    #[test]
    fn all_channel_disturbance() {
        let d = Disturbance { channel: None, start: SimTime::ZERO, end: SimTime::from_secs(1) };
        assert!(d.affects(0, SimTime::from_millis(10)));
        assert!(d.affects(7, SimTime::from_millis(10)));
        assert!(!d.affects(0, SimTime::from_secs(1)));
    }

    #[test]
    fn residual_loss_probability_drops_frames() {
        let mut m = medium_with(&[(1, 0.0, 0.0), (2, 50.0, 0.0)], 200.0);
        m.config.loss_probability = 0.5;
        let mut rng = Rng::seed_from(6);
        let mut lost = 0;
        for _ in 0..2_000 {
            if matches!(
                m.outcome_for(NodeId(2), 0, &[tx(1, 0)], SimTime::ZERO, &mut rng),
                Reception::Idle
            ) {
                lost += 1;
            }
        }
        assert!((800..1_200).contains(&lost), "lost {lost}");
    }

    #[test]
    fn random_disturbances_are_generated_deterministically() {
        let mut m1 = medium_with(&[(1, 0.0, 0.0)], 100.0);
        let mut m2 = medium_with(&[(1, 0.0, 0.0)], 100.0);
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        let c1 = m1.add_random_disturbances(
            Some(0),
            SimTime::from_secs(60),
            SimDuration::from_secs(5),
            SimDuration::from_millis(500),
            &mut r1,
        );
        let c2 = m2.add_random_disturbances(
            Some(0),
            SimTime::from_secs(60),
            SimDuration::from_secs(5),
            SimDuration::from_millis(500),
            &mut r2,
        );
        assert_eq!(c1, c2);
        assert!(c1 > 3, "expected several bursts, got {c1}");
        assert_eq!(m1.disturbances, m2.disturbances);
    }

    #[test]
    fn half_duplex_transmitter_hears_nothing() {
        let m = medium_with(&[(1, 0.0, 0.0), (2, 50.0, 0.0)], 200.0);
        let mut rng = Rng::seed_from(8);
        let slot = m.resolve_slot(&[tx(1, 0), tx(2, 0)], SimTime::ZERO, &mut rng);
        assert!(!slot.outcomes.contains_key(&NodeId(1)));
        assert!(!slot.outcomes.contains_key(&NodeId(2)));
    }

    #[test]
    fn remove_node_forgets_position() {
        let mut m = medium_with(&[(1, 0.0, 0.0), (2, 10.0, 0.0)], 100.0);
        m.remove_node(NodeId(2));
        assert_eq!(m.nodes(), vec![NodeId(1)]);
        assert!(!m.in_range(NodeId(1), NodeId(2)));
    }
}

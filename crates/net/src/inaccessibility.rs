//! Network-inaccessibility accounting (paper §V-A1).
//!
//! "Disturbances induced in the operation of MAC protocols may create
//! temporary partitions in the network … These temporary network partitions
//! are called periods of network inaccessibility."  The tracker below turns a
//! per-slot "could the node access the medium?" observation into a list of
//! inaccessibility periods and summary statistics, which is exactly what the
//! R2T-MAC mediator layer needs in order to control (bound) them.

use karyon_sim::{Histogram, SimDuration, SimTime};

/// One period during which the medium could not be accessed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InaccessibilityPeriod {
    /// When the period started.
    pub start: SimTime,
    /// How long it lasted.
    pub duration: SimDuration,
}

/// Tracks periods of network inaccessibility from per-slot observations.
#[derive(Debug, Clone, Default)]
pub struct InaccessibilityTracker {
    current_start: Option<SimTime>,
    periods: Vec<InaccessibilityPeriod>,
}

impl InaccessibilityTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation: was the medium inaccessible at `now`?
    pub fn observe(&mut self, inaccessible: bool, now: SimTime) {
        match (inaccessible, self.current_start) {
            (true, None) => self.current_start = Some(now),
            (false, Some(start)) => {
                self.periods.push(InaccessibilityPeriod { start, duration: now.since(start) });
                self.current_start = None;
            }
            _ => {}
        }
    }

    /// Closes any open period at the end of the observation window.
    pub fn finish(&mut self, now: SimTime) {
        if let Some(start) = self.current_start.take() {
            self.periods.push(InaccessibilityPeriod { start, duration: now.since(start) });
        }
    }

    /// True while an inaccessibility period is ongoing.
    pub fn is_inaccessible(&self) -> bool {
        self.current_start.is_some()
    }

    /// All closed periods.
    pub fn periods(&self) -> &[InaccessibilityPeriod] {
        &self.periods
    }

    /// Number of closed periods.
    pub fn count(&self) -> usize {
        self.periods.len()
    }

    /// Total inaccessible time across all closed periods.
    pub fn total(&self) -> SimDuration {
        self.periods.iter().fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// Longest single period, or zero if none.
    pub fn longest(&self) -> SimDuration {
        self.periods.iter().map(|p| p.duration).fold(SimDuration::ZERO, SimDuration::max)
    }

    /// A histogram of period durations in milliseconds.
    pub fn duration_histogram(&self) -> Histogram {
        let mut h = Histogram::new();
        for p in &self.periods {
            h.record(p.duration.as_secs_f64() * 1e3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_single_period() {
        let mut t = InaccessibilityTracker::new();
        t.observe(false, SimTime::from_millis(0));
        t.observe(true, SimTime::from_millis(10));
        assert!(t.is_inaccessible());
        t.observe(true, SimTime::from_millis(20));
        t.observe(false, SimTime::from_millis(30));
        assert!(!t.is_inaccessible());
        assert_eq!(t.count(), 1);
        assert_eq!(t.periods()[0].start, SimTime::from_millis(10));
        assert_eq!(t.periods()[0].duration, SimDuration::from_millis(20));
        assert_eq!(t.total(), SimDuration::from_millis(20));
        assert_eq!(t.longest(), SimDuration::from_millis(20));
    }

    #[test]
    fn finish_closes_open_period() {
        let mut t = InaccessibilityTracker::new();
        t.observe(true, SimTime::from_millis(100));
        t.finish(SimTime::from_millis(250));
        assert_eq!(t.count(), 1);
        assert_eq!(t.longest(), SimDuration::from_millis(150));
        // Finishing again is a no-op.
        t.finish(SimTime::from_millis(300));
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn multiple_periods_and_histogram() {
        let mut t = InaccessibilityTracker::new();
        let pattern = [
            (0u64, false),
            (10, true),
            (20, false),
            (30, true),
            (60, false),
            (70, true),
            (75, false),
        ];
        for (ms, inacc) in pattern {
            t.observe(inacc, SimTime::from_millis(ms));
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.total(), SimDuration::from_millis(10 + 30 + 5));
        assert_eq!(t.longest(), SimDuration::from_millis(30));
        let mut h = t.duration_histogram();
        assert_eq!(h.count(), 3);
        assert!((h.max() - 30.0).abs() < 1e-9);
        assert!((h.quantile(0.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn no_periods_is_all_zero() {
        let t = InaccessibilityTracker::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.total(), SimDuration::ZERO);
        assert_eq!(t.longest(), SimDuration::ZERO);
        assert!(!t.is_inaccessible());
    }
}

//! Frames, node identifiers and addressing.

use karyon_sim::SimTime;

/// Identifier of a network node (one per vehicle / roadside unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// All nodes in radio range.
    Broadcast,
    /// A single node (still physically overheard by neighbours, but filtered).
    Unicast(NodeId),
}

impl Destination {
    /// True when `node` should accept a frame with this destination.
    pub fn accepts(&self, node: NodeId) -> bool {
        match self {
            Destination::Broadcast => true,
            Destination::Unicast(target) => *target == node,
        }
    }
}

/// Well-known "ports" multiplexing upper-layer users of the MAC.
pub mod ports {
    /// Application data frames.
    pub const DATA: u16 = 0;
    /// MAC-level beacons (slot occupancy reports, membership heartbeats).
    pub const BEACON: u16 = 1;
    /// Cooperation / agreement protocol messages.
    pub const COOPERATION: u16 = 2;
    /// Middleware event dissemination.
    pub const MIDDLEWARE: u16 = 3;
}

/// A link-layer frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Sending node.
    pub src: NodeId,
    /// Destination (broadcast or unicast).
    pub dst: Destination,
    /// Per-sender sequence number.
    pub seq: u64,
    /// Creation time at the sender (used to measure delivery delay).
    pub created: SimTime,
    /// Upper-layer multiplexing port (see [`ports`]).
    pub port: u16,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Creates a broadcast data frame.
    pub fn broadcast(src: NodeId, seq: u64, created: SimTime, payload: Vec<u8>) -> Self {
        Frame { src, dst: Destination::Broadcast, seq, created, port: ports::DATA, payload }
    }

    /// Creates a unicast data frame.
    pub fn unicast(src: NodeId, dst: NodeId, seq: u64, created: SimTime, payload: Vec<u8>) -> Self {
        Frame { src, dst: Destination::Unicast(dst), seq, created, port: ports::DATA, payload }
    }

    /// Returns a copy of this frame with a different port.
    pub fn with_port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Delivery delay of this frame if it is received at `now`.
    pub fn delay_at(&self, now: SimTime) -> karyon_sim::SimDuration {
        now.since(self.created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn destination_accepts() {
        let a = NodeId(1);
        let b = NodeId(2);
        assert!(Destination::Broadcast.accepts(a));
        assert!(Destination::Broadcast.accepts(b));
        assert!(Destination::Unicast(a).accepts(a));
        assert!(!Destination::Unicast(a).accepts(b));
    }

    #[test]
    fn frame_constructors() {
        let f = Frame::broadcast(NodeId(3), 7, SimTime::from_millis(10), vec![1, 2]);
        assert_eq!(f.dst, Destination::Broadcast);
        assert_eq!(f.port, ports::DATA);
        assert_eq!(f.delay_at(SimTime::from_millis(25)).as_millis(), 15);
        let u =
            Frame::unicast(NodeId(3), NodeId(4), 8, SimTime::ZERO, vec![]).with_port(ports::BEACON);
        assert_eq!(u.dst, Destination::Unicast(NodeId(4)));
        assert_eq!(u.port, ports::BEACON);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(format!("{}", NodeId(12)), "n12");
    }
}

//! End-to-end campaign orchestration demo.
//!
//! Declares a mixed fault-injection campaign over four scenario families —
//! the randomized platoon fault campaign (generalising bench e15), the
//! intersection with a mid-run infrastructure-light failure, the
//! event-channel QoS stack, and the core-layer safety-kernel latency family
//! (the promoted e14 body) — expands it into 230 runs, executes it twice
//! (single-threaded and on all cores, with a deliberately small canonical
//! chunk size so several chunk merges happen), verifies the two reports are
//! **bit-identical**, streams every raw record through a JSONL sink, and
//! prints the aggregates as tables and JSON.
//!
//! Run with: `cargo run --release --example campaign`

use std::time::Instant;

use karyon::scenario::{builtin_registry, Campaign, CampaignEntry, JsonlRunWriter, ParamGrid};
use karyon::sim::SimDuration;

fn build_campaign() -> Campaign {
    Campaign::new("mixed-fault-campaign", 2_026)
        // A small canonical chunk so this demo exercises the chunked
        // aggregation path (230 runs → 15 chunk merges); real campaigns
        // keep the 4096-run default.
        .with_chunk_size(16)
        // 1. Randomized sensor-fault + V2V-outage injection into the platoon,
        //    per control strategy (the e15 experiment, 30 seeds per strategy).
        .entry(
            CampaignEntry::new("platoon-fault")
                .grid(ParamGrid::new().axis("mode", ["kernel", "los2", "los0"]))
                .replications(30)
                .duration(SimDuration::from_secs(140)),
        )
        // 2. Intersection crossing while the infrastructure light fails for
        //    the middle third of the run: VTL fallback vs. uncoordinated.
        .entry(
            CampaignEntry::new("intersection")
                .grid(
                    ParamGrid::new()
                        .axis("fallback", ["vtl", "uncoordinated"])
                        .axis("light_fail", [true]),
                )
                .replications(30)
                .duration(SimDuration::from_secs(300)),
        )
        // 3. Event-channel QoS under nominal and degrading wireless capability
        //    (also exercises the engine's causality-clamp accounting).
        .entry(
            CampaignEntry::new("middleware-qos")
                .grid(ParamGrid::new().axis("degrade", [false, true]))
                .replications(30)
                .duration(SimDuration::from_secs(60)),
        )
        // 4. A core-layer scenario: safety-kernel evaluation with a growing
        //    rule set (the promoted e14 body) — the campaign sweeps a knob
        //    the bench harness used to hard-code.
        .entry(
            CampaignEntry::new("kernel-latency")
                .grid(ParamGrid::new().axis("rules_per_level", [8, 32]).axis("cycles", [2_000]))
                .replications(10),
        )
}

fn main() {
    let registry = builtin_registry();
    let campaign = build_campaign();
    println!(
        "campaign {:?}: {} runs across {} scenario families\n",
        "mixed-fault-campaign",
        campaign.run_count(),
        campaign.entries().len()
    );

    // Reference execution on one worker, then the parallel execution with a
    // JSONL sink capturing every raw record in canonical run order.
    let t0 = Instant::now();
    let serial = campaign.clone().with_threads(1).run(&registry).expect("builtin families");
    let serial_elapsed = t0.elapsed();
    let mut jsonl = JsonlRunWriter::new(Vec::new());
    let t1 = Instant::now();
    let parallel = campaign.run_with_sink(&registry, &mut jsonl).expect("builtin families");
    let parallel_elapsed = t1.elapsed();

    // The determinism contract of the runner: same campaign seed and chunk
    // size ⇒ the same report, bit for bit, regardless of worker count.
    assert_eq!(serial, parallel, "reports must not depend on the worker count");
    assert_eq!(serial.to_json(), parallel.to_json());
    println!(
        "determinism check: 1-thread and N-thread aggregates are bit-identical \
         ({} runs, serial {:.2?}, parallel {:.2?})\n",
        parallel.total_runs, serial_elapsed, parallel_elapsed
    );
    assert_eq!(jsonl.written(), parallel.total_runs);
    let artifact = jsonl.finish().expect("in-memory writes cannot fail");
    println!(
        "per-run artifact stream: {} JSONL lines, {} bytes (aggregation itself retained no \
         records)\n",
        parallel.total_runs,
        artifact.len()
    );

    // Clamp audit (ROADMAP): no builtin model relies on past-time schedule
    // clamping — every run of this campaign must be causality-clean.
    assert_eq!(parallel.suspect_runs(), 0, "no model may schedule into the past");

    // Aligned-text views: the headline safety metrics per family.
    parallel.metric_table("collision").print();
    parallel.metric_table("conflicts").print();
    parallel.metric_table("delivery_ratio").print();
    parallel.metric_table("worst_case_reaction_ms").print();
    parallel.summary_table().print();
    println!("causality-suspect runs (past-time schedule clamps): {}", parallel.suspect_runs());

    // Structured output for downstream tooling.
    println!("\n--- JSON report ---");
    println!("{}", parallel.to_json());
}

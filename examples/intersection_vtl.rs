//! Intersection crossing with a failing traffic light and the virtual
//! traffic-light fallback (use case A2).
//!
//! Run with: `cargo run --example intersection_vtl`

use karyon::sim::{SimDuration, SimTime, Table};
use karyon::vehicles::{run_intersection, FallbackMode, IntersectionConfig};

fn main() {
    let failure = Some((SimTime::from_secs(120), SimTime::from_secs(480)));
    let cases = [
        ("infrastructure light healthy", None, FallbackMode::VirtualTrafficLight),
        ("failure + virtual traffic light", failure, FallbackMode::VirtualTrafficLight),
        ("failure + uncoordinated drivers", failure, FallbackMode::Uncoordinated),
    ];
    let mut table = Table::new(
        "Intersection, 12 vehicles/min/approach, light fails 120-480 s",
        &[
            "scenario",
            "conflicts",
            "throughput [veh/min]",
            "mean wait [s]",
            "uncontrolled time [%]",
        ],
    );
    for (name, light_failure, fallback) in cases {
        let result = run_intersection(&IntersectionConfig {
            arrivals_per_minute: 12.0,
            duration: SimDuration::from_secs(600),
            light_failure,
            fallback,
            seed: 3,
        });
        table.add_row(&[
            name.to_string(),
            result.conflicts.to_string(),
            format!("{:.2}", result.throughput_per_minute),
            format!("{:.1}", result.mean_wait),
            format!("{:.1}", result.uncontrolled_fraction * 100.0),
        ]);
    }
    table.print();
    println!(
        "The virtual traffic light — a replicated state machine hosted by the vehicles at the\n\
         intersection (a virtual stationary automaton) — takes over within the I-am-alive timeout\n\
         and keeps the crossing conflict-free without any roadside infrastructure."
    );
}

//! Highway platooning with the KARYON safety kernel (use case A1).
//!
//! Runs the same platoon three times — kernel-controlled, always-cooperative
//! and always-conservative — through a V2V outage, and prints the safety and
//! throughput figures side by side.
//!
//! Run with: `cargo run --example highway_platoon`

use karyon::core::LevelOfService;
use karyon::sim::{SimDuration, SimTime, Table};
use karyon::vehicles::{run_platoon, ControlMode, PlatoonConfig, V2VModel};

fn main() {
    let v2v = V2VModel {
        loss: 0.05,
        outages: vec![(SimTime::from_secs(40), SimTime::from_secs(90))],
        ..Default::default()
    };
    let modes = [
        ("KARYON safety kernel", ControlMode::SafetyKernel),
        ("always cooperative", ControlMode::FixedLos(LevelOfService(2))),
        ("always conservative", ControlMode::FixedLos(LevelOfService(0))),
    ];

    let mut table = Table::new(
        "Highway platoon through a 50 s V2V outage (6 vehicles, 150 s)",
        &[
            "control",
            "collisions",
            "hazard steps",
            "min time gap [s]",
            "throughput [veh/h]",
            "LoS switches",
        ],
    );
    for (name, mode) in modes {
        let result = run_platoon(&PlatoonConfig {
            vehicles: 6,
            duration: SimDuration::from_secs(150),
            mode,
            v2v: v2v.clone(),
            lead_braking: 5.0,
            seed: 7,
            ..Default::default()
        });
        table.add_row(&[
            name.to_string(),
            result.collisions.to_string(),
            result.hazard_steps.to_string(),
            format!("{:.2}", result.min_time_gap),
            format!("{:.0}", result.throughput_veh_per_hour),
            result.los_switches.to_string(),
        ]);
    }
    table.print();
    println!(
        "The kernel-controlled platoon degrades its Level of Service during the outage (larger\n\
         time margin) and recovers afterwards — the performance/safety trade-off of paper Fig. 1."
    );
}

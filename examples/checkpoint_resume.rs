//! Checkpoint & resume demo: a campaign is preempted twice and still
//! produces a report byte-identical to an uninterrupted run.
//!
//! The flow mirrors what the `karyon-campaign` CLI automates — run with a
//! bounded work slice (a stand-in for a kill or a preempted instance),
//! recover the JSONL artifact stream with `truncate_jsonl`, resume from the
//! checkpoint manifest with a *different* worker count, and compare bytes at
//! the end.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use std::fs;
use std::io::Write as _;

use karyon::scenario::{
    builtin_registry, truncate_jsonl, Campaign, CampaignEntry, CampaignOutcome, CheckpointManifest,
    Checkpointer, JsonlRunWriter, ParamGrid,
};

fn build_campaign() -> Campaign {
    // Small chunks so the demo interrupts mid-campaign several times.
    Campaign::new("resumable-demo", 4_001)
        .with_chunk_size(8)
        .entry(
            CampaignEntry::new("lane-change")
                .grid(ParamGrid::new().axis("coordination", ["agreement", "none"]))
                .replications(24)
                .duration_secs(45),
        )
        .entry(
            CampaignEntry::new("middleware-qos")
                .grid(ParamGrid::new().axis("degrade", [false, true]))
                .replications(16)
                .duration_secs(20),
        )
}

fn main() {
    let registry = builtin_registry();
    let dir = std::env::temp_dir().join(format!("karyon-resume-demo-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir is writable");
    let ckpt_path = dir.join("campaign.ckpt.json");
    let jsonl_path = dir.join("runs.jsonl");

    // The reference: one uninterrupted run, JSONL captured in memory.
    let reference_campaign = build_campaign();
    let mut reference_jsonl = JsonlRunWriter::new(Vec::new());
    let reference = reference_campaign
        .run_with_sink(&registry, &mut reference_jsonl)
        .expect("builtin families");
    let reference_bytes = reference_jsonl.finish().expect("in-memory writes cannot fail");
    println!(
        "reference: {} runs over {} chunks, uninterrupted\n",
        reference.total_runs,
        reference_campaign.canonical_chunks()
    );

    // --- Session 1: preempted after 3 chunks. ---------------------------
    let campaign = build_campaign().with_threads(4);
    let mut jsonl = JsonlRunWriter::new(fs::File::create(&jsonl_path).unwrap());
    let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(3);
    let (outcome, _) =
        campaign.run_checkpointed(&registry, &mut ckpt, Some(&mut jsonl)).expect("session 1 runs");
    let CampaignOutcome::Interrupted { chunks_done, runs_done } = outcome else {
        panic!("session 1 was bounded to 3 chunks");
    };
    println!("session 1 (4 workers): preempted at chunk {chunks_done} ({runs_done} runs on disk)");

    // Simulate the kill arriving mid-write: a torn line trails the stream.
    let mut torn = fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap();
    write!(torn, "{{\"run\":999,\"scen").unwrap();
    drop(torn);

    // --- Crash recovery + session 2: preempted again after 4 chunks. ----
    let manifest = CheckpointManifest::load(&ckpt_path).expect("manifest survived the kill");
    truncate_jsonl(&jsonl_path, manifest.runs_done).expect("stream covers the watermark");
    let campaign = build_campaign().with_threads(2);
    let mut jsonl =
        JsonlRunWriter::new(fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap());
    let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(4);
    let (outcome, _) =
        campaign.resume(&registry, &mut ckpt, Some(&mut jsonl)).expect("session 2 resumes");
    let CampaignOutcome::Interrupted { chunks_done, runs_done } = outcome else {
        panic!("session 2 was bounded to 4 more chunks");
    };
    println!("session 2 (2 workers): preempted at chunk {chunks_done} ({runs_done} runs on disk)");

    // --- Session 3: runs to completion. ---------------------------------
    let campaign = build_campaign().with_threads(1);
    let mut jsonl =
        JsonlRunWriter::new(fs::OpenOptions::new().append(true).open(&jsonl_path).unwrap());
    let mut ckpt = Checkpointer::new(&ckpt_path);
    let (outcome, stats) =
        campaign.resume(&registry, &mut ckpt, Some(&mut jsonl)).expect("session 3 resumes");
    jsonl.finish().expect("stream closes cleanly");
    let resumed = outcome.into_report().expect("session 3 completes");
    println!("session 3 (1 worker): finished the remaining {} chunks\n", stats.chunks);

    // The determinism contract, now across three sessions, two preemptions,
    // a torn stream and three different worker counts:
    assert_eq!(resumed, reference, "reports must be bit-identical");
    assert_eq!(resumed.to_json(), reference.to_json(), "JSON must be byte-identical");
    let stitched = fs::read(&jsonl_path).unwrap();
    assert_eq!(stitched, reference_bytes, "the JSONL stream must be byte-identical");
    println!(
        "determinism check: report, JSON and the {}-line JSONL stream are byte-identical \
         to the uninterrupted run",
        resumed.total_runs
    );

    resumed.metric_table("completed").print();
    fs::remove_dir_all(&dir).ok();
}

//! Avionics: an RPV resolving the three aerial encounter scenarios with
//! collaborative and non-collaborative traffic (use case B).
//!
//! Run with: `cargo run --example avionics_rpv`

use karyon::sim::Table;
use karyon::vehicles::{
    run_encounter, AerialScenario, AvionicsConfig, TrafficType, HORIZONTAL_MINIMUM,
    VERTICAL_MINIMUM,
};

fn main() {
    println!(
        "Separation minima: {:.1} km lateral / {:.0} m vertical\n",
        HORIZONTAL_MINIMUM / 1_000.0,
        VERTICAL_MINIMUM
    );
    let scenarios = [
        ("common trajectory, same direction", AerialScenario::SameDirection),
        ("leveled crossing trajectories", AerialScenario::LeveledCrossing),
        ("flight-level change", AerialScenario::FlightLevelChange),
    ];
    let mut table = Table::new(
        "RPV encounters (conflict resolution enabled)",
        &[
            "scenario",
            "traffic",
            "conflict detected at [s]",
            "min horizontal sep [km]",
            "min vertical sep [m]",
            "violation [s]",
        ],
    );
    for (name, scenario) in scenarios {
        for (traffic_name, traffic) in [
            ("collaborative", TrafficType::Collaborative),
            ("non-collaborative", TrafficType::NonCollaborative),
        ] {
            let result = run_encounter(&AvionicsConfig {
                scenario,
                traffic,
                resolution_enabled: true,
                seed: 11,
                ..Default::default()
            });
            table.add_row(&[
                name.to_string(),
                traffic_name.to_string(),
                result.detected_at.map(|t| format!("{t:.0}")).unwrap_or_else(|| "never".into()),
                if result.min_horizontal_separation == f64::MAX {
                    "-".into()
                } else {
                    format!("{:.1}", result.min_horizontal_separation / 1_000.0)
                },
                if result.min_vertical_separation == f64::MAX {
                    "-".into()
                } else {
                    format!("{:.0}", result.min_vertical_separation)
                },
                format!("{:.0}", result.violation_seconds),
            ]);
        }
    }
    table.print();
    println!(
        "Collaborative (ADS-B grade) traffic is detected early and resolved with wide margins;\n\
         non-collaborative traffic (coarse, sporadic voice position reports) is detected later and\n\
         with smaller margins — the reason the paper treats collaborative position dissemination as\n\
         a prerequisite for integrating RPVs into shared airspace."
    );
}

//! Quickstart: build a safety kernel, feed it run-time safety information and
//! watch it select the Level of Service.
//!
//! Run with: `cargo run --example quickstart`

use karyon::core::los::Asil;
use karyon::core::{
    Condition, DesignTimeSafetyInfo, Hazard, HazardAnalysis, LevelOfService, LosSpec, SafetyKernel,
    SafetyRule,
};
use karyon::sensors::Validity;
use karyon::sim::{SimDuration, SimTime};

fn main() {
    // 1. Design time: hazard analysis and per-LoS safety rules.
    let mut hazards = HazardAnalysis::new();
    hazards.add(Hazard::new(
        "H1-rear-end",
        "rear-end collision with the preceding vehicle",
        Asil::C,
        SimDuration::from_millis(600),
    ));
    let design = DesignTimeSafetyInfo::new(
        "adaptive-cruise-control",
        vec![
            LosSpec {
                level: LevelOfService(0),
                description: "autonomous sensors only (1.8 s time margin)".into(),
                rules: vec![],
                asil: Asil::QM,
                performance_index: 1.0,
            },
            LosSpec {
                level: LevelOfService(1),
                description: "cooperative awareness (1.2 s time margin)".into(),
                rules: vec![SafetyRule::new(
                    "R1-range-validity",
                    Condition::MinValidity { item: "front-range".into(), threshold: 0.5 },
                )],
                asil: Asil::B,
                performance_index: 2.0,
            },
            LosSpec {
                level: LevelOfService(2),
                description: "fully cooperative CACC (0.6 s time margin)".into(),
                rules: vec![
                    SafetyRule::new(
                        "R2-v2v-health",
                        Condition::ComponentHealthy { component: "v2v-radio".into() },
                    ),
                    SafetyRule::new(
                        "R3-v2v-freshness",
                        Condition::MaxAge {
                            item: "lead-state".into(),
                            bound: SimDuration::from_millis(300),
                        },
                    ),
                ],
                asil: Asil::C,
                performance_index: 3.0,
            },
        ],
        hazards,
        SimDuration::from_millis(50),
    );

    // 2. Run time: the kernel evaluates the rules every 100 ms.
    let mut kernel = SafetyKernel::new(design, SimDuration::from_millis(100));
    println!("worst-case reaction: {}", kernel.worst_case_reaction());

    // Healthy situation: everything fresh and valid -> highest LoS.
    let t0 = SimTime::from_millis(100);
    kernel.info_mut().update_data("front-range", 42.0, Validity::new(0.95), t0);
    kernel.info_mut().update_health("v2v-radio", true, t0);
    kernel.info_mut().update_data("lead-state", 27.0, Validity::FULL, t0);
    let decision = kernel.run_cycle(t0);
    println!("t=0.1s  healthy          -> {}", decision.selected);

    // The V2V radio stops responding: the kernel degrades to LoS 1.
    let t1 = SimTime::from_millis(200);
    kernel.info_mut().update_health("v2v-radio", false, t1);
    let decision = kernel.run_cycle(t1);
    println!(
        "t=0.2s  V2V radio failed -> {} (violated: {:?})",
        decision.selected,
        decision.violations.iter().map(|(l, r)| format!("{l}: {r:?}")).collect::<Vec<_>>()
    );

    // The range sensor degrades too: fall back to the non-cooperative level.
    let t2 = SimTime::from_millis(300);
    kernel.info_mut().update_data("front-range", 42.0, Validity::new(0.2), t2);
    let decision = kernel.run_cycle(t2);
    println!("t=0.3s  sensor degraded  -> {}", decision.selected);
    assert!(decision.selected.is_non_cooperative());

    println!("\nLoS switches recorded: {}", kernel.switches().len());
    for switch in kernel.switches() {
        println!(
            "  at {} from {} to {} (latency bound {})",
            switch.at, switch.from, switch.to, switch.latency
        );
    }
}

//! # karyon — umbrella crate for the KARYON reproduction
//!
//! Re-exports the individual crates of the workspace under short module
//! names so examples and integration tests can use a single dependency:
//!
//! * [`sim`] — deterministic discrete-event simulation substrate
//! * [`sensors`] — abstract sensors, fault model, validity, fusion (paper §IV)
//! * [`net`] — wireless medium, R2T-MAC, self-stabilizing TDMA, E2E FIFO (§V-A)
//! * [`middleware`] — FAMOUSO-style event channels with QoS (§V-B)
//! * [`core`] — the safety kernel: Levels of Service, safety rules, safety
//!   manager, cooperation state (§III, §V-C)
//! * [`vehicles`] — automotive and avionics use cases (§VI)
//! * [`scenario`] — declarative scenario families and parallel campaign
//!   orchestration over every layer above
//!
//! The umbrella `prelude` is intentionally omitted: pick the layer you need.

#![forbid(unsafe_code)]

pub use karyon_core as core;
pub use karyon_middleware as middleware;
pub use karyon_net as net;
pub use karyon_scenario as scenario;
pub use karyon_sensors as sensors;
pub use karyon_sim as sim;
pub use karyon_vehicles as vehicles;

//! # karyon — umbrella crate for the KARYON reproduction
//!
//! Re-exports the individual crates of the workspace under short module
//! names so examples and integration tests can use a single dependency:
//!
//! * [`sim`] — deterministic discrete-event simulation substrate
//! * [`telemetry`] — deterministic virtual-time tracing and the unified
//!   wall-clock metrics registry (the campaign flight recorder)
//! * [`sensors`] — abstract sensors, fault model, validity, fusion (paper §IV)
//! * [`net`] — wireless medium, R2T-MAC, self-stabilizing TDMA, E2E FIFO (§V-A)
//! * [`transport`] — message transport seam: loopback production fabric plus
//!   the seed-deterministic [`transport::SimTransport`] used for fault drills
//! * [`middleware`] — FAMOUSO-style event channels with QoS (§V-B)
//! * [`core`] — the safety kernel: Levels of Service, safety rules, safety
//!   manager, cooperation state (§III, §V-C)
//! * [`vehicles`] — automotive and avionics use cases (§VI)
//! * [`scenario`] — declarative scenario families, parallel campaign
//!   orchestration and crash-safe checkpoint/resume over every layer above
//!
//! The umbrella `prelude` is intentionally omitted: pick the layer you need.
//! `ARCHITECTURE.md` at the repository root maps these crates onto the
//! paper's layer diagram.
//!
//! ## Quick tour
//!
//! A three-line campaign over one of the paper's use cases, through the
//! umbrella re-exports:
//!
//! ```
//! use karyon::scenario::{builtin_registry, Campaign, CampaignEntry, ParamGrid};
//!
//! let campaign = Campaign::new("doc", 1).with_threads(2).entry(
//!     CampaignEntry::new("middleware-qos")
//!         .grid(ParamGrid::new().axis("degrade", [false, true]))
//!         .replications(2)
//!         .duration_secs(10),
//! );
//! let report = campaign.run(&builtin_registry()).expect("builtin family");
//! assert_eq!(report.total_runs, 4);
//! assert_eq!(report.suspect_runs(), 0, "no model schedules into the past");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use karyon_core as core;
pub use karyon_middleware as middleware;
pub use karyon_net as net;
pub use karyon_scenario as scenario;
pub use karyon_sensors as sensors;
pub use karyon_sim as sim;
pub use karyon_telemetry as telemetry;
pub use karyon_transport as transport;
pub use karyon_vehicles as vehicles;

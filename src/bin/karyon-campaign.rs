//! `karyon-campaign` — the campaign workflow as a command-line tool.
//!
//! Drives the `karyon-scenario` subsystem end to end from a JSON spec file:
//!
//! ```text
//! karyon-campaign run      <spec.json> [--jsonl runs.jsonl] [--checkpoint c.json] ...
//! karyon-campaign resume   <spec.json> --checkpoint c.json [--jsonl runs.jsonl] ...
//! karyon-campaign report   <spec.json> (--jsonl runs.jsonl | --checkpoint c.json) ...
//! karyon-campaign list-families [--output json]
//! ```
//!
//! `run` executes a campaign (optionally streaming per-run JSONL artifacts
//! and writing crash-safe checkpoints), `resume` continues a killed or
//! time-sliced campaign from its checkpoint manifest — producing a report
//! bit-identical to an uninterrupted run — and `report` re-emits a report
//! without running anything, either by replaying a complete JSONL stream or
//! by reading a finished checkpoint.  Argument parsing is hand-rolled: the
//! workspace builds offline and the surface is small.

use std::io::Write as _;
use std::process::ExitCode;

use karyon::scenario::fault::is_injected;
use karyon::scenario::{
    builtin_registry, merge_shards, read_jsonl_records, read_run_segment, read_trace_segment,
    truncate_jsonl, truncate_trace_jsonl, validate_shard_set, Campaign, CampaignOutcome,
    CampaignReport, CampaignTelemetry, Checkpointer, FaultInjector, FaultPlan, JsonlRunWriter,
    RunMeta, RunRecord, RunSink, RunnerStats, ScenarioRegistry, ShardManifest, ShardPlan,
    SyncOnFlushFile,
};
use karyon::telemetry::{JsonlTraceWriter, MetricsRegistry};

/// What went wrong, mapped to the process exit code (see `EXIT CODES` in
/// [`USAGE`]).  The scripts driving chaos campaigns in CI branch on these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ErrorKind {
    /// Bad flags or arguments, rejected before anything executed (exit 2).
    Usage,
    /// An I/O or execution failure: unreadable spec, sink errors, a scenario
    /// panic, a corrupt checkpoint manifest... (exit 3).
    Io,
    /// The campaign session was cut short by an injected fault — the
    /// expected outcome of a chaos session, never of a production one
    /// (exit 4).
    FaultAborted,
    /// `chaos` recovered to completion but the recovered artifacts were not
    /// byte-identical to the fault-free reference (exit 5).
    Mismatch,
    /// `merge` refused the shard set: manifests from a different campaign
    /// definition, or windows that overlap / leave gaps — merging them would
    /// double-count or silently drop runs (exit 6).
    ShardSet,
}

impl ErrorKind {
    fn code(self) -> u8 {
        match self {
            ErrorKind::Usage => 2,
            ErrorKind::Io => 3,
            ErrorKind::FaultAborted => 4,
            ErrorKind::Mismatch => 5,
            ErrorKind::ShardSet => 6,
        }
    }
}

#[derive(Debug)]
struct CliError {
    kind: ErrorKind,
    message: String,
}

/// Runtime errors bubbling up as strings classify themselves: an injected
/// fault message (recognised by its [`INJECTED_PREFIX`](is_injected)) means
/// the session was deliberately killed; everything else is an I/O /
/// execution failure.
impl From<String> for CliError {
    fn from(message: String) -> Self {
        let kind = if is_injected(&message) { ErrorKind::FaultAborted } else { ErrorKind::Io };
        CliError { kind, message }
    }
}

fn usage(message: impl Into<String>) -> CliError {
    CliError { kind: ErrorKind::Usage, message: message.into() }
}

const USAGE: &str = "\
karyon-campaign — declarative KARYON simulation campaigns: run, checkpoint, resume, report

USAGE:
    karyon-campaign run    <spec.json> [OPTIONS]     execute a campaign from a JSON spec
    karyon-campaign resume <spec.json> [OPTIONS]     continue from --checkpoint (bit-identical)
    karyon-campaign report <spec.json> [OPTIONS]     re-emit a report without running anything
    karyon-campaign chaos  <spec.json> --dir <dir> (--fault-plan <plan.json> | --fault-seed <n>)
                                                     crash-test the campaign: inject the plan's
                                                     faults, recover across sessions, and verify
                                                     the recovered artifacts are byte-identical
                                                     to a fault-free reference
    karyon-campaign shard  <spec.json> --dir <dir> --index <i> --of <n> [OPTIONS]
                                                     run one shard window of the campaign and
                                                     persist its manifest + JSONL/trace segments
                                                     under --dir (rerunnable: the shard is the
                                                     unit of retry)
    karyon-campaign merge  <spec.json> --dir <dir> [OPTIONS]
                                                     merge a complete shard set back into the
                                                     campaign report — byte-identical to a
                                                     single-machine run's
    karyon-campaign list-families [--output json]    list the builtin scenario families
                                                     (json: parameter names, types, domains)
    karyon-campaign help                             show this help

OPTIONS:
    --jsonl <path>        stream one JSON line per run (run: append & continue the stream)
    --checkpoint <path>   write crash-safe checkpoint manifests (resume/report: read them)
    --checkpoint-every <chunks>   manifest cadence in canonical chunks   [default: 1]
    --max-chunks <chunks> bounded work slice: stop (with a checkpoint) after N chunks
    --threads <n>         worker threads (0 = machine parallelism; overrides the spec)
    --output <mode>       report rendering: json | table | both          [default: table]
                          (json for run/resume is an envelope: {\"report\", \"runner\",
                          \"metrics\"?} — the report member stays bit-identical)
    --metric <name>       also render the per-point table of one metric (repeatable)
    --trace-dir <dir>     stream deterministic virtual-time trace records to
                          <dir>/<campaign>.trace.jsonl (bit-identical for any
                          --threads value; resume continues the stream)
    --metrics <path>      collect wall-clock runner metrics (chunk latency, worker
                          busy time, checkpoint cost...) and write the JSON
                          snapshot to <path>; also embedded in --output json
    --quiet               suppress the progress line on stderr
    --force               run: discard an existing checkpoint of this campaign and start over
                          (without it, `run` refuses to overwrite checkpointed progress)
    --fault-plan <file>   run/resume: arm a deterministic fault plan (JSON, see `chaos`);
                          an injected fault aborts the session with exit code 4

SHARD OPTIONS (shard takes --threads/--quiet/--fault-plan plus):
    --dir <dir>           where the shard's artifacts live: <campaign>.shard-<i>-of-<n>
                          .manifest.json / .jsonl / .trace.jsonl (every shard of one
                          campaign must share the same --dir)
    --index <i>           this session's shard index, 0-based
    --of <n>              total shard count; every shard must use the same <n>
    --trace               also stream the deterministic trace segment (pass it to
                          every shard or to none — merge stitches what it finds)
                          (--fault-plan needs no --checkpoint here: rerun the whole
                          shard after a fault, the manifest is only written on success)

MERGE OPTIONS (merge takes --output/--metric/--quiet plus):
    --dir <dir>           the shard directory to collect manifests from
    --jsonl <path>        also stitch the shards' JSONL segments into one stream,
                          byte-identical to a single-machine --jsonl run
    --trace-dir <dir>     also stitch the trace segments to <dir>/<campaign>.trace.jsonl

CHAOS OPTIONS (chaos takes --threads/--output/--quiet plus):
    --dir <dir>           working directory for the chaos checkpoint + JSONL stream
    --fault-plan <file>   the fault plan to inject: {\"faults\": [{\"kind\":
                          \"worker-death\", \"at_chunk\": 1}, {\"kind\": \"sink-io-error\",
                          \"at_chunks_done\": 1, \"failures\": 2}, {\"kind\":
                          \"torn-manifest\", \"at_chunks_done\": 2, \"keep_bytes\": 40},
                          {\"kind\": \"abort-mid-chunk\", \"at_chunk\": 2, \"after_runs\": 3}]}
    --fault-seed <n>      derive a plan deterministically from seed <n> instead
    --max-sessions <n>    recovery-session budget before giving up      [default: 16]

EXIT CODES:
    0   success
    2   usage error (bad flags or arguments; nothing was executed)
    3   I/O or execution failure (unreadable spec, sink error, corrupt manifest...)
    4   the session was aborted by an injected fault (--fault-plan on run/resume)
    5   chaos verification failed: recovered artifacts differ from the reference
    6   merge refused the shard set (foreign campaign fingerprint, mismatched chunk
        size or run count, overlapping or gapped shard windows)

SPEC FILE:
    {\"name\": \"demo\", \"seed\": 42, \"chunk_size\": 4096,
     \"entries\": [{\"scenario\": \"platoon\", \"replications\": 100,
                  \"duration_secs\": 120,
                  \"grid\": {\"mode\": [\"kernel\", \"los0\"], \"vehicles\": [4, 8]}}]}

    Reports are bit-identical for any --threads value and any kill/resume
    history at a fixed spec (seed, chunk_size, entries).
";

/// Everything the three report-producing subcommands share.
struct CommonArgs {
    spec_path: String,
    jsonl: Option<String>,
    checkpoint: Option<String>,
    checkpoint_every: usize,
    max_chunks: Option<usize>,
    threads: Option<usize>,
    output: OutputMode,
    metrics: Vec<String>,
    trace_dir: Option<String>,
    metrics_path: Option<String>,
    quiet: bool,
    force: bool,
    fault_plan: Option<String>,
}

#[derive(Debug, PartialEq, Clone, Copy)]
enum OutputMode {
    Json,
    Table,
    Both,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    let result: Result<(), CliError> = match command {
        Some("run") => parse_common(&args[1..]).map_err(usage).and_then(|a| cmd_run(a, false)),
        Some("resume") => parse_common(&args[1..]).map_err(usage).and_then(|a| cmd_run(a, true)),
        Some("report") => parse_common(&args[1..]).map_err(usage).and_then(cmd_report),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("shard") => parse_shard(&args[1..]).map_err(usage).and_then(cmd_shard),
        Some("merge") => parse_merge(&args[1..]).map_err(usage).and_then(cmd_merge),
        Some("list-families") => cmd_list_families(&args[1..]).map_err(usage),
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(usage(format!(
            "unknown command {other:?} (expected run, resume, report, chaos, shard, merge, \
             list-families or help)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("karyon-campaign: error: {}", error.message);
            if error.kind == ErrorKind::Usage {
                eprintln!("run `karyon-campaign help` for usage");
            }
            ExitCode::from(error.kind.code())
        }
    }
}

fn parse_common(args: &[String]) -> Result<CommonArgs, String> {
    let mut spec_path = None;
    let mut parsed = CommonArgs {
        spec_path: String::new(),
        jsonl: None,
        checkpoint: None,
        checkpoint_every: 1,
        max_chunks: None,
        threads: None,
        output: OutputMode::Table,
        metrics: Vec::new(),
        trace_dir: None,
        metrics_path: None,
        quiet: false,
        force: false,
        fault_plan: None,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of =
            |flag: &str| iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--jsonl" => parsed.jsonl = Some(value_of("--jsonl")?),
            "--checkpoint" => parsed.checkpoint = Some(value_of("--checkpoint")?),
            "--checkpoint-every" => {
                parsed.checkpoint_every =
                    parse_count("--checkpoint-every", &value_of("--checkpoint-every")?)?
            }
            "--max-chunks" => {
                parsed.max_chunks = Some(parse_count("--max-chunks", &value_of("--max-chunks")?)?)
            }
            "--threads" => {
                let raw = value_of("--threads")?;
                parsed.threads =
                    Some(raw.parse().map_err(|_| format!("--threads: {raw:?} is not an integer"))?)
            }
            "--output" => {
                parsed.output = match value_of("--output")?.as_str() {
                    "json" => OutputMode::Json,
                    "table" => OutputMode::Table,
                    "both" => OutputMode::Both,
                    other => {
                        return Err(format!("--output must be json, table or both, not {other:?}"))
                    }
                }
            }
            "--metric" => parsed.metrics.push(value_of("--metric")?),
            "--trace-dir" => parsed.trace_dir = Some(value_of("--trace-dir")?),
            "--metrics" => parsed.metrics_path = Some(value_of("--metrics")?),
            "--quiet" => parsed.quiet = true,
            "--force" => parsed.force = true,
            "--fault-plan" => parsed.fault_plan = Some(value_of("--fault-plan")?),
            flag if flag.starts_with('-') => return Err(format!("unknown option {flag:?}")),
            positional => {
                if spec_path.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
            }
        }
    }
    parsed.spec_path = spec_path.ok_or("missing the <spec.json> argument")?;
    Ok(parsed)
}

fn parse_count(flag: &str, raw: &str) -> Result<usize, String> {
    raw.parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag}: {raw:?} is not a positive integer"))
}

/// `"42s"`, `"3m07s"` or `"2h05m"` — coarse on purpose: an ETA pretending
/// to sub-second precision would only flicker.
fn format_eta(seconds: f64) -> String {
    let s = seconds.ceil().max(0.0) as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3_600 {
        format!("{}m{:02}s", s / 60, s % 60)
    } else {
        format!("{}h{:02}m", s / 3_600, (s % 3_600) / 60)
    }
}

fn load_campaign(spec_path: &str, threads: Option<usize>) -> Result<Campaign, String> {
    let text = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read spec {spec_path:?}: {e}"))?;
    let mut campaign =
        Campaign::from_json_str(&text).map_err(|e| format!("spec {spec_path:?}: {e}"))?;
    if let Some(threads) = threads {
        campaign = campaign.with_threads(threads);
    }
    Ok(campaign)
}

/// A sink that forwards to an optional JSONL writer and keeps a progress
/// line on stderr (never stdout, which carries the report).
struct ProgressSink<W: std::io::Write> {
    jsonl: Option<JsonlRunWriter<W>>,
    done: u64,
    offset: u64,
    total: u64,
    quiet: bool,
    started: std::time::Instant,
    last_render: std::time::Instant,
}

impl<W: std::io::Write> ProgressSink<W> {
    fn new(jsonl: Option<JsonlRunWriter<W>>, offset: u64, total: u64, quiet: bool) -> Self {
        ProgressSink {
            jsonl,
            done: 0,
            offset,
            total,
            quiet,
            started: std::time::Instant::now(),
            last_render: std::time::Instant::now(),
        }
    }

    fn render(&mut self, force: bool) {
        if self.quiet {
            return;
        }
        // Redraw at most ~10×/s: progress must never throttle the runner.
        if !force && self.last_render.elapsed().as_millis() < 100 {
            return;
        }
        self.last_render = std::time::Instant::now();
        let covered = self.offset + self.done;
        let percent =
            if self.total == 0 { 100.0 } else { covered as f64 * 100.0 / self.total as f64 };
        // Throughput and ETA from *this session's* runs only — a resumed
        // campaign's checkpointed offset says nothing about the current rate.
        let rate = self.done as f64 / self.started.elapsed().as_secs_f64().max(1e-9);
        let eta = if rate > 0.0 && covered < self.total {
            format_eta((self.total - covered) as f64 / rate)
        } else {
            "--".to_string()
        };
        eprint!("\r{covered}/{} runs ({percent:.1}%, {rate:.0} runs/s, ETA {eta})   ", self.total);
        let _ = std::io::stderr().flush();
    }

    fn finish_line(&mut self) {
        if !self.quiet {
            self.render(true);
            eprintln!();
        }
    }
}

impl<W: std::io::Write> RunSink for ProgressSink<W> {
    fn on_run(&mut self, meta: &RunMeta<'_>, record: &RunRecord) {
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.on_run(meta, record);
        }
        self.done += 1;
        self.render(false);
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.jsonl {
            Some(jsonl) => jsonl.flush(),
            None => Ok(()),
        }
    }
}

/// `run` and `resume`: execute (the rest of) a campaign.
fn cmd_run(args: CommonArgs, resuming: bool) -> Result<(), CliError> {
    let campaign = load_campaign(&args.spec_path, args.threads)?;
    let registry = builtin_registry();
    validate_families(&campaign, &registry)?;
    let total = campaign.run_count();

    if resuming && args.force {
        return Err(usage(
            "--force only applies to `run` (resume continues progress, it never discards any)",
        ));
    }
    if resuming && args.checkpoint.is_none() {
        return Err(usage("resume needs --checkpoint <path> (the manifest to continue from)"));
    }
    if args.max_chunks.is_some() && args.checkpoint.is_none() {
        return Err(usage(
            "--max-chunks only makes sense with --checkpoint (the slice must be resumable)",
        ));
    }
    if args.fault_plan.is_some() && args.checkpoint.is_none() {
        return Err(usage(
            "--fault-plan needs --checkpoint (recovering from an injected fault needs a manifest \
             to resume from)",
        ));
    }
    let injector = args.fault_plan.as_ref().map(|path| load_fault_plan(path)).transpose()?;

    // `run` starts from scratch: it truncates --jsonl and overwrites
    // --checkpoint.  A manifest already holding progress (for this campaign
    // a mistyped `resume`; for any other, still hours of someone's compute)
    // or a non-empty artifact stream must not be silently destroyed —
    // refuse before touching anything, and let only --force speak for the
    // user.
    if !resuming && !args.force {
        if let Some(ckpt_path) = &args.checkpoint {
            if let Some(refusal) =
                refuse_overwriting_progress(&campaign, &args.spec_path, ckpt_path)
            {
                return Err(CliError::from(refusal));
            }
        }
        if let Some(jsonl_path) = &args.jsonl {
            if std::fs::metadata(jsonl_path).map(|m| m.len() > 0).unwrap_or(false) {
                return Err(CliError::from(format!(
                    "--jsonl {jsonl_path:?} already holds data — `run` starts a fresh stream \
                     and would truncate it; use `resume` to continue a checkpointed campaign, \
                     `report --jsonl` to re-aggregate a finished stream, or pass --force to \
                     discard it and start over"
                )));
            }
        }
        if let Some(dir) = &args.trace_dir {
            let path = trace_path(dir, campaign.name());
            if std::fs::metadata(&path).map(|m| m.len() > 0).unwrap_or(false) {
                return Err(CliError::from(format!(
                    "trace stream {path:?} already holds data — `run` starts a fresh stream \
                     and would truncate it; use `resume` to continue it, or pass --force to \
                     discard it and start over"
                )));
            }
        }
    }

    let mut checkpointer = args.checkpoint.as_ref().map(|path| {
        let mut c = Checkpointer::new(path).every_chunks(args.checkpoint_every);
        if let Some(max) = args.max_chunks {
            c = c.max_chunks_per_session(max);
        }
        c
    });

    // Resume: learn the watermark first, then cut the JSONL stream back to
    // exactly the checkpointed runs and append to it.  The fingerprint is
    // checked *before* the stream is touched — truncating a stream that does
    // not belong to this manifest would destroy data `Campaign::resume`
    // would then refuse to continue anyway.
    let mut offset = 0u64;
    if resuming {
        let manifest = checkpointer.as_ref().expect("checked above").load()?;
        if manifest.fingerprint != campaign.fingerprint() {
            return Err(CliError::from(format!(
                "checkpoint {:?} was written by a different campaign definition than spec {:?} \
                 (fingerprint {:#018x} vs {:#018x}) — refusing to touch the JSONL stream; \
                 restore the original spec (name, seed, chunk_size, entries) to resume",
                args.checkpoint.as_deref().unwrap_or("<path>"),
                args.spec_path,
                manifest.fingerprint,
                campaign.fingerprint(),
            )));
        }
        offset = manifest.runs_done;
        if let Some(jsonl_path) = &args.jsonl {
            truncate_jsonl(std::path::Path::new(jsonl_path), offset)?;
        }
        if let Some(dir) = &args.trace_dir {
            // Same recovery as the run stream: cut the trace stream back to
            // exactly the checkpointed runs, then append — the final file is
            // bit-identical to an uninterrupted traced run's.
            truncate_trace_jsonl(&trace_path(dir, campaign.name()), offset)?;
        }
        if !args.quiet {
            eprintln!(
                "resuming campaign {:?} from chunk watermark {} ({offset}/{total} runs done)",
                campaign.name(),
                manifest.chunks_done
            );
        }
    }

    let jsonl = args
        .jsonl
        .as_ref()
        .map(|path| {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(resuming)
                .write(true)
                .truncate(!resuming)
                .open(path)
                .map_err(|e| format!("cannot open JSONL stream {path:?}: {e}"))?;
            // Sync-on-flush: each checkpoint manifest is fsynced, so the
            // stream prefix it covers must reach stable storage first —
            // otherwise a power loss could leave the stream behind the
            // watermark and block resume.
            Ok::<_, String>(JsonlRunWriter::new(SyncOnFlushFile::new(file)))
        })
        .transpose()?;

    // The telemetry attachment: a deterministic trace stream under
    // --trace-dir and/or a wall-clock metrics registry for --metrics.
    let mut trace = args
        .trace_dir
        .as_ref()
        .map(|dir| {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create --trace-dir {dir:?}: {e}"))?;
            let path = trace_path(dir, campaign.name());
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(resuming)
                .write(true)
                .truncate(!resuming)
                .open(&path)
                .map_err(|e| format!("cannot open trace stream {path:?}: {e}"))?;
            // Sync-on-flush for the same reason as the run stream: a
            // checkpoint manifest must never cover trace lines that have not
            // reached stable storage.
            Ok::<_, String>(JsonlTraceWriter::new(SyncOnFlushFile::new(file)))
        })
        .transpose()?;
    let mut metrics = args.metrics_path.as_ref().map(|_| MetricsRegistry::new());

    let mut progress = ProgressSink::new(jsonl, offset, total, args.quiet);
    let started = std::time::Instant::now();
    let (outcome, stats) = {
        let mut telemetry = CampaignTelemetry::none();
        if let Some(trace) = trace.as_mut() {
            telemetry = telemetry.with_trace(trace);
        }
        if let Some(metrics) = metrics.as_mut() {
            telemetry = telemetry.with_metrics(metrics);
        }
        match (&mut checkpointer, resuming, injector.as_ref()) {
            (Some(ckpt), true, None) => {
                campaign.resume_with(&registry, ckpt, Some(&mut progress), telemetry)?
            }
            (Some(ckpt), false, None) => {
                campaign.run_checkpointed_with(&registry, ckpt, Some(&mut progress), telemetry)?
            }
            (Some(ckpt), true, Some(faults)) => {
                campaign.resume_chaos(&registry, ckpt, Some(&mut progress), telemetry, faults)?
            }
            (Some(ckpt), false, Some(faults)) => campaign.run_checkpointed_chaos(
                &registry,
                ckpt,
                Some(&mut progress),
                telemetry,
                faults,
            )?,
            (None, _, _) => {
                let (report, stats) =
                    campaign.run_instrumented_with(&registry, Some(&mut progress), telemetry)?;
                (CampaignOutcome::Complete(report), stats)
            }
        }
    };
    progress.finish_line();
    if let Some(jsonl) = progress.jsonl.take() {
        jsonl.finish().map_err(|e| format!("finishing the JSONL stream: {e}"))?;
    }
    if let Some(trace) = trace.take() {
        trace.into_inner().map_err(|e| format!("finishing the trace stream: {e}"))?;
    }
    if let (Some(path), Some(metrics)) = (&args.metrics_path, &metrics) {
        std::fs::write(path, format!("{}\n", metrics.to_json()))
            .map_err(|e| format!("cannot write the metrics snapshot {path:?}: {e}"))?;
    }

    match outcome {
        CampaignOutcome::Complete(report) => {
            summarize(&stats, started.elapsed(), &args, &report, metrics.as_ref())?;
            Ok(())
        }
        CampaignOutcome::Interrupted { chunks_done, runs_done } => {
            if !args.quiet {
                eprintln!(
                    "stopped after the session's chunk budget: {chunks_done} chunks \
                     ({runs_done}/{total} runs) checkpointed in {:.2?}; resume with:\n  \
                     karyon-campaign resume {:?} --checkpoint {:?}",
                    started.elapsed(),
                    args.spec_path,
                    args.checkpoint.as_deref().unwrap_or("<path>"),
                );
            }
            Ok(())
        }
    }
}

/// `report`: re-emit a report without executing any run — from a complete
/// JSONL stream (canonical replay) or a finished checkpoint manifest.
fn cmd_report(args: CommonArgs) -> Result<(), CliError> {
    if args.force {
        return Err(usage("--force only applies to `run` (report never writes anything)"));
    }
    if args.fault_plan.is_some() {
        return Err(usage("--fault-plan only applies to run/resume (report never executes runs)"));
    }
    let campaign = load_campaign(&args.spec_path, args.threads)?;
    let registry = builtin_registry();
    validate_families(&campaign, &registry)?;
    match (&args.jsonl, &args.checkpoint) {
        (Some(jsonl_path), None) => {
            let text = std::fs::read_to_string(jsonl_path)
                .map_err(|e| format!("cannot read JSONL stream {jsonl_path:?}: {e}"))?;
            let records = read_jsonl_records(&text)?;
            let report = campaign.reduce_records(&registry, &records)?;
            Ok(render(&args, &report)?)
        }
        (None, Some(ckpt_path)) => {
            // `report` must never execute runs: only a *finished* manifest
            // (watermark == chunk count) can be replayed.  An unfinished one
            // is an error naming the watermark, pointing at `resume`.
            let mut ckpt = Checkpointer::new(ckpt_path);
            let manifest = ckpt.load()?;
            let chunks = campaign.canonical_chunks();
            if manifest.fingerprint == campaign.fingerprint() && manifest.chunks_done < chunks {
                return Err(CliError::from(format!(
                    "checkpoint {ckpt_path:?} is mid-campaign ({} of {chunks} chunks, {} of {} \
                     runs) — `report` never executes runs; use `karyon-campaign resume` to \
                     finish it first",
                    manifest.chunks_done,
                    manifest.runs_done,
                    campaign.run_count(),
                )));
            }
            // A finished manifest replays instantly through resume: zero
            // chunks remain, so no run executes and no manifest is written.
            let (outcome, _) = campaign.resume(&registry, &mut ckpt, None)?;
            match outcome {
                CampaignOutcome::Complete(report) => Ok(render(&args, &report)?),
                CampaignOutcome::Interrupted { .. } => unreachable!("zero chunks remain"),
            }
        }
        _ => Err(usage(
            "report needs exactly one source: --jsonl <stream> (replay) or \
             --checkpoint <manifest> (finished campaign)",
        )),
    }
}

/// What `karyon-campaign chaos` parses for itself.  The chaos harness owns
/// its artifact paths (under `--dir`), so the run/resume stream flags are
/// deliberately absent.
struct ChaosArgs {
    spec_path: String,
    dir: String,
    fault_plan: Option<String>,
    fault_seed: Option<u64>,
    max_sessions: usize,
    threads: Option<usize>,
    output: OutputMode,
    quiet: bool,
}

fn parse_chaos(args: &[String]) -> Result<ChaosArgs, String> {
    let mut spec_path = None;
    let mut parsed = ChaosArgs {
        spec_path: String::new(),
        dir: String::new(),
        fault_plan: None,
        fault_seed: None,
        max_sessions: 16,
        threads: None,
        output: OutputMode::Table,
        quiet: false,
    };
    let mut dir = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of =
            |flag: &str| iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--dir" => dir = Some(value_of("--dir")?),
            "--fault-plan" => parsed.fault_plan = Some(value_of("--fault-plan")?),
            "--fault-seed" => {
                let raw = value_of("--fault-seed")?;
                parsed.fault_seed = Some(
                    raw.parse().map_err(|_| format!("--fault-seed: {raw:?} is not an integer"))?,
                );
            }
            "--max-sessions" => {
                parsed.max_sessions = parse_count("--max-sessions", &value_of("--max-sessions")?)?
            }
            "--threads" => {
                let raw = value_of("--threads")?;
                parsed.threads =
                    Some(raw.parse().map_err(|_| format!("--threads: {raw:?} is not an integer"))?)
            }
            "--output" => {
                parsed.output = match value_of("--output")?.as_str() {
                    "json" => OutputMode::Json,
                    "table" => OutputMode::Table,
                    "both" => OutputMode::Both,
                    other => {
                        return Err(format!("--output must be json, table or both, not {other:?}"))
                    }
                }
            }
            "--quiet" => parsed.quiet = true,
            flag @ ("--checkpoint" | "--jsonl" | "--trace-dir" | "--metrics") => {
                return Err(format!(
                    "{flag} does not apply to `chaos` — the harness manages its own checkpoint \
                     and JSONL stream under --dir"
                ));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option {flag:?}")),
            positional => {
                if spec_path.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
            }
        }
    }
    parsed.spec_path = spec_path.ok_or("missing the <spec.json> argument")?;
    parsed.dir = dir.ok_or("chaos needs --dir <dir> (where its checkpoint and stream live)")?;
    if parsed.fault_plan.is_some() == parsed.fault_seed.is_some() {
        return Err(
            "chaos needs exactly one of --fault-plan <file> or --fault-seed <n>".to_string()
        );
    }
    Ok(parsed)
}

/// `chaos`: the self-verifying crash-test loop.  Computes a fault-free
/// reference in memory, then runs the same campaign on disk under an armed
/// [`FaultInjector`], recovering after every injected crash — a fresh
/// "session" per recovery, exactly like a supervisor restarting a killed
/// process — and finally asserts the recovered report and JSONL stream are
/// **byte-identical** to the reference.
fn cmd_chaos(raw_args: &[String]) -> Result<(), CliError> {
    let args = parse_chaos(raw_args).map_err(usage)?;
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| CliError::from(format!("cannot read spec {:?}: {e}", args.spec_path)))?;
    let mut campaign = Campaign::from_json_str(&text)
        .map_err(|e| CliError::from(format!("spec {:?}: {e}", args.spec_path)))?;
    if let Some(threads) = args.threads {
        campaign = campaign.with_threads(threads);
    }
    let registry = builtin_registry();
    validate_families(&campaign, &registry)?;

    let plan = match (&args.fault_plan, args.fault_seed) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::from(format!("cannot read fault plan {path:?}: {e}")))?;
            FaultPlan::from_json_str(&text)
                .map_err(|e| CliError::from(format!("fault plan {path:?}: {e}")))?
        }
        (None, Some(seed)) => FaultPlan::derive(seed, campaign.canonical_chunks()),
        _ => unreachable!("parse_chaos enforces exactly one source"),
    };
    if plan.is_empty() {
        return Err(usage("the fault plan holds no faults — nothing to chaos-test"));
    }

    // The fault-free reference, entirely in memory: the ground truth every
    // recovered artifact must reproduce byte for byte.
    let mut reference_sink = JsonlRunWriter::new(Vec::new());
    let (reference, _) = campaign.run_instrumented_with(
        &registry,
        Some(&mut reference_sink),
        CampaignTelemetry::none(),
    )?;
    let reference_jsonl = reference_sink
        .finish()
        .map_err(|e| CliError::from(format!("collecting the reference stream: {e}")))?;

    std::fs::create_dir_all(&args.dir)
        .map_err(|e| CliError::from(format!("cannot create --dir {:?}: {e}", args.dir)))?;
    let dir = std::path::Path::new(&args.dir);
    let ckpt_path = dir.join(format!("{}.chaos.ckpt.json", campaign.name()));
    let jsonl_path = dir.join(format!("{}.chaos.runs.jsonl", campaign.name()));
    // Stale artifacts from an earlier chaos invocation would poison the
    // fingerprint/watermark checks of session 1 — the harness owns the dir.
    std::fs::remove_file(&ckpt_path).ok();
    std::fs::remove_file(&jsonl_path).ok();

    let injector = plan.injector();
    let mut sessions = 0usize;
    let report = loop {
        if sessions >= args.max_sessions {
            return Err(CliError::from(format!(
                "chaos did not recover to completion within --max-sessions {} (faults injected \
                 so far: {})",
                args.max_sessions,
                injector.injected(),
            )));
        }
        sessions += 1;
        let resuming = ckpt_path.exists();
        if resuming {
            match Checkpointer::new(&ckpt_path).load() {
                Ok(manifest) => {
                    truncate_jsonl(&jsonl_path, manifest.runs_done)?;
                }
                Err(error) => {
                    // A torn or corrupt manifest: the refusal is the expected
                    // behaviour, and the documented recovery — discard the
                    // checkpoint and its streams, start over — is exactly
                    // what a one-shot injector makes safe to automate.
                    if !args.quiet {
                        eprintln!("chaos session {sessions}: {error}");
                        eprintln!(
                            "chaos session {sessions}: discarding the checkpoint and stream, \
                             restarting from scratch"
                        );
                    }
                    std::fs::remove_file(&ckpt_path)
                        .map_err(|e| format!("cannot discard {ckpt_path:?}: {e}"))?;
                    std::fs::remove_file(&jsonl_path).ok();
                    continue;
                }
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(resuming)
            .write(true)
            .truncate(!resuming)
            .open(&jsonl_path)
            .map_err(|e| format!("cannot open JSONL stream {jsonl_path:?}: {e}"))?;
        let mut sink = JsonlRunWriter::new(SyncOnFlushFile::new(file));
        let mut ckpt = Checkpointer::new(&ckpt_path);
        let result = if resuming {
            campaign.resume_chaos(
                &registry,
                &mut ckpt,
                Some(&mut sink),
                CampaignTelemetry::none(),
                &injector,
            )
        } else {
            campaign.run_checkpointed_chaos(
                &registry,
                &mut ckpt,
                Some(&mut sink),
                CampaignTelemetry::none(),
                &injector,
            )
        };
        match result {
            Ok((CampaignOutcome::Complete(report), _)) => {
                sink.finish().map_err(|e| format!("finishing the JSONL stream: {e}"))?;
                break report;
            }
            Ok((CampaignOutcome::Interrupted { runs_done, .. }, _)) => {
                if !args.quiet {
                    eprintln!("chaos session {sessions}: interrupted at {runs_done} runs");
                }
            }
            Err(message) if is_injected(&message) => {
                if !args.quiet {
                    eprintln!("chaos session {sessions}: {message}");
                }
                // The session "crashed": drop the sink un-finished, like a
                // killed process would, and let the next session recover.
            }
            Err(message) => return Err(CliError::from(message)),
        }
    };

    let recovered_jsonl = std::fs::read(&jsonl_path)
        .map_err(|e| CliError::from(format!("cannot read back {jsonl_path:?}: {e}")))?;
    if report.to_json() != reference.to_json() {
        return Err(CliError {
            kind: ErrorKind::Mismatch,
            message: format!(
                "the report recovered after {} injected faults differs from the fault-free \
                 reference — determinism under faults is broken",
                injector.injected(),
            ),
        });
    }
    if recovered_jsonl != reference_jsonl {
        return Err(CliError {
            kind: ErrorKind::Mismatch,
            message: format!(
                "the recovered JSONL stream {jsonl_path:?} is not byte-identical to the \
                 fault-free reference stream",
            ),
        });
    }
    if !args.quiet {
        eprintln!(
            "chaos: {} faults injected across {sessions} sessions; recovered report and JSONL \
             stream are byte-identical to the fault-free reference",
            injector.injected(),
        );
    }
    let render_args = CommonArgs {
        spec_path: args.spec_path,
        jsonl: None,
        checkpoint: None,
        checkpoint_every: 1,
        max_chunks: None,
        threads: args.threads,
        output: args.output,
        metrics: Vec::new(),
        trace_dir: None,
        metrics_path: None,
        quiet: args.quiet,
        force: false,
        fault_plan: None,
    };
    Ok(render(&render_args, &report)?)
}

/// What `karyon-campaign shard` parses: which window of which plan to run,
/// and where the shard artifacts live.
#[derive(Debug)]
struct ShardArgs {
    spec_path: String,
    dir: String,
    index: usize,
    of: usize,
    threads: Option<usize>,
    trace: bool,
    fault_plan: Option<String>,
    quiet: bool,
}

fn parse_shard(args: &[String]) -> Result<ShardArgs, String> {
    let mut spec_path = None;
    let mut dir = None;
    let mut index = None;
    let mut of = None;
    let mut parsed = ShardArgs {
        spec_path: String::new(),
        dir: String::new(),
        index: 0,
        of: 0,
        threads: None,
        trace: false,
        fault_plan: None,
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of =
            |flag: &str| iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--dir" => dir = Some(value_of("--dir")?),
            "--index" => {
                let raw = value_of("--index")?;
                index = Some(
                    raw.parse::<usize>()
                        .map_err(|_| format!("--index: {raw:?} is not an integer"))?,
                );
            }
            "--of" => of = Some(parse_count("--of", &value_of("--of")?)?),
            "--threads" => {
                let raw = value_of("--threads")?;
                parsed.threads =
                    Some(raw.parse().map_err(|_| format!("--threads: {raw:?} is not an integer"))?)
            }
            "--trace" => parsed.trace = true,
            "--fault-plan" => parsed.fault_plan = Some(value_of("--fault-plan")?),
            "--quiet" => parsed.quiet = true,
            flag @ ("--checkpoint" | "--jsonl" | "--trace-dir") => {
                return Err(format!(
                    "{flag} does not apply to `shard` — a shard owns its artifact paths under \
                     --dir (the shard itself is the unit of retry, no checkpoint needed)"
                ));
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option {flag:?}")),
            positional => {
                if spec_path.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
            }
        }
    }
    parsed.spec_path = spec_path.ok_or("missing the <spec.json> argument")?;
    parsed.dir = dir.ok_or("shard needs --dir <dir> (where the shard artifacts live)")?;
    parsed.index = index.ok_or("shard needs --index <i> (this session's shard, 0-based)")?;
    parsed.of = of.ok_or("shard needs --of <n> (the total shard count)")?;
    if parsed.index >= parsed.of {
        return Err(format!(
            "--index {} is out of range for --of {} (indices are 0-based)",
            parsed.index, parsed.of
        ));
    }
    Ok(parsed)
}

/// What `karyon-campaign merge` parses: the shard directory plus the
/// stitched-output destinations.
#[derive(Debug)]
struct MergeArgs {
    spec_path: String,
    dir: String,
    jsonl: Option<String>,
    trace_dir: Option<String>,
    output: OutputMode,
    metrics: Vec<String>,
    quiet: bool,
}

fn parse_merge(args: &[String]) -> Result<MergeArgs, String> {
    let mut spec_path = None;
    let mut dir = None;
    let mut parsed = MergeArgs {
        spec_path: String::new(),
        dir: String::new(),
        jsonl: None,
        trace_dir: None,
        output: OutputMode::Table,
        metrics: Vec::new(),
        quiet: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value_of =
            |flag: &str| iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--dir" => dir = Some(value_of("--dir")?),
            "--jsonl" => parsed.jsonl = Some(value_of("--jsonl")?),
            "--trace-dir" => parsed.trace_dir = Some(value_of("--trace-dir")?),
            "--output" => {
                parsed.output = match value_of("--output")?.as_str() {
                    "json" => OutputMode::Json,
                    "table" => OutputMode::Table,
                    "both" => OutputMode::Both,
                    other => {
                        return Err(format!("--output must be json, table or both, not {other:?}"))
                    }
                }
            }
            "--metric" => parsed.metrics.push(value_of("--metric")?),
            "--quiet" => parsed.quiet = true,
            flag if flag.starts_with('-') => return Err(format!("unknown option {flag:?}")),
            positional => {
                if spec_path.replace(positional.to_string()).is_some() {
                    return Err(format!("unexpected extra argument {positional:?}"));
                }
            }
        }
    }
    parsed.spec_path = spec_path.ok_or("missing the <spec.json> argument")?;
    parsed.dir = dir.ok_or("merge needs --dir <dir> (the shard directory to collect)")?;
    Ok(parsed)
}

/// The canonical shard artifact path: `<dir>/<campaign>.shard-<i>-of-<n>.<ext>`.
fn shard_path(dir: &str, campaign: &str, index: usize, of: usize, ext: &str) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{campaign}.shard-{index}-of-{of}.{ext}"))
}

/// `shard`: run one window of the campaign's shard plan and persist its
/// per-chunk partials (integrity-framed manifest) plus the window's JSONL —
/// and optionally trace — segments, all carrying **global** run indices so
/// `merge` can stitch the segments byte-identically.  The manifest is only
/// written after the whole window completes: a session killed mid-window (a
/// crash, or an injected fault under `--fault-plan`) leaves no manifest
/// behind, and rerunning the same `shard` invocation replaces the torn
/// segments wholesale — the shard is the unit of retry.
fn cmd_shard(args: ShardArgs) -> Result<(), CliError> {
    let campaign = load_campaign(&args.spec_path, args.threads)?;
    let registry = builtin_registry();
    validate_families(&campaign, &registry)?;
    let injector = args.fault_plan.as_ref().map(|path| load_fault_plan(path)).transpose()?;

    let plan = ShardPlan::for_campaign(&campaign, args.of);
    let slice = plan.slice(args.index);
    let (start_run, end_run) = slice.run_range(campaign.chunk_size(), campaign.run_count());

    std::fs::create_dir_all(&args.dir)
        .map_err(|e| CliError::from(format!("cannot create --dir {:?}: {e}", args.dir)))?;
    let manifest_path =
        shard_path(&args.dir, campaign.name(), args.index, args.of, "manifest.json");
    let jsonl_path = shard_path(&args.dir, campaign.name(), args.index, args.of, "jsonl");
    let trace_seg_path = shard_path(&args.dir, campaign.name(), args.index, args.of, "trace.jsonl");
    // Drop any earlier manifest *before* running: if this attempt dies
    // mid-window it must not leave a stale manifest pointing at freshly
    // truncated segments — manifest present must always mean segments
    // complete.
    std::fs::remove_file(&manifest_path).ok();

    let jsonl_file = std::fs::File::create(&jsonl_path)
        .map_err(|e| CliError::from(format!("cannot open JSONL segment {jsonl_path:?}: {e}")))?;
    let jsonl = JsonlRunWriter::new(SyncOnFlushFile::new(jsonl_file));
    let mut trace = args
        .trace
        .then(|| {
            let file = std::fs::File::create(&trace_seg_path)
                .map_err(|e| format!("cannot open trace segment {trace_seg_path:?}: {e}"))?;
            Ok::<_, String>(JsonlTraceWriter::new(SyncOnFlushFile::new(file)))
        })
        .transpose()?;

    let mut progress = ProgressSink::new(Some(jsonl), start_run, campaign.run_count(), args.quiet);
    let started = std::time::Instant::now();
    let (partials, stats) = {
        let mut telemetry = CampaignTelemetry::none();
        if let Some(trace) = trace.as_mut() {
            telemetry = telemetry.with_trace(trace);
        }
        campaign.run_shard_with(
            &registry,
            slice.start_chunk,
            slice.end_chunk,
            Some(&mut progress),
            telemetry,
            injector.as_ref(),
        )?
    };
    progress.finish_line();
    if let Some(jsonl) = progress.jsonl.take() {
        jsonl.finish().map_err(|e| format!("finishing the JSONL segment: {e}"))?;
    }
    if let Some(trace) = trace.take() {
        trace.into_inner().map_err(|e| format!("finishing the trace segment: {e}"))?;
    }
    ShardManifest::new(&campaign, slice, partials)?.write(&manifest_path)?;
    if !args.quiet {
        eprintln!(
            "shard {}/{} of campaign {:?}: chunks [{}, {}) ({} runs, global [{start_run}, \
             {end_run})) done in {:.2?} on {} workers; manifest {manifest_path:?}",
            args.index,
            args.of,
            campaign.name(),
            slice.start_chunk,
            slice.end_chunk,
            end_run - start_run,
            started.elapsed(),
            stats.workers,
        );
    }
    Ok(())
}

/// Collects every shard manifest of `campaign` under `dir` (sorted by file
/// name for deterministic error reporting) and validates the set tiles the
/// campaign exactly.  A manifest that fails to load is an I/O failure (exit
/// 3, the artifact itself is damaged); a set that loads but does not belong
/// together is a [`ErrorKind::ShardSet`] refusal (exit 6).
fn load_shard_set(dir: &str, campaign: &Campaign) -> Result<Vec<ShardManifest>, CliError> {
    let prefix = format!("{}.shard-", campaign.name());
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| CliError::from(format!("cannot read shard directory {dir:?}: {e}")))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix) && n.ends_with(".manifest.json"))
        })
        .collect();
    paths.sort();
    let manifests =
        paths.iter().map(|path| ShardManifest::load(path)).collect::<Result<Vec<_>, _>>()?;
    if let Err(why) = validate_shard_set(campaign, &manifests) {
        return Err(CliError {
            kind: ErrorKind::ShardSet,
            message: format!(
                "shard set under {dir:?} refused: {why} — every shard session must run the same \
                 spec with the same --of, and all of them must have completed"
            ),
        });
    }
    Ok(manifests)
}

/// `merge`: stitch a complete shard set back into the single-machine
/// artifacts.  The report re-folds the shards' per-chunk partials in
/// canonical chunk order — the identical floating-point reduction a
/// single-machine run performs — and the JSONL/trace streams are the shards'
/// segments concatenated in window order, each validated against its global
/// run range first.  Everything `merge` emits is **byte-identical** to what
/// one uninterrupted `run` would have produced.
fn cmd_merge(args: MergeArgs) -> Result<(), CliError> {
    let campaign = load_campaign(&args.spec_path, None)?;
    let registry = builtin_registry();
    validate_families(&campaign, &registry)?;
    let mut manifests = load_shard_set(&args.dir, &campaign)?;
    manifests.sort_by_key(|m| m.start_chunk);

    if let Some(out_path) = &args.jsonl {
        let mut stitched = Vec::new();
        for manifest in &manifests {
            let (start, end) = manifest.run_range();
            if start == end {
                continue;
            }
            let seg = shard_path(
                &args.dir,
                &manifest.campaign,
                manifest.shard_index,
                manifest.shard_count,
                "jsonl",
            );
            stitched.extend_from_slice(&read_run_segment(&seg, start, end)?);
        }
        std::fs::write(out_path, &stitched).map_err(|e| {
            CliError::from(format!("cannot write stitched JSONL {out_path:?}: {e}"))
        })?;
    }
    if let Some(out_dir) = &args.trace_dir {
        let mut stitched = Vec::new();
        for manifest in &manifests {
            let (start, end) = manifest.run_range();
            if start == end {
                continue;
            }
            let seg = shard_path(
                &args.dir,
                &manifest.campaign,
                manifest.shard_index,
                manifest.shard_count,
                "trace.jsonl",
            );
            stitched.extend_from_slice(&read_trace_segment(&seg, start, end)?);
        }
        std::fs::create_dir_all(out_dir)
            .map_err(|e| CliError::from(format!("cannot create --trace-dir {out_dir:?}: {e}")))?;
        let out_path = trace_path(out_dir, campaign.name());
        std::fs::write(&out_path, &stitched).map_err(|e| {
            CliError::from(format!("cannot write stitched trace {out_path:?}: {e}"))
        })?;
    }

    let shard_count = manifests.len();
    let report = merge_shards(&campaign, manifests)?;
    if !args.quiet {
        eprintln!(
            "merged {shard_count} shards of campaign {:?}: {} runs, {} points; suspect runs: {}",
            campaign.name(),
            report.total_runs,
            report.points.len(),
            report.suspect_runs(),
        );
    }
    let render_args = CommonArgs {
        spec_path: args.spec_path,
        jsonl: None,
        checkpoint: None,
        checkpoint_every: 1,
        max_chunks: None,
        threads: None,
        output: args.output,
        metrics: args.metrics,
        trace_dir: None,
        metrics_path: None,
        quiet: args.quiet,
        force: false,
        fault_plan: None,
    };
    Ok(render(&render_args, &report)?)
}

fn cmd_list_families(args: &[String]) -> Result<(), String> {
    let mut json = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--output" => {
                let mode = iter.next().ok_or("--output needs a value")?;
                json = match mode.as_str() {
                    "json" => true,
                    "table" => false,
                    other => return Err(format!("--output must be json or table, not {other:?}")),
                };
            }
            other => {
                return Err(format!("list-families takes only --output json|table, got {other:?}"))
            }
        }
    }
    let registry = builtin_registry();
    if json {
        // Machine-readable: every family with its parameter names, types,
        // defaults and default sweep domains — enough for external tooling
        // to generate valid campaign specs (the CI registry smoke does).
        println!("{}", registry.describe_json());
        return Ok(());
    }
    println!("builtin scenario families ({}):", registry.len());
    for family in registry.describe() {
        let params: Vec<String> = family
            .params
            .iter()
            .map(|p| format!("{}: {} = {}", p.name, p.type_name, p.default))
            .collect();
        let engine = if family.engine_driven { "  [engine-driven]" } else { "" };
        println!("  {}{engine}", family.name);
        println!("      {}", params.join(", "));
    }
    println!(
        "\nuse `--output json` for the machine-readable listing (full parameter domains); \
         `cargo doc -p karyon-scenario` (builtin_registry) maps families to experiments"
    );
    Ok(())
}

/// The refusal message when `run` (without `--force`) would overwrite the
/// file at `--checkpoint`, or `None` when starting over is safe: nothing at
/// the path, or a manifest with no work recorded yet.  Everything else
/// refuses — a manifest of this campaign holding progress (the user almost
/// certainly meant `resume`), a manifest some *other* campaign definition
/// wrote with progress (still someone's compute), and a file that does not
/// load as a manifest at all (corrupt, a newer manifest version, a
/// transient read error): that last case is exactly when progress is most
/// at risk, and only `--force` may speak for the user there.
fn refuse_overwriting_progress(
    campaign: &Campaign,
    spec_path: &str,
    ckpt_path: &str,
) -> Option<String> {
    if !std::path::Path::new(ckpt_path).exists() {
        return None;
    }
    let manifest = match Checkpointer::new(ckpt_path).load() {
        Ok(manifest) => manifest,
        Err(error) => {
            return Some(format!(
                "the file at --checkpoint {ckpt_path:?} exists but cannot be read back as a \
                 manifest of this build ({error}) — refusing to overwrite it; pass --force to \
                 discard it and start over"
            ))
        }
    };
    if manifest.chunks_done == 0 {
        return None;
    }
    Some(if manifest.fingerprint == campaign.fingerprint() {
        format!(
            "checkpoint {ckpt_path:?} already holds {} of {} runs of this campaign — `run` \
             would overwrite that progress (and truncate any --jsonl stream); continue with \
             `karyon-campaign resume {spec_path:?} --checkpoint {ckpt_path:?}`, or pass \
             --force to discard it and start over",
            manifest.runs_done, manifest.total_runs,
        )
    } else {
        format!(
            "checkpoint {ckpt_path:?} holds {} of {} runs of campaign {:?}, written by a \
             different campaign definition than spec {spec_path:?} — refusing to overwrite \
             that progress; restore the original spec to resume it, point --checkpoint at a \
             fresh path, or pass --force to discard it",
            manifest.runs_done, manifest.total_runs, manifest.campaign,
        )
    })
}

/// Rejects unknown scenario families before any execution or file I/O.
/// (`Campaign::run` checks this too, but the CLI wants the error *before* it
/// truncates streams or opens files for writing.)
fn validate_families(campaign: &Campaign, registry: &ScenarioRegistry) -> Result<(), String> {
    for entry in campaign.entries() {
        if registry.get(entry.scenario()).is_none() {
            return Err(format!(
                "unknown scenario family {:?} — run `karyon-campaign list-families` for the \
                 builtin set",
                entry.scenario()
            ));
        }
    }
    Ok(())
}

fn summarize(
    stats: &RunnerStats,
    elapsed: std::time::Duration,
    args: &CommonArgs,
    report: &CampaignReport,
    metrics: Option<&MetricsRegistry>,
) -> Result<(), String> {
    if !args.quiet {
        let rate = report.total_runs as f64 / elapsed.as_secs_f64().max(1e-9);
        eprintln!(
            "completed {} runs in {elapsed:.2?} ({rate:.0} runs/s, {} workers, {} chunks this \
             session); suspect runs: {}",
            report.total_runs,
            stats.workers,
            stats.chunks,
            report.suspect_runs()
        );
    }
    render_with(args, report, Some(stats), metrics)
}

/// Rendering for the `report` subcommand: no runner existed, so the JSON
/// output is the plain report (and the table has no runner footer).
fn render(args: &CommonArgs, report: &CampaignReport) -> Result<(), String> {
    render_with(args, report, None, None)
}

/// Renders a report plus, when a runner executed it, the session's
/// [`RunnerStats`] (table footer / `runner` envelope member) and collected
/// metrics snapshot (`metrics` envelope member).  The envelope keeps the
/// `report` member bit-identical to the untraced plain report — execution
/// statistics never leak into the deterministic part.
fn render_with(
    args: &CommonArgs,
    report: &CampaignReport,
    runner: Option<&RunnerStats>,
    metrics: Option<&MetricsRegistry>,
) -> Result<(), String> {
    if matches!(args.output, OutputMode::Table | OutputMode::Both) {
        for metric in &args.metrics {
            report.metric_table(metric).print();
        }
        report.summary_table().print();
        if let Some(stats) = runner {
            println!(
                "runner: {} workers, {} chunks this session, peak {} pending chunks, peak {} \
                 resident records",
                stats.workers, stats.chunks, stats.peak_pending_chunks, stats.peak_resident_records
            );
        }
    }
    if matches!(args.output, OutputMode::Json | OutputMode::Both) {
        match runner {
            None => println!("{}", report.to_json()),
            Some(stats) => {
                let mut out = String::from("{\"report\":");
                out.push_str(&report.to_json());
                out.push_str(&format!(
                    ",\"runner\":{{\"workers\":{},\"chunks\":{},\"peak_pending_chunks\":{},\
                     \"peak_resident_records\":{}}}",
                    stats.workers,
                    stats.chunks,
                    stats.peak_pending_chunks,
                    stats.peak_resident_records
                ));
                if let Some(metrics) = metrics {
                    out.push_str(",\"metrics\":");
                    out.push_str(&metrics.to_json());
                }
                out.push('}');
                println!("{out}");
            }
        }
    }
    Ok(())
}

/// The per-campaign trace stream path under `--trace-dir`.
fn trace_path(dir: &str, campaign: &str) -> std::path::PathBuf {
    std::path::Path::new(dir).join(format!("{campaign}.trace.jsonl"))
}

/// Reads and parses a `--fault-plan` file into an armed injector.
fn load_fault_plan(path: &str) -> Result<FaultInjector, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::from(format!("cannot read fault plan {path:?}: {e}")))?;
    let plan = FaultPlan::from_json_str(&text)
        .map_err(|e| CliError::from(format!("fault plan {path:?}: {e}")))?;
    Ok(plan.injector())
}

#[cfg(test)]
mod tests {
    use super::*;
    use karyon::scenario::CampaignEntry;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_shard_and_merge_validate_their_flags() {
        let parsed =
            parse_shard(&strings(&["spec.json", "--dir", "d", "--index", "0", "--of", "3"]))
                .unwrap();
        assert_eq!((parsed.index, parsed.of), (0, 3));
        assert!(!parsed.trace && parsed.fault_plan.is_none());

        for (args, needle) in [
            (vec!["spec.json", "--dir", "d", "--index", "3", "--of", "3"], "out of range"),
            (vec!["spec.json", "--dir", "d", "--index", "0"], "--of"),
            (vec!["spec.json", "--index", "0", "--of", "3"], "--dir"),
            (vec!["spec.json", "--dir", "d", "--index", "0", "--of", "0"], "positive"),
            (
                vec!["spec.json", "--dir", "d", "--index", "0", "--of", "3", "--checkpoint", "c"],
                "does not apply",
            ),
        ] {
            let err = parse_shard(&strings(&args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }

        let parsed = parse_merge(&strings(&["spec.json", "--dir", "d", "--jsonl", "o"])).unwrap();
        assert_eq!(parsed.jsonl.as_deref(), Some("o"));
        assert!(parse_merge(&strings(&["spec.json"])).unwrap_err().contains("--dir"));
    }

    /// The exit-code contract of `merge`: a shard set that loads but does
    /// not tile the campaign is a ShardSet refusal (exit 6); a manifest
    /// that fails to load at all is an I/O failure (exit 3).
    #[test]
    fn merge_maps_shard_set_refusals_to_exit_6_and_corruption_to_exit_3() {
        let dir = std::env::temp_dir().join(format!("karyon-cli-shard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap();
        let campaign = Campaign::new("cli-shards", 9)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("lane-change").replications(24).duration_secs(30));
        let registry = builtin_registry();
        let plan = ShardPlan::for_campaign(&campaign, 3);

        // Only 2 of 3 shards present: loads fine, but the set has a gap.
        for index in [0usize, 1] {
            let slice = plan.slice(index);
            let (partials, _) =
                campaign.run_shard(&registry, slice.start_chunk, slice.end_chunk, None).unwrap();
            ShardManifest::new(&campaign, slice, partials)
                .unwrap()
                .write(&shard_path(dir_str, "cli-shards", index, 3, "manifest.json"))
                .unwrap();
        }
        let error = load_shard_set(dir_str, &campaign).expect_err("an incomplete set refuses");
        assert_eq!(error.kind.code(), 6, "{}", error.message);
        assert!(error.message.contains("3 shards but 2 manifests"), "{}", error.message);

        // Complete the set: it validates.
        let slice = plan.slice(2);
        let (partials, _) =
            campaign.run_shard(&registry, slice.start_chunk, slice.end_chunk, None).unwrap();
        ShardManifest::new(&campaign, slice, partials)
            .unwrap()
            .write(&shard_path(dir_str, "cli-shards", 2, 3, "manifest.json"))
            .unwrap();
        assert_eq!(load_shard_set(dir_str, &campaign).unwrap().len(), 3);

        // A different spec (seed) refuses on the fingerprint, still exit 6.
        let foreign = Campaign::new("cli-shards", 10)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("lane-change").replications(24).duration_secs(30));
        let error = load_shard_set(dir_str, &foreign).expect_err("foreign fingerprint");
        assert_eq!(error.kind.code(), 6, "{}", error.message);
        assert!(error.message.contains("fingerprint"), "{}", error.message);

        // Corrupt one manifest on disk: that is artifact damage, exit 3.
        std::fs::write(shard_path(dir_str, "cli-shards", 1, 3, "manifest.json"), "{ torn").unwrap();
        let error = load_shard_set(dir_str, &campaign).expect_err("corruption must refuse");
        assert_eq!(error.kind.code(), 3, "{}", error.message);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_common_understands_force() {
        let parsed = parse_common(&strings(&["spec.json", "--force", "--quiet"])).unwrap();
        assert!(parsed.force && parsed.quiet);
        assert!(!parse_common(&strings(&["spec.json"])).unwrap().force);
    }

    #[test]
    fn run_refuses_to_overwrite_checkpointed_progress_of_the_same_campaign() {
        let dir = std::env::temp_dir().join(format!("karyon-cli-guard-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt_path = dir.join("c.json");
        let ckpt_str = ckpt_path.to_str().unwrap();
        let campaign = Campaign::new("guard", 5)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("lane-change").replications(8).duration_secs(30));

        // No manifest on disk yet: starting over is safe.
        assert!(refuse_overwriting_progress(&campaign, "spec.json", ckpt_str).is_none());

        // One checkpointed chunk on disk: `run` must refuse and point at
        // `resume` / `--force`.
        let mut ckpt = Checkpointer::new(&ckpt_path).max_chunks_per_session(1);
        campaign.run_checkpointed(&builtin_registry(), &mut ckpt, None).unwrap();
        let refusal = refuse_overwriting_progress(&campaign, "spec.json", ckpt_str)
            .expect("checkpointed progress must be protected");
        assert!(refusal.contains("resume") && refusal.contains("--force"), "{refusal}");

        // A different campaign definition's progress is protected too — the
        // manifest still holds someone's compute.
        let other = Campaign::new("guard", 6)
            .with_chunk_size(4)
            .entry(CampaignEntry::new("lane-change").replications(8).duration_secs(30));
        let refusal = refuse_overwriting_progress(&other, "spec.json", ckpt_str)
            .expect("foreign progress must be protected");
        assert!(
            refusal.contains("different campaign definition") && refusal.contains("--force"),
            "{refusal}"
        );

        // A file that exists but does not read back as a manifest (corrupt,
        // or written by a newer build) is refused too — that is when
        // progress is most at risk, and only --force may discard it.
        std::fs::write(&ckpt_path, "{ not a manifest").unwrap();
        let refusal = refuse_overwriting_progress(&campaign, "spec.json", ckpt_str)
            .expect("an unreadable checkpoint file must be protected");
        assert!(refusal.contains("--force"), "{refusal}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
